//! Integration of the third adaptation mechanism: design-time subtask
//! reallocation.  A deployment whose allocation structurally overloads
//! one processor cannot meet its bounds by rate adaptation alone;
//! rebalancing the allocation makes the same workload controllable.

use eucon::prelude::*;
use eucon::tasks::balance::{balance, worst_load_ratio};
use eucon::tasks::{ProcessorId, TaskSet};

/// Five independent tasks, all piled on P1 of a 3-processor platform,
/// sized so P1's structural demand exceeds its schedulable bound at every
/// admissible rate.
fn lopsided() -> TaskSet {
    let mut set = TaskSet::new(3);
    for i in 0..5 {
        let r = 1.0 / (120.0 + 20.0 * i as f64);
        set.add_task(
            Task::builder(r / 1.2, r * 1.2, r) // narrow rate range: little headroom
                .subtask(ProcessorId(0), 48.0)
                .build()
                .unwrap(),
        )
        .unwrap();
    }
    set
}

#[test]
fn rebalancing_turns_an_uncontrollable_deployment_into_a_controllable_one() {
    let set = lopsided();
    assert!(
        worst_load_ratio(&set) > 1.5,
        "the lopsided deployment must be structurally overloaded"
    );

    // Unbalanced: even at Rmin, P1 exceeds its bound — EUCON saturates.
    let mut cl = ClosedLoop::builder(set.clone())
        .sim_config(SimConfig::constant_etf(1.0))
        .controller(ControllerSpec::Eucon(MpcConfig::simple()))
        .build()
        .expect("loop");
    let unbalanced = cl.run(120);
    let u1 = metrics::window(&unbalanced.trace.utilization_series(0), 80, 120);
    assert!(
        u1.mean > unbalanced.set_points[0] + 0.1,
        "P1 must be stuck above its bound: {:.3}",
        u1.mean
    );
    assert!(
        unbalanced.deadlines.miss_ratio() > 0.1,
        "and missing deadlines"
    );

    // Balanced: the same workload spread across the platform is
    // controllable everywhere.
    let (balanced_set, report) = balance(&set, 50);
    assert!(
        report.after < 1.0,
        "balancing must reach feasibility: {report:?}"
    );
    let mut cl = ClosedLoop::builder(balanced_set)
        .sim_config(SimConfig::constant_etf(1.0))
        .controller(ControllerSpec::Eucon(MpcConfig::simple()))
        .build()
        .expect("loop");
    let balanced = cl.run(120);
    for p in 0..3 {
        let s = metrics::window(&balanced.trace.utilization_series(p), 80, 120);
        assert!(
            s.mean <= balanced.set_points[p] + 0.03,
            "P{} within its bound after rebalancing: {:.3} vs {:.3}",
            p + 1,
            s.mean,
            balanced.set_points[p]
        );
    }
    assert!(
        balanced.deadlines.miss_ratio() < 0.02,
        "deadlines protected after rebalancing: {:.4}",
        balanced.deadlines.miss_ratio()
    );
}

#[test]
fn rebalanced_medium_still_matches_paper_behaviour() {
    // Balancing a workload that is already balanced must not change the
    // closed-loop behaviour.
    let set = workloads::medium();
    let (balanced, report) = balance(&set, 50);
    assert!(report.moves.is_empty());
    let mut cl = ClosedLoop::builder(balanced)
        .sim_config(SimConfig::constant_etf(0.5).seed(1))
        .controller(ControllerSpec::Eucon(MpcConfig::medium()))
        .build()
        .expect("loop");
    let result = cl.run(150);
    let s = metrics::window(&result.trace.utilization_series(0), 100, 150);
    assert!((s.mean - result.set_points[0]).abs() < 0.03);
}
