//! Tests of the paper's foundational premise (§3.3): keeping each
//! processor's utilization below its schedulable bound makes every
//! subtask meet its subdeadline (= its period), which in turn makes every
//! end-to-end deadline hold under the release-guard protocol.

use eucon::prelude::*;
use eucon::sim::Simulator;

/// With utilization regulated at the RMS bound and constant execution
/// times, subdeadline misses are (essentially) absent — the Liu–Layland
/// guarantee observed end-to-end through the full stack.
#[test]
fn utilization_bound_implies_subdeadlines() {
    let mut cl = ClosedLoop::builder(workloads::simple())
        .sim_config(SimConfig::constant_etf(0.8))
        .controller(ControllerSpec::Eucon(MpcConfig::simple()))
        .build()
        .expect("loop");
    let _ = cl.run(200);
    let sim = cl.simulator();
    assert!(
        sim.subdeadline_miss_ratio() < 0.01,
        "subdeadline miss ratio {:.4} at the RMS bound",
        sim.subdeadline_miss_ratio()
    );
}

/// Without control (OPEN) and with underestimated execution times, the
/// processors overload and subdeadlines collapse — the failure mode
/// utilization control exists to prevent.
#[test]
fn overload_destroys_subdeadlines_without_control() {
    let mut cl = ClosedLoop::builder(workloads::simple())
        .sim_config(SimConfig::constant_etf(2.0))
        .controller(ControllerSpec::Open)
        .build()
        .expect("loop");
    let _ = cl.run(100);
    let miss = cl.simulator().subdeadline_miss_ratio();
    assert!(
        miss > 0.2,
        "OPEN at etf 2.0 must miss heavily, got {miss:.4}"
    );
}

/// Per-subtask statistics are wired through correctly: each subtask
/// records completions, and totals are consistent with the per-task
/// end-to-end counts.
#[test]
fn subtask_stats_are_consistent_with_task_stats() {
    let set = workloads::simple();
    let mut sim = Simulator::new(set, SimConfig::constant_etf(0.5));
    sim.run_until(50_000.0);
    let per_task = sim.task_stats();
    let per_sub = sim.subtask_stats();
    assert_eq!(per_sub.len(), 3);
    assert_eq!(per_sub[1].len(), 2, "T2 has two subtasks");
    for (t, subs) in per_sub.iter().enumerate() {
        // The tail subtask's completions equal the task's end-to-end
        // completions.
        let tail = subs.last().expect("chains are non-empty");
        assert_eq!(
            tail.completed,
            per_task[t].completed,
            "T{}: tail completions must match end-to-end count",
            t + 1
        );
        // Upstream stages complete at least as often as downstream ones.
        for pair in subs.windows(2) {
            assert!(pair[0].completed >= pair[1].completed);
        }
    }
}

/// EUCON also protects subdeadlines on the MEDIUM workload through the
/// Experiment II disturbance profile.
#[test]
fn subdeadlines_hold_through_disturbance() {
    let profile = EtfProfile::steps(&[(0.0, 0.5), (50_000.0, 0.9), (100_000.0, 0.33)]);
    let mut cl = ClosedLoop::builder(workloads::medium())
        .sim_config(SimConfig {
            exec_model: ExecModel::Uniform { half_width: 0.2 },
            etf: profile,
            seed: 1,
            release_guard: Default::default(),
            processor_speeds: None,
        })
        .controller(ControllerSpec::Eucon(MpcConfig::medium()))
        .build()
        .expect("loop");
    let _ = cl.run(150);
    let miss = cl.simulator().subdeadline_miss_ratio();
    assert!(
        miss < 0.05,
        "subdeadline miss ratio through disturbance: {miss:.4}"
    );
}
