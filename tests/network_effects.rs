//! Robustness of the feedback loop to non-ideal feedback lanes (the
//! paper idealizes them as delay- and loss-free TCP connections; here we
//! measure what those assumptions are worth).

use eucon::prelude::*;

fn run_with_lanes(lanes: LaneModel, periods: usize) -> RunResult {
    let mut cl = ClosedLoop::builder(workloads::simple())
        .sim_config(SimConfig::constant_etf(0.5).seed(1))
        .controller(ControllerSpec::Eucon(MpcConfig::simple()))
        .lanes(lanes)
        .build()
        .expect("loop");
    cl.run(periods)
}

#[test]
fn one_period_report_delay_still_converges() {
    let result = run_with_lanes(LaneModel::delayed(1), 200);
    let s = metrics::window(&result.trace.utilization_series(0), 150, 200);
    assert!(
        metrics::acceptable(s, 0.8284),
        "one period of lane delay must be absorbed: mean {:.3}, σ {:.3}",
        s.mean,
        s.std_dev
    );
}

#[test]
fn moderate_report_loss_still_converges() {
    let result = run_with_lanes(LaneModel::lossy(0.3, 42), 200);
    let s = metrics::window(&result.trace.utilization_series(0), 150, 200);
    assert!(
        (s.mean - 0.8284).abs() < 0.03,
        "30% report loss must only slow the loop: mean {:.3}",
        s.mean
    );
}

#[test]
fn delay_degrades_gracefully_and_monotonically() {
    // More lane delay → more oscillation; the loop should not fall off a
    // cliff at small delays.
    let sigma_at = |d: usize| {
        let result = run_with_lanes(LaneModel::delayed(d), 250);
        metrics::window(&result.trace.utilization_series(0), 150, 250).std_dev
    };
    let s0 = sigma_at(0);
    let s2 = sigma_at(2);
    let s5 = sigma_at(5);
    assert!(s0 < 0.01, "ideal lanes are calm: {s0:.4}");
    assert!(
        s5 >= s2,
        "more delay must not reduce oscillation ({s2:.4} -> {s5:.4})"
    );
    assert!(s2 < 0.1, "two periods of delay remain usable: {s2:.4}");
}

#[test]
fn lossy_lanes_preserve_stability_margin() {
    // Losses make the loop act on stale data — effectively a slower
    // controller — but must not destabilize it at nominal gain.
    let result = run_with_lanes(
        LaneModel {
            report_delay: 1,
            loss_probability: 0.2,
            seed: 9,
        },
        300,
    );
    let s = metrics::window(&result.trace.utilization_series(0), 200, 300);
    assert!((s.mean - 0.8284).abs() < 0.05, "mean {:.3}", s.mean);
    assert!(s.std_dev < 0.1, "σ {:.3}", s.std_dev);
    assert!(result.deadlines.miss_ratio() < 0.05);
}
