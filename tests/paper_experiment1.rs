//! Integration tests reproducing Experiment I of the paper (§7.2):
//! steady execution times, SIMPLE and MEDIUM, EUCON vs OPEN.

use eucon::prelude::*;

/// Figure 3(a): SIMPLE at etf = 0.5 converges to the 0.828 set points on
/// both processors with no deadline misses.
#[test]
fn fig3a_simple_converges_at_half_estimates() {
    let run = SteadyRun::paper(
        workloads::simple(),
        ControllerSpec::Eucon(MpcConfig::simple()),
        ExecModel::Constant,
    );
    let result = run.run(0.5).expect("run");
    for p in 0..2 {
        let series = result.trace.utilization_series(p);
        let s = metrics::window(&series, 100, 300);
        assert!(
            metrics::acceptable(s, 0.8284),
            "P{}: mean {:.4}, std {:.4} must be acceptable",
            p + 1,
            s.mean,
            s.std_dev
        );
    }
    assert!(
        result.deadlines.miss_ratio() < 0.01,
        "converged system protects deadlines"
    );
}

/// Figure 3(b): SIMPLE at etf = 7 (beyond the stability bound) fails to
/// converge — strong oscillation, heavy deadline misses.
#[test]
fn fig3b_simple_unstable_at_etf_seven() {
    let run = SteadyRun::paper(
        workloads::simple(),
        ControllerSpec::Eucon(MpcConfig::simple()),
        ExecModel::Constant,
    );
    let result = run.run(7.0).expect("run");
    let s = metrics::window(&result.trace.utilization_series(0), 100, 300);
    assert!(
        s.std_dev > 0.05,
        "instability must show as oscillation, std {:.4}",
        s.std_dev
    );
    assert!(
        result.deadlines.miss_ratio() > 0.1,
        "overload must miss deadlines"
    );
}

/// Figure 4 (key points): the acceptability region covers small etf and
/// breaks down as execution times are underestimated; far past the
/// stability bound the mean diverges upward.
#[test]
fn fig4_acceptability_region_shape() {
    let run = SteadyRun::paper(
        workloads::simple(),
        ControllerSpec::Eucon(MpcConfig::simple()),
        ExecModel::Constant,
    );
    let points = run.sweep(&[0.5, 1.0, 2.0, 6.0, 9.0]).expect("sweep");
    // Acceptable at 0.5, 1.0, 2.0 (paper: up to 3).
    for p in &points[..3] {
        assert!(
            p.acceptable[0],
            "etf {} should be acceptable: {:?}",
            p.etf, p.stats[0]
        );
    }
    // Oscillatory at 6 (analytically unstable in our derivation).
    assert!(
        points[3].stats[0].std_dev > 0.05,
        "etf 6: {:?}",
        points[3].stats[0]
    );
    // Diverged above the set point at 9.
    assert!(
        points[4].stats[0].mean > 0.9,
        "etf 9: {:?}",
        points[4].stats[0]
    );
}

/// With Table 1's printed rate bounds, rates saturate at Rmax below
/// etf ≈ 0.42 (max estimated utilization is 2.0); the widened
/// configuration demonstrates tracking down to etf = 0.2 (the paper's
/// claimed range).
#[test]
fn fig4_rmax_saturation_and_widened_variant() {
    let base = SteadyRun::paper(
        workloads::simple(),
        ControllerSpec::Eucon(MpcConfig::simple()),
        ExecModel::Constant,
    );
    let p = &base.sweep(&[0.2]).expect("sweep")[0];
    assert!(
        (p.stats[0].mean - 0.4).abs() < 0.02,
        "Table 1 bounds cap utilization at 2.0·etf = 0.4, got {:.4}",
        p.stats[0].mean
    );

    let widened = SteadyRun::paper(
        workloads::simple_widened(3.0),
        ControllerSpec::Eucon(MpcConfig::simple()),
        ExecModel::Constant,
    );
    let p = &widened.sweep(&[0.2]).expect("sweep")[0];
    assert!(
        p.acceptable[0],
        "widened rates must track at etf 0.2: {:?}",
        p.stats[0]
    );
}

/// Figure 5 (key points): on MEDIUM, EUCON is acceptable across
/// etf ∈ [0.1, 1] while OPEN scales linearly with etf (0.073 at 0.1).
#[test]
fn fig5_medium_eucon_vs_open() {
    let set = workloads::medium();
    let b = rms_set_points(&set);

    let eucon = SteadyRun::paper(
        set.clone(),
        ControllerSpec::Eucon(MpcConfig::medium()),
        ExecModel::Uniform { half_width: 0.2 },
    );
    for point in eucon.sweep(&[0.1, 0.5, 1.0]).expect("sweep") {
        assert!(
            point.acceptable[0],
            "EUCON must be acceptable at etf {}: {:?}",
            point.etf, point.stats[0]
        );
        assert!((point.stats[0].mean - b[0]).abs() <= 0.02);
    }

    // OPEN expected line: etf-proportional.
    let open = OpenLoop::design(&set, &b).expect("design");
    let u = open.expected_utilization(&set, 0.1);
    assert!(
        (u[0] - 0.0729).abs() < 1e-3,
        "paper reports 0.073 at etf 0.1, got {:.4}",
        u[0]
    );

    // OPEN measured in simulation at etf 0.5: half the set point.
    let open_run = SteadyRun::paper(
        set,
        ControllerSpec::Open,
        ExecModel::Uniform { half_width: 0.2 },
    );
    let p = &open_run.sweep(&[0.5]).expect("sweep")[0];
    assert!(
        (p.stats[0].mean - 0.5 * b[0]).abs() < 0.05,
        "OPEN at etf 0.5: {:.4} vs {:.4}",
        p.stats[0].mean,
        0.5 * b[0]
    );
    assert!(
        !p.acceptable[0],
        "OPEN must fail the acceptability criterion off etf = 1"
    );
}

/// The paper's §6.3 tuning guidance: pessimistic estimates (etf < 1)
/// reduce oscillation relative to optimistic ones (etf > 1) without
/// underutilizing the CPU.
#[test]
fn pessimistic_estimates_reduce_oscillation() {
    let run = SteadyRun::paper(
        workloads::simple(),
        ControllerSpec::Eucon(MpcConfig::simple()),
        ExecModel::Constant,
    );
    let points = run.sweep(&[0.5, 4.0]).expect("sweep");
    let pessimistic = points[0].stats[0];
    let optimistic = points[1].stats[0];
    assert!(
        pessimistic.std_dev < optimistic.std_dev / 2.0,
        "overestimated execution times must oscillate less: {:.4} vs {:.4}",
        pessimistic.std_dev,
        optimistic.std_dev
    );
    // And still no underutilization.
    assert!((pessimistic.mean - 0.8284).abs() <= 0.02);
}
