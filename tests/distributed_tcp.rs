//! Distributed-mode acceptance over real loopback-TCP lanes.
//!
//! The paper's architecture (§4) runs the controller and the processors
//! as separate nodes joined by per-processor TCP feedback lanes.  These
//! tests run that topology for real — controller endpoint and processor
//! endpoints exchanging versioned binary frames over `127.0.0.1` — and
//! pin the two properties that make it trustworthy:
//!
//! * **smoke** — over ideal TCP lanes every frame arrives, decodes, and
//!   the loop finishes with zero controller errors (seed selectable via
//!   `EUCON_TCP_SEED` so CI can run a seed matrix);
//! * **acceptance** — with 20% report loss on every lane, the MEDIUM
//!   workload still converges to within ±0.03 of every processor's RMS
//!   set point by period 150, with zero controller errors.

use std::time::Duration;

use eucon::prelude::*;

/// Generous per-period receive window: loopback frames land in
/// microseconds, so this only bounds the stall when a report is lost,
/// while keeping delivery deterministic on loaded CI machines.
const RECV_WINDOW: Duration = Duration::from_millis(50);

fn tcp_seed() -> u64 {
    std::env::var("EUCON_TCP_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

#[test]
fn tcp_smoke_every_frame_arrives_and_decodes() {
    let seed = tcp_seed();
    let mut dl = DistributedLoop::builder(workloads::simple())
        .sim_config(SimConfig::constant_etf(0.5).seed(seed))
        .controller(ControllerSpec::Eucon(MpcConfig::simple()))
        .tcp(TcpConfig::default())
        .recv_timeout(RECV_WINDOW)
        .build()
        .expect("distributed loop over TCP");
    let periods = 60;
    let result = dl.run(periods);
    let stats = dl.transport_stats();
    assert_eq!(result.control_errors, 0, "seed {seed}");
    assert_eq!(stats.decode_errors, 0, "seed {seed}");
    assert_eq!(
        stats.dropped, 0,
        "ideal TCP lanes drop nothing (seed {seed})"
    );
    // Reports up + commands down, per processor, per period — all arrive.
    let expected = 2 * (workloads::simple().num_processors() * periods) as u64;
    assert_eq!(stats.sent, expected, "seed {seed}");
    assert_eq!(stats.received, expected, "seed {seed}");
    assert!(stats.bytes_sent > 0 && stats.bytes_received > 0);
}

#[test]
fn medium_over_lossy_tcp_converges_to_every_set_point() {
    let set = workloads::medium();
    let points = rms_set_points(&set);
    let mut dl = DistributedLoop::builder(set)
        .sim_config(
            SimConfig::constant_etf(1.0)
                .exec_model(ExecModel::Uniform { half_width: 0.2 })
                .seed(1),
        )
        .controller(ControllerSpec::Eucon(MpcConfig::medium()))
        .tcp(TcpConfig::default())
        .report_lanes(LaneModel::lossy(0.2, 21))
        .recv_timeout(RECV_WINDOW)
        .build()
        .expect("distributed loop over lossy TCP");
    let result = dl.run(200);
    assert_eq!(
        result.control_errors, 0,
        "20% report loss must never error the controller"
    );
    let stats = dl.transport_stats();
    assert_eq!(stats.decode_errors, 0);
    assert!(
        stats.dropped > 0,
        "a 20% lossy lane over 200 periods drops something"
    );
    for (p, &b) in points.iter().enumerate() {
        let s = metrics::window(&result.trace.utilization_series(p), 150, 200);
        assert!(
            (s.mean - b).abs() < 0.03,
            "processor {p}: mean {:.3} vs set point {b:.3} under 20% report loss",
            s.mean
        );
    }
}
