//! Integration tests of the decentralized controller (the paper's stated
//! future work) against the real simulator, mirroring the centralized
//! experiments.

use eucon::prelude::*;

#[test]
fn deucon_reproduces_fig3a_on_simple() {
    let mut cl = ClosedLoop::builder(workloads::simple())
        .sim_config(SimConfig::constant_etf(0.5))
        .controller(ControllerSpec::Decentralized(MpcConfig::simple()))
        .build()
        .expect("loop");
    let result = cl.run(200);
    for p in 0..2 {
        let s = metrics::window(&result.trace.utilization_series(p), 150, 200);
        assert!(
            (s.mean - 0.8284).abs() < 0.03,
            "P{}: mean {:.3} under decentralized control",
            p + 1,
            s.mean
        );
    }
}

#[test]
fn deucon_handles_experiment_two_disturbance() {
    let result = VaryingRun::paper(
        workloads::medium(),
        ControllerSpec::Decentralized(MpcConfig::medium()),
        ExecModel::Uniform { half_width: 0.2 },
    )
    .run()
    .expect("run");
    for p in 0..4 {
        let b = result.set_points[p];
        for (lo, hi) in [(60, 100), (160, 200), (260, 300)] {
            let s = metrics::window(&result.trace.utilization_series(p), lo, hi);
            assert!(
                (s.mean - b).abs() < 0.04,
                "P{} window [{lo},{hi}): {:.3} vs {:.3}",
                p + 1,
                s.mean,
                b
            );
        }
    }
}

#[test]
fn deucon_matches_centralized_quality_on_medium() {
    let run = |spec: ControllerSpec| {
        let mut cl = ClosedLoop::builder(workloads::medium())
            .sim_config(
                SimConfig::constant_etf(0.5)
                    .exec_model(ExecModel::Uniform { half_width: 0.2 })
                    .seed(5),
            )
            .controller(spec)
            .build()
            .expect("loop");
        let result = cl.run(300);
        let mut worst = 0.0f64;
        for p in 0..4 {
            let s = metrics::window(&result.trace.utilization_series(p), 100, 300);
            worst = worst.max((s.mean - result.set_points[p]).abs());
        }
        worst
    };
    let central = run(ControllerSpec::Eucon(MpcConfig::medium()));
    let team = run(ControllerSpec::Decentralized(MpcConfig::medium()));
    assert!(team < 0.03, "decentralized worst error {team:.4}");
    assert!(
        team < central + 0.02,
        "decentralization must cost little quality: team {team:.4} vs central {central:.4}"
    );
}

#[test]
fn deucon_scales_to_generated_clusters() {
    for (procs, tasks, seed) in [(6usize, 18usize, 1u64), (10, 30, 2)] {
        let set = workloads::RandomWorkload::new(procs, tasks)
            .seed(seed)
            .generate();
        let b = rms_set_points(&set);
        let mut cl = ClosedLoop::builder(set)
            .sim_config(SimConfig::constant_etf(0.6).seed(seed))
            .controller(ControllerSpec::Decentralized(MpcConfig::medium()))
            .build()
            .expect("loop");
        let result = cl.run(150);
        for p in 0..procs {
            let s = metrics::window(&result.trace.utilization_series(p), 100, 150);
            assert!(
                (s.mean - b[p]).abs() < 0.05,
                "{procs}x{tasks} seed {seed}, P{}: {:.3} vs {:.3}",
                p + 1,
                s.mean,
                b[p]
            );
        }
    }
}
