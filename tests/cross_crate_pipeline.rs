//! Whole-pipeline integration tests on generated workloads: the QP
//! solver, controller, task model and simulator must compose for
//! arbitrary (feasible) systems, not just the paper's two configurations.

use eucon::prelude::*;

/// EUCON converges on randomly generated end-to-end workloads across a
/// range of shapes and seeds.
#[test]
fn eucon_converges_on_random_workloads() {
    for (seed, procs, tasks) in [(1u64, 3usize, 8usize), (2, 5, 14), (3, 6, 20)] {
        let set = workloads::RandomWorkload::new(procs, tasks)
            .seed(seed)
            .generate();
        let b = rms_set_points(&set);
        let mut cl = ClosedLoop::builder(set)
            .sim_config(SimConfig::constant_etf(0.5).seed(seed))
            .controller(ControllerSpec::Eucon(MpcConfig::medium()))
            .build()
            .expect("loop");
        let result = cl.run(150);
        for p in 0..procs {
            let s = metrics::window(&result.trace.utilization_series(p), 100, 150);
            assert!(
                (s.mean - b[p]).abs() < 0.05,
                "seed {seed}, P{}: mean {:.3} vs set point {:.3}",
                p + 1,
                s.mean,
                b[p]
            );
        }
        assert_eq!(cl.control_errors(), 0, "controller must never fail");
    }
}

/// Commanded rates always respect every task's acceptable range, at every
/// period, under violent disturbances.
#[test]
fn rates_always_within_bounds_under_disturbance() {
    let set = workloads::medium();
    let (rmin, rmax) = set.rate_bounds();
    let profile = EtfProfile::steps(&[(0.0, 0.2), (50_000.0, 5.0), (100_000.0, 0.1)]);
    let mut cl = ClosedLoop::builder(set)
        .sim_config(SimConfig {
            exec_model: ExecModel::Constant,
            etf: profile,
            seed: 9,
            release_guard: Default::default(),
            processor_speeds: None,
        })
        .controller(ControllerSpec::Eucon(MpcConfig::medium()))
        .build()
        .expect("loop");
    let result = cl.run(150);
    for step in result.trace.steps() {
        for t in 0..rmin.len() {
            assert!(
                step.rates[t] >= rmin[t] - 1e-9 && step.rates[t] <= rmax[t] + 1e-9,
                "rate of T{} out of range at t = {}: {}",
                t + 1,
                step.time,
                step.rates[t]
            );
        }
    }
}

/// Utilization measurements are physical: within [0, 1] on every
/// processor at every sampling period, whatever the controller does.
#[test]
fn utilization_measurements_are_physical() {
    for spec in [
        ControllerSpec::Eucon(MpcConfig::medium()),
        ControllerSpec::Open,
        ControllerSpec::Pid { kp: 0.8, ki: 0.1 },
    ] {
        let mut cl = ClosedLoop::builder(workloads::medium())
            .sim_config(
                SimConfig::constant_etf(2.0)
                    .exec_model(ExecModel::Uniform { half_width: 0.5 })
                    .seed(5),
            )
            .controller(spec)
            .build()
            .expect("loop");
        let result = cl.run(80);
        for step in result.trace.steps() {
            for p in 0..4 {
                let u = step.utilization[p];
                assert!((0.0..=1.0).contains(&u), "u = {u} out of [0,1]");
            }
        }
    }
}

/// The closed loop is fully deterministic for a fixed seed — a property
/// the experiment harness depends on.
#[test]
fn closed_loop_is_deterministic() {
    let run = || {
        let mut cl = ClosedLoop::builder(workloads::medium())
            .sim_config(
                SimConfig::constant_etf(0.7)
                    .exec_model(ExecModel::Uniform { half_width: 0.3 })
                    .seed(77),
            )
            .controller(ControllerSpec::Eucon(MpcConfig::medium()))
            .build()
            .expect("loop");
        cl.run(60)
    };
    let a = run();
    let b = run();
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.deadlines, b.deadlines);
}

/// Enforcing the RMS set point actually yields the schedulability it
/// promises: with constant execution times and utilization at the
/// Liu–Layland bound, (sub)deadlines hold.
#[test]
fn rms_set_point_protects_deadlines() {
    let mut cl = ClosedLoop::builder(workloads::simple())
        .sim_config(SimConfig::constant_etf(0.8))
        .controller(ControllerSpec::Eucon(MpcConfig::simple()))
        .build()
        .expect("loop");
    let result = cl.run(200);
    assert!(
        result.deadlines.miss_ratio() < 0.01,
        "miss ratio {:.4} at the RMS bound",
        result.deadlines.miss_ratio()
    );
    assert!(
        result.deadlines.completed() > 3000,
        "enough instances to be meaningful"
    );
}

/// An infeasible demand (etf far above what the rate range can absorb)
/// must degrade gracefully: the loop keeps running, rates pin at Rmin,
/// utilization saturates, and no component panics or errors.
#[test]
fn graceful_saturation_when_infeasible() {
    let mut cl = ClosedLoop::builder(workloads::simple())
        .sim_config(SimConfig::constant_etf(25.0))
        .controller(ControllerSpec::Eucon(MpcConfig::simple()))
        .build()
        .expect("loop");
    let result = cl.run(80);
    assert_eq!(
        cl.control_errors(),
        0,
        "infeasibility is handled inside the controller"
    );
    let set = workloads::simple();
    let last = result.trace.steps().last().expect("steps");
    for (t, task) in set.tasks().iter().enumerate() {
        assert!(
            (last.rates[t] - task.rate_min()).abs() < 1e-9,
            "T{} should pin at Rmin under hopeless overload",
            t + 1
        );
    }
    let tail = metrics::window(&result.trace.utilization_series(0), 40, 80);
    assert!(tail.mean > 0.95, "P1 saturates: {:.3}", tail.mean);
}
