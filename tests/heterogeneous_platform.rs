//! Heterogeneous platforms: per-processor speed factors realize the
//! asymmetric utilization gains `G = diag(g_i)` of the paper's stability
//! analysis — the controller never learns the speeds, yet must still
//! regulate every processor.

use eucon::control::stability;
use eucon::prelude::*;

#[test]
fn eucon_regulates_a_heterogeneous_cluster() {
    // P1 twice as slow as estimated, P2 30% faster.  (The widened rate
    // range keeps the set point reachable on the fast processor, whose
    // effective gain is only 0.35 at etf 0.5.)
    let speeds = vec![2.0, 0.7];
    let mut cl = ClosedLoop::builder(workloads::simple_widened(3.0))
        .sim_config(SimConfig::constant_etf(0.5).processor_speeds(speeds))
        .controller(ControllerSpec::Eucon(MpcConfig::simple()))
        .build()
        .expect("loop");
    let result = cl.run(200);
    for p in 0..2 {
        let s = metrics::window(&result.trace.utilization_series(p), 150, 200);
        assert!(
            (s.mean - 0.8284).abs() < 0.03,
            "P{}: mean {:.3} despite unknown speed factor",
            p + 1,
            s.mean
        );
    }
}

#[test]
fn asymmetric_gains_match_analysis_prediction() {
    // Effective gains are etf·speed per processor.  Pick a combination
    // the analysis certifies stable and one it rejects; the simulation
    // must agree (widened rates avoid actuator saturation masking).
    let f = workloads::simple().allocation_matrix();
    let cfg = MpcConfig::simple();

    let stable_gains = [1.0, 2.0];
    let unstable_gains = [10.0, 10.0];
    assert!(stability::is_stable(&f, &cfg, &stable_gains).unwrap());
    assert!(!stability::is_stable(&f, &cfg, &unstable_gains).unwrap());

    let sim_stats = |gains: [f64; 2]| {
        // etf = 1, speeds = gains → per-processor gain = gains.
        let mut cl = ClosedLoop::builder(workloads::simple_widened(3.0))
            .sim_config(SimConfig::constant_etf(1.0).processor_speeds(gains.to_vec()))
            .controller(ControllerSpec::Eucon(MpcConfig::simple()))
            .build()
            .expect("loop");
        let result = cl.run(250);
        metrics::window(&result.trace.utilization_series(0), 150, 250)
    };
    let calm = sim_stats(stable_gains);
    let wild = sim_stats(unstable_gains);
    assert!(
        metrics::acceptable(calm, 0.8284),
        "stable gain pair must be acceptable: mean {:.3}, σ {:.4}",
        calm.mean,
        calm.std_dev
    );
    // Divergence shows either as sustained oscillation or as saturation
    // pinned far above the set point.
    assert!(
        wild.std_dev > 0.10 || wild.mean > 0.95,
        "unstable gain pair must diverge: mean {:.3}, σ {:.4}",
        wild.mean,
        wild.std_dev
    );
}

#[test]
fn qos_portability_across_heterogeneous_tiers() {
    // MEDIUM on a cluster whose four tiers run at different speeds: the
    // same guarantees hold everywhere without retuning (§3.3 taken
    // further than the paper's homogeneous experiments).
    let speeds = vec![1.5, 0.8, 1.2, 0.6];
    let set = workloads::medium();
    let b = rms_set_points(&set);
    let mut cl = ClosedLoop::builder(set)
        .sim_config(
            SimConfig::constant_etf(0.6)
                .exec_model(ExecModel::Uniform { half_width: 0.2 })
                .processor_speeds(speeds)
                .seed(3),
        )
        .controller(ControllerSpec::Eucon(MpcConfig::medium()))
        .build()
        .expect("loop");
    let result = cl.run(250);
    for p in 0..4 {
        let s = metrics::window(&result.trace.utilization_series(p), 150, 250);
        assert!(
            (s.mean - b[p]).abs() < 0.04,
            "tier {}: mean {:.3} vs set point {:.3}",
            p + 1,
            s.mean,
            b[p]
        );
    }
}
