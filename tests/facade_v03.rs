//! v0.3 facade pins: the [`LoopBuilder`] finishers and the unified
//! [`Error`] type must be *surface*, not behaviour.
//!
//! The golden hashes the core crate pins for the four closed-loop
//! scenarios (see `crates/core/tests/trace_hash/`) must come out
//! bit-identical when the same scenarios are assembled through the new
//! `eucon::LoopBuilder` facade — both the `.local()` finisher and the
//! `.distributed(NetConfig::tcp_poll())` finisher over the many-lane
//! poll engine.  And every failure the facade can produce must surface
//! as `eucon::Error` with a stable [`ErrorKind`] and a reachable
//! `source()` chain.

#[path = "../crates/core/tests/trace_hash/mod.rs"]
mod trace_hash;

use std::error::Error as StdError;
use std::time::Duration;

use eucon::prelude::*;
use trace_hash::{hash_result, Scenario, GOLDEN_PERIODS};

/// Assembles a golden scenario through the v0.3 facade.
fn facade_builder(s: Scenario) -> LoopBuilder {
    let (set, sim, controller, faults) = match s {
        Scenario::SimpleFaultFree => (
            workloads::simple(),
            SimConfig::constant_etf(0.5),
            ControllerSpec::Eucon(MpcConfig::simple()),
            FaultPlan::none(),
        ),
        Scenario::MediumFaultFree => (
            workloads::medium(),
            SimConfig::constant_etf(1.0)
                .exec_model(ExecModel::Uniform { half_width: 0.2 })
                .seed(1),
            ControllerSpec::Eucon(MpcConfig::medium()),
            FaultPlan::none(),
        ),
        Scenario::SimpleFaulted => (
            workloads::simple(),
            SimConfig::constant_etf(0.5),
            ControllerSpec::SupervisedEucon {
                mpc: MpcConfig::simple(),
                supervisor: Default::default(),
            },
            FaultPlan::none()
                .crash(1, 10, 18)
                .actuation_loss(0.3)
                .seed(7),
        ),
        Scenario::MediumFaulted => (
            workloads::medium(),
            SimConfig::constant_etf(1.0)
                .exec_model(ExecModel::Uniform { half_width: 0.2 })
                .seed(1),
            ControllerSpec::SupervisedEucon {
                mpc: MpcConfig::medium(),
                supervisor: Default::default(),
            },
            FaultPlan::none()
                .crash(1, 10, 18)
                .actuation_loss(0.3)
                .seed(7),
        ),
    };
    LoopBuilder::new(set)
        .sim_config(sim)
        .controller(controller)
        .faults(faults)
}

#[test]
fn local_finisher_reproduces_all_four_golden_hashes() {
    for s in Scenario::ALL {
        let mut cl = facade_builder(s).local().expect("local loop");
        assert_eq!(
            hash_result(&cl.run(GOLDEN_PERIODS)),
            s.golden(),
            "{} drifted through LoopBuilder::local()",
            s.name()
        );
    }
}

#[test]
fn poll_engine_finisher_reproduces_all_four_golden_hashes() {
    for s in Scenario::ALL {
        let mut dl = facade_builder(s)
            .distributed(NetConfig::tcp_poll().recv_timeout(Duration::from_millis(200)))
            .expect("distributed poll loop");
        assert_eq!(
            hash_result(&dl.run(GOLDEN_PERIODS)),
            s.golden(),
            "{} drifted through LoopBuilder::distributed(tcp_poll)",
            s.name()
        );
        assert_eq!(dl.backend_name(), "tcp-poll");
        assert_eq!(dl.transport_stats().decode_errors, 0);
    }
}

/// The explicitly selected simulator backend is the same plant the
/// default path uses: all four golden hashes must survive
/// `.plant(SimPlantFactory)` bit-for-bit.
#[test]
fn sim_plant_backend_reproduces_all_four_golden_hashes() {
    for s in Scenario::ALL {
        let mut cl = facade_builder(s)
            .plant(SimPlantFactory)
            .local()
            .expect("sim-plant loop");
        assert_eq!(cl.plant().name(), "sim");
        assert_eq!(
            hash_result(&cl.run(GOLDEN_PERIODS)),
            s.golden(),
            "{} drifted through LoopBuilder::plant(SimPlantFactory)",
            s.name()
        );
    }
}

/// Backends compose with every finisher, not just `.local()`: the
/// distributed poll engine driving an explicit sim plant stays golden.
#[test]
fn distributed_finisher_composes_with_sim_plant_backend() {
    let s = Scenario::SimpleFaultFree;
    let mut dl = facade_builder(s)
        .plant(SimPlantFactory)
        .distributed(NetConfig::tcp_poll().recv_timeout(Duration::from_millis(200)))
        .expect("distributed sim-plant loop");
    assert_eq!(
        hash_result(&dl.run(GOLDEN_PERIODS)),
        s.golden(),
        "{} drifted through .plant(SimPlantFactory).distributed(tcp_poll)",
        s.name()
    );
}

/// ...and with `.fleet(n)`: the factory travels into the worker threads.
#[test]
fn fleet_finisher_composes_with_sim_plant_backend() {
    let report = LoopBuilder::new(workloads::simple())
        .plant(SimPlantFactory)
        .fleet(3)
        .run(10)
        .expect("sim-plant fleet runs");
    assert_eq!(report.loops, 3);
    assert_eq!(report.total_periods, 30);
    assert_eq!(report.control_errors, 0);
}

/// The trace-replay backend: a hand-written schema-v1 JSONL recording
/// drives the loop, and the sampled utilizations are the recorded
/// values bit-for-bit.
#[test]
fn replay_backend_composes_through_the_facade() {
    let mut text = String::new();
    for k in 0..20 {
        text.push_str(&format!(
            "{{\"period\":{k},\"time\":{}.0,\"u_p1\":0.6,\"u_p2\":0.55}}\n",
            (k + 1) * 1000
        ));
    }
    let trace = ReplayTrace::parse(&text).expect("schema-v1 rows parse");
    let mut cl = LoopBuilder::new(workloads::simple())
        .plant(trace)
        .record_trace(true)
        .local()
        .expect("replay loop builds");
    assert_eq!(cl.plant().name(), "replay");
    let result = cl.run(20);
    for (k, step) in result.trace.steps().iter().enumerate() {
        assert_eq!(
            step.utilization.as_slice(),
            &[0.6, 0.55],
            "period {k}: replayed utilization must be the recorded bits"
        );
    }
}

/// The real-OS backend composes through the same `.plant(...)` seam.
/// Workers are real processes, so this stays tiny (and skips when the
/// host cannot spawn them).
#[cfg(feature = "os-plant")]
#[test]
fn os_plant_backend_composes_through_the_facade() {
    use std::time::Duration;
    let built = LoopBuilder::new(workloads::simple())
        .plant(OsPlantConfig::new().wall_period(Duration::from_millis(50)))
        .local();
    let mut cl = match built {
        Ok(cl) => cl,
        Err(e) => {
            eprintln!("skipping os-plant facade test: {e}");
            return;
        }
    };
    assert_eq!(cl.plant().name(), "os");
    cl.run(3);
}

#[test]
fn facade_failures_surface_as_unified_errors_with_kinds() {
    // An in-loop lane model composed with a real transport is a config
    // error — the facade rejects it before anything binds a socket.
    let err: Error = facade_builder(Scenario::SimpleFaultFree)
        .lanes(LaneModel {
            report_delay: 1,
            loss_probability: 0.1,
            seed: 3,
        })
        .distributed(NetConfig::tcp_poll())
        .expect_err("lane model + transport must be rejected")
        .into();
    assert_eq!(err.kind(), ErrorKind::Config);
    // The layer error is still reachable for callers that need detail.
    assert!(err.source().is_some(), "unified error lost its source");
}
