//! Cross-validation of the analytic stability bound (§6.2) against the
//! simulated closed loop — the core scientific claim of the paper: the
//! model-based analysis predicts where the real system destabilizes.

use eucon::control::stability;
use eucon::prelude::*;

/// Simulates SIMPLE at the given uniform gain (etf = gain when all
/// subtasks share the factor) and reports the tail (mean, std dev).
fn simulated_tail(gain: f64) -> (f64, f64) {
    // The widened rate range keeps actuator saturation from masking the
    // instability at high gains.
    let run = SteadyRun::paper(
        workloads::simple_widened(3.0),
        ControllerSpec::Eucon(MpcConfig::simple()),
        ExecModel::Constant,
    );
    let result = run.run(gain).expect("run");
    let s = metrics::window(&result.trace.utilization_series(0), 100, 300);
    (s.mean, s.std_dev)
}

#[test]
fn analytic_bound_separates_stable_from_unstable() {
    let f = workloads::simple().allocation_matrix();
    let cfg = MpcConfig::simple();
    let critical = stability::critical_uniform_gain(&f, &cfg, 20.0, 1e-4).expect("analysis");
    assert!(
        (critical - 6.51).abs() < 0.05,
        "derivation drift: {critical:.4}"
    );

    // Comfortably inside the bound: tight regulation.  (The paper notes
    // that σ already exceeds 0.05 around half the bound even though the
    // loop is analytically stable — bounded oscillation, not divergence —
    // so "calm" is asserted at 30%.)
    let (mean_low, std_low) = simulated_tail(0.3 * critical);
    // Past the bound: sustained oscillation or divergence above the set
    // point.
    let (mean_high, std_high) = simulated_tail(1.4 * critical);
    assert!(
        std_low < 0.05 && (mean_low - 0.8284).abs() < 0.02,
        "simulation at 30% of the analytic bound must be calm: mean {mean_low:.3}, σ {std_low:.4}"
    );
    assert!(
        std_high > 0.10 || mean_high > 0.88,
        "simulation at 140% of the analytic bound must diverge: mean {mean_high:.3}, σ {std_high:.4}"
    );
}

#[test]
fn spectral_radius_predicts_convergence_speed() {
    // A snappier reference trajectory (smaller Tref) shrinks the
    // spectral radius — and the simulated loop settles faster, at equal
    // gain and therefore equal noise level (§6.3's speed knob).
    let f = workloads::simple().allocation_matrix();
    let mut fast_cfg = MpcConfig::simple();
    fast_cfg.tref_over_ts = 2.0;
    let mut slow_cfg = MpcConfig::simple();
    slow_cfg.tref_over_ts = 8.0;
    let rho_fast = stability::closed_loop_spectral_radius(&f, &fast_cfg, &[0.5, 0.5]).unwrap();
    let rho_slow = stability::closed_loop_spectral_radius(&f, &slow_cfg, &[0.5, 0.5]).unwrap();
    assert!(
        rho_fast < rho_slow,
        "Tref 2 must contract faster than Tref 8 analytically"
    );

    let settle = |cfg: MpcConfig| -> usize {
        let run = SteadyRun::paper(
            workloads::simple(),
            ControllerSpec::Eucon(cfg),
            ExecModel::Constant,
        );
        let result = run.run(0.5).expect("run");
        let u = result.trace.utilization_series(0);
        metrics::settling_hold(&u, 0.8284, 0.05, 0, 10).expect("settles")
    };
    let t_fast = settle(fast_cfg);
    let t_slow = settle(slow_cfg);
    assert!(
        t_fast < t_slow,
        "simulated settling must follow the analysis: Tref 2 in {t_fast}, Tref 8 in {t_slow}"
    );
}

#[test]
fn medium_controller_stable_at_its_operating_gains() {
    // The MEDIUM experiments run at gains up to ~1 (etf ∈ [0.1, 1]); the
    // analysis must certify that whole region with margin.
    let f = workloads::medium().allocation_matrix();
    let cfg = MpcConfig::medium();
    for g in [0.1, 0.33, 0.5, 0.9, 1.0, 1.5, 2.0] {
        assert!(
            stability::is_stable(&f, &cfg, &[g; 4]).expect("analysis"),
            "MEDIUM must be analytically stable at gain {g}"
        );
    }
}

#[test]
fn unconstrained_law_matches_online_controller_in_interior() {
    // Away from all constraints, the online QP-based controller must
    // produce exactly the linear law used by the stability analysis.
    let set = workloads::simple();
    let f = set.allocation_matrix();
    let cfg = MpcConfig::simple();
    let law = stability::control_law(&f, &cfg).expect("law");

    let b = rms_set_points(&set);
    let mut ctrl = MpcController::new(&set, b.clone(), cfg).expect("controller");
    // A tiny error keeps every constraint slack.
    let u = Vector::from_slice(&[b[0] - 0.01, b[1] - 0.005]);
    let r_before = ctrl.rates().clone();
    let r_after = ctrl.step(&u).expect("step");
    let dr = &r_after - &r_before;
    let expected = law.k_u.mul_vec(&(&u - &b));
    assert!(
        dr.approx_eq(&expected, 1e-8),
        "QP solution {dr} must equal the analytic law {expected}"
    );
}
