//! Integration tests reproducing Experiment II of the paper (§7.3):
//! execution times change dynamically at run time (etf 0.5 → 0.9 at
//! 100·Ts → 0.33 at 200·Ts) on the MEDIUM workload.

use eucon::prelude::*;

fn varying(controller: ControllerSpec) -> RunResult {
    VaryingRun::paper(
        workloads::medium(),
        controller,
        ExecModel::Uniform { half_width: 0.2 },
    )
    .run()
    .expect("experiment II run")
}

/// Figure 6: under OPEN the utilization just follows the execution-time
/// steps — no regulation.
#[test]
fn fig6_open_tracks_disturbance() {
    let result = varying(ControllerSpec::Open);
    let b = result.set_points[0];
    let u1 = result.trace.utilization_series(0);
    let phase1 = metrics::window(&u1, 50, 100).mean; // etf 0.5
    let phase2 = metrics::window(&u1, 150, 200).mean; // etf 0.9
    let phase3 = metrics::window(&u1, 250, 300).mean; // etf 0.33
    assert!((phase1 - 0.5 * b).abs() < 0.05, "phase 1: {phase1:.3}");
    assert!((phase2 - 0.9 * b).abs() < 0.07, "phase 2: {phase2:.3}");
    assert!((phase3 - 0.33 * b).abs() < 0.05, "phase 3: {phase3:.3}");
    // The swings dwarf anything EUCON exhibits.
    assert!(
        phase2 - phase3 > 0.3,
        "OPEN must fluctuate with the workload"
    );
}

/// Figure 7: EUCON holds every processor at its set point through both
/// steps, re-converging within a few tens of periods (paper: ~20·Ts).
#[test]
fn fig7_eucon_reconverges_after_steps() {
    let result = varying(ControllerSpec::Eucon(MpcConfig::medium()));
    for p in 0..4 {
        let b = result.set_points[p];
        let u = result.trace.utilization_series(p);
        for (lo, hi) in [(50, 100), (150, 200), (250, 300)] {
            let s = metrics::window(&u, lo, hi);
            assert!(
                (s.mean - b).abs() < 0.03,
                "P{} window [{lo},{hi}): mean {:.3} vs set point {:.3}",
                p + 1,
                s.mean,
                b
            );
        }
        // The paper reports re-convergence within ~20 Ts; our (gentler)
        // corrected reference trajectory settles within ~40 Ts — same
        // shape, documented in EXPERIMENTS.md.
        let settle_up = VaryingRun::settling_after(&result, p, 100, 200, 0.05);
        assert!(
            settle_up.is_some_and(|k| k <= 45),
            "P{}: slow/failed resettle after the 0.9 step: {settle_up:?}",
            p + 1
        );
        // The paper notes the downward step settles more slowly (the
        // utilization gain is only 0.33 there); allow up to 60 periods.
        let settle_down = VaryingRun::settling_after(&result, p, 200, 300, 0.05);
        assert!(
            settle_down.is_some_and(|k| k <= 80),
            "P{}: slow/failed resettle after the 0.33 step: {settle_down:?}",
            p + 1
        );
    }
}

/// §7.3's asymmetry claim: "The system settling time in response to the
/// utilization change at time 200Ts is longer than that at time 100Ts ...
/// because the utilization gain is smaller during [200Ts, 300Ts]".
#[test]
fn settling_is_slower_after_the_downward_step() {
    let result = varying(ControllerSpec::Eucon(MpcConfig::medium()));
    let mut up_total = 0usize;
    let mut down_total = 0usize;
    for p in 0..4 {
        up_total += VaryingRun::settling_after(&result, p, 100, 200, 0.05).expect("settles up");
        down_total += VaryingRun::settling_after(&result, p, 200, 300, 0.05).expect("settles down");
    }
    assert!(
        down_total > up_total,
        "downward-step settling ({down_total} total) must exceed upward ({up_total} total)"
    );
}

/// Figure 8: the rate trajectories implement the regulation — rates drop
/// after execution times rise at 100·Ts and rise again after they fall at
/// 200·Ts.
#[test]
fn fig8_rates_mirror_disturbance() {
    let result = varying(ControllerSpec::Eucon(MpcConfig::medium()));
    for t in 0..6 {
        let r = result.trace.rate_series(t);
        let before = metrics::window(&r, 80, 100).mean;
        let during = metrics::window(&r, 150, 200).mean;
        let after = metrics::window(&r, 270, 300).mean;
        assert!(
            during < before,
            "T{}: rates must drop when execution times rise ({before:.5} -> {during:.5})",
            t + 1
        );
        assert!(
            after > during * 1.5,
            "T{}: rates must rise when execution times fall ({during:.5} -> {after:.5})",
            t + 1
        );
    }
}

/// EUCON's regulation protects deadlines through the disturbance, while
/// OPEN's overload phase misses them (phase 2 pushes some processors past
/// their schedulable bound only for OPEN when etf ≥ 1.4; at 0.9 OPEN stays
/// feasible, so compare deadline protection at a harsher profile).
#[test]
fn deadline_protection_through_disturbance() {
    let eucon = varying(ControllerSpec::Eucon(MpcConfig::medium()));
    assert!(
        eucon.deadlines.miss_ratio() < 0.05,
        "EUCON keeps misses rare: {:.4}",
        eucon.deadlines.miss_ratio()
    );
}
