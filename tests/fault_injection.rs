//! Fault injection end to end: the supervised controller must keep the
//! loop alive — finite, in-bounds rates, graceful degradation, automatic
//! re-convergence — under processor crashes, sensor faults and actuation
//! lane faults that break the paper's idealized assumptions.
//!
//! The CI `chaos` job runs this suite across several seeds via
//! `EUCON_FAULT_SEED` (default 42), so the stochastic fault draws don't
//! ossify around one lucky RNG stream.

use eucon::core::FaultSummary;
use eucon::prelude::*;

/// Seed for stochastic fault draws; overridden by the CI seed matrix.
fn fault_seed() -> u64 {
    std::env::var("EUCON_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

fn supervised() -> ControllerSpec {
    ControllerSpec::SupervisedEucon {
        mpc: MpcConfig::simple(),
        supervisor: SupervisorConfig::default(),
    }
}

fn run_with_faults(spec: ControllerSpec, plan: FaultPlan, periods: usize) -> RunResult {
    let mut cl = ClosedLoop::builder(workloads::simple())
        .sim_config(SimConfig::constant_etf(0.5).seed(1))
        .controller(spec)
        .faults(plan)
        .build()
        .expect("loop");
    cl.run(periods)
}

/// Every rate in the trace is finite and inside the task rate box.
fn assert_rates_sane(result: &RunResult) {
    let set = workloads::simple();
    for (k, step) in result.trace.steps().iter().enumerate() {
        assert!(
            step.rates.is_finite(),
            "non-finite rate at period {k}: {}",
            step.rates
        );
        for (t, task) in set.tasks().iter().enumerate() {
            assert!(
                step.rates[t] >= task.rate_min() - 1e-9 && step.rates[t] <= task.rate_max() + 1e-9,
                "rate {} of T{} out of box at period {k}",
                step.rates[t],
                t + 1
            );
        }
    }
}

/// The ISSUE's acceptance scenario: P2 crashes at period 60, recovers at
/// 100, and 20% of actuation commands are lost throughout.  The
/// supervised EUCON must re-converge to within ±0.03 of the set points by
/// period 150 with zero panics and zero non-finite rates.
#[test]
fn acceptance_crash_plus_actuation_loss_reconverges() {
    let plan = FaultPlan::none()
        .crash(1, 60, 100)
        .actuation_loss(0.2)
        .seed(fault_seed());
    let result = run_with_faults(supervised(), plan, 250);
    assert_rates_sane(&result);
    for p in 0..2 {
        let series = result.trace.utilization_series(p);
        let tail = metrics::window(&series, 150, 250);
        assert!(
            (tail.mean - result.set_points[p]).abs() < 0.03,
            "P{} mean {:.3} should re-converge to {:.3} by period 150 \
             (seed {})",
            p + 1,
            tail.mean,
            result.set_points[p],
            fault_seed()
        );
    }
    assert_eq!(result.control_errors, 0, "supervisor absorbs every fault");
    assert_eq!(result.faults.crashed_periods, 40);
    assert!(
        result.faults.degraded_periods >= 40,
        "the watchdog must actually degrade during the outage"
    );
    assert!(result.faults.actuation_drops > 0);
}

/// Regression pinned to the paper's number: after P2's crash window ends
/// at period 100, the loop is back at the 0.828 RMS bound within 50
/// periods of recovery.
#[test]
fn crash_recovery_reconverges_to_rms_bound_within_50_periods() {
    let plan = FaultPlan::none().crash(1, 60, 100);
    let result = run_with_faults(supervised(), plan, 170);
    assert_rates_sane(&result);
    for p in 0..2 {
        let series = result.trace.utilization_series(p);
        // Recovery at period 100 is followed by a backlog drain (P2 pinned
        // at u = 1 while the jobs queued during the outage execute), then
        // the re-engaged MPC climbs back: inside the ±0.05 settling band
        // within 50 periods of recovery…
        let settle = metrics::settling_hold(&series, 0.828, 0.05, 100, 10);
        assert!(
            settle.is_some_and(|k| k <= 150),
            "P{} settled at {settle:?}, want <= 150 (50 periods after recovery)",
            p + 1
        );
        // …and squarely back on the RMS bound right after.
        let tail = metrics::window(&series, 150, 170);
        assert!(
            (tail.mean - 0.828).abs() < 0.03,
            "P{} tail mean {:.3} not back at 0.828 after recovery",
            p + 1,
            tail.mean
        );
    }
    // The outage is visible in the trace annotations, then clears.
    let steps = result.trace.steps();
    assert!(steps[60..100].iter().all(|s| s.annotations.crashed == [1]));
    assert!(steps[100..]
        .iter()
        .all(|s| s.annotations.crashed.is_empty()));
}

/// Satellite (a) end to end: the *unsupervised* MPC rejects non-finite
/// samples with a typed error instead of poisoning its warm-started
/// optimizer — the loop coasts on previous rates and recovers.
#[test]
fn raw_mpc_survives_nan_sensors_via_sample_rejection() {
    let plan = FaultPlan::none().sensor(0, 40, 80, SensorFaultKind::NaN);
    let spec = ControllerSpec::Eucon(MpcConfig::simple());
    let result = run_with_faults(spec, plan, 150);
    assert_rates_sane(&result);
    assert_eq!(result.control_errors, 40, "one typed rejection per period");
    let tail = metrics::window(&result.trace.utilization_series(0), 120, 150);
    assert!(
        (tail.mean - 0.828).abs() < 0.03,
        "optimizer survived the NaN storm: mean {:.3}",
        tail.mean
    );
}

/// Stochastic crashes with the same seed reproduce the same run; a
/// different seed gives a different fault history.
#[test]
fn stochastic_faults_are_seed_deterministic() {
    let plan = |seed: u64| {
        FaultPlan::none()
            .random_crashes(1.0 / 30.0, 1.0 / 8.0)
            .seed(seed)
    };
    let a = run_with_faults(supervised(), plan(fault_seed()), 80);
    let b = run_with_faults(supervised(), plan(fault_seed()), 80);
    // Traces can contain NaN in the `received` reports of crashed
    // periods (NaN != NaN), so compare the physical histories.
    let crash_history = |r: &RunResult| -> Vec<Vec<usize>> {
        r.trace
            .steps()
            .iter()
            .map(|s| s.annotations.crashed.clone())
            .collect()
    };
    assert_eq!(crash_history(&a), crash_history(&b), "same crash schedule");
    for t in 0..3 {
        assert_eq!(
            a.trace.rate_series(t),
            b.trace.rate_series(t),
            "same seed, same rate history for T{}",
            t + 1
        );
    }
    for p in 0..2 {
        assert_eq!(a.trace.utilization_series(p), b.trace.utilization_series(p));
    }
    assert_eq!(a.faults, b.faults);
    assert_ne!(
        a.faults,
        FaultSummary::default(),
        "mtbf 30 over 80 periods crashes at least once"
    );
    let c = run_with_faults(supervised(), plan(fault_seed() + 1), 80);
    assert_ne!(
        crash_history(&a),
        crash_history(&c),
        "different seeds should explore different fault histories"
    );
    assert_rates_sane(&a);
    assert_rates_sane(&c);
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Property (satellite d): whatever fault sequence the plan
        /// throws at the loop — crashes, bursts, frozen/NaN/stuck
        /// sensors, lossy and delayed actuation — the supervised MPC
        /// never emits a rate outside [Rmin, Rmax] or a non-finite rate.
        #[test]
        fn supervised_rates_always_finite_and_bounded(
            crash_proc in 0usize..2,
            crash_from in 5usize..40,
            crash_len in 1usize..30,
            burst_factor in 0.5f64..4.0,
            sensor_kind in 0usize..3,
            loss in 0.0f64..0.6,
            act_delay in 0usize..3,
            seed in 0u64..1000,
        ) {
            let kind = match sensor_kind {
                0 => SensorFaultKind::Frozen,
                1 => SensorFaultKind::NaN,
                _ => SensorFaultKind::Stuck(2.5),
            };
            let plan = FaultPlan::none()
                .crash(crash_proc, crash_from, crash_from + crash_len)
                .burst(1 - crash_proc, 10, 35, burst_factor)
                .sensor(crash_proc, 20, 45, kind)
                .actuation_loss(loss)
                .actuation_delay(act_delay)
                .seed(seed);
            let result = run_with_faults(supervised(), plan, 60);
            assert_rates_sane(&result);
            prop_assert_eq!(result.control_errors, 0);
        }
    }
}
