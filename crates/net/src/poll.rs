//! A single-threaded readiness engine multiplexing many TCP lanes.
//!
//! [`PollEngine`] owns an arbitrary number of nonblocking loopback-TCP
//! lanes and drives them all from one sweep loop — no thread per lane,
//! no I/O threads at all.  Each sweep visits a lane's socket at most
//! once per drain: readable bytes are pulled into the lane's
//! [`FrameReader`] until the socket would block, then complete frames
//! are handed to the caller as zero-copy [`FrameView`]s decoded straight
//! from the read buffer.
//!
//! Sends go through [`crate::frame::encode_frame`], so the steady-state
//! hot path allocates nothing: header bytes and `f64` bit patterns are
//! appended to one reused scratch buffer and written out with a bounded
//! `WouldBlock` retry.
//!
//! Unlike [`crate::TcpTransport`], the poll engine does not reconnect: a
//! lane that breaks stays broken and is reported through
//! [`PollEngine::lane_connected`].  The layers above decide what a dead
//! lane means — the distributed runtime falls back to stale-hold, and
//! the control service escalates quarantine → eviction.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

use crate::error::TransportError;
use crate::frame::{encode_frame, Frame, FrameKind, FrameReader, FrameView};
use crate::tcp::TcpConfig;
use crate::transport::TransportStats;

/// Identifies one registered lane inside a [`PollEngine`].
///
/// Tokens are dense indices assigned in registration order and stay
/// valid for the engine's lifetime (deregistering a lane retires the
/// slot without renumbering the others).
pub type LaneToken = usize;

/// Per-lane state: the socket, its reassembly buffer and counters.
#[derive(Debug)]
struct Slot {
    stream: Option<TcpStream>,
    reader: FrameReader,
    stats: TransportStats,
}

impl Slot {
    /// Tears the lane down; a partial frame from the dead connection
    /// must not prefix anything that may arrive on a future stream.
    fn mark_broken(&mut self) {
        self.stream = None;
        self.reader.clear();
    }
}

/// One poll-based event loop over any number of TCP lanes.
#[derive(Debug)]
pub struct PollEngine {
    cfg: TcpConfig,
    slots: Vec<Slot>,
    /// Shared encode scratch, reused across every send on every lane.
    out: Vec<u8>,
}

impl PollEngine {
    /// An engine with no lanes yet.
    pub fn new(cfg: &TcpConfig) -> Self {
        PollEngine {
            cfg: cfg.clone(),
            slots: Vec::new(),
            out: Vec::with_capacity(256),
        }
    }

    /// Registers a connected stream and returns its lane token.
    ///
    /// The stream is switched to nonblocking mode and `TCP_NODELAY` is
    /// applied per the engine's config.
    ///
    /// # Errors
    ///
    /// Propagates `std::io::Error` from the socket options.
    pub fn register(&mut self, stream: TcpStream) -> std::io::Result<LaneToken> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(self.cfg.nodelay)?;
        self.slots.push(Slot {
            stream: Some(stream),
            reader: FrameReader::new(),
            stats: TransportStats::default(),
        });
        Ok(self.slots.len() - 1)
    }

    /// Retires a lane: closes its socket and drops buffered bytes.  The
    /// token stays allocated (counters remain readable) but the lane is
    /// disconnected from then on.
    pub fn deregister(&mut self, token: LaneToken) {
        if let Some(slot) = self.slots.get_mut(token) {
            slot.mark_broken();
        }
    }

    /// Number of registered lanes (including retired ones).
    pub fn lanes(&self) -> usize {
        self.slots.len()
    }

    /// Whether the engine has no lanes.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Whether a lane's socket is currently up.
    pub fn lane_connected(&self, token: LaneToken) -> bool {
        self.slots
            .get(token)
            .is_some_and(|slot| slot.stream.is_some())
    }

    /// Encodes one frame from a value iterator and writes it to a lane —
    /// the allocation-free send path (no owned [`Frame`], no payload
    /// `Vec`).
    ///
    /// `shard` is only meaningful for [`FrameKind::BoundaryExchange`].
    ///
    /// # Errors
    ///
    /// [`TransportError::Disconnected`] if the lane is down (the frame is
    /// counted as dropped), [`TransportError::Timeout`] if the socket
    /// stayed write-blocked past the configured send timeout.
    pub fn send<I>(
        &mut self,
        token: LaneToken,
        kind: FrameKind,
        seq: u64,
        period: u64,
        shard: u16,
        values: I,
    ) -> Result<(), TransportError>
    where
        I: ExactSizeIterator<Item = f64>,
    {
        self.out.clear();
        encode_frame(&mut self.out, kind, seq, period, shard, values);
        write_encoded(&mut self.slots[token], &self.out, &self.cfg)
    }

    /// Writes an owned, pre-built frame to a lane (the bridge for frames
    /// that crossed a delay/loss gate and therefore already exist).
    ///
    /// # Errors
    ///
    /// Same contract as [`PollEngine::send`].
    pub fn send_frame(&mut self, token: LaneToken, frame: &Frame) -> Result<(), TransportError> {
        self.out.clear();
        frame.encode_into(&mut self.out);
        write_encoded(&mut self.slots[token], &self.out, &self.cfg)
    }

    /// Sweeps one lane: pulls all readable bytes off the socket, then
    /// hands every complete frame to `f` as a zero-copy [`FrameView`].
    /// Returns the number of frames delivered.
    ///
    /// A peer disconnect is not an error here — buffered frames are
    /// still delivered, the lane is marked down, and the caller observes
    /// it through [`PollEngine::lane_connected`].
    ///
    /// # Errors
    ///
    /// [`TransportError::Frame`] when the stream carries a malformed
    /// frame; the lane is torn down (an unframed stream cannot be
    /// resynchronized) and the decode-error counter advances.
    pub fn drain(
        &mut self,
        token: LaneToken,
        mut f: impl FnMut(FrameView<'_>),
    ) -> Result<usize, TransportError> {
        let slot = &mut self.slots[token];
        fill_slot(slot);
        let mut delivered = 0;
        loop {
            match slot.reader.next_view() {
                Ok(Some(view)) => {
                    slot.stats.received += 1;
                    delivered += 1;
                    f(view);
                }
                Ok(None) => return Ok(delivered),
                Err(e) => {
                    slot.stats.decode_errors += 1;
                    slot.mark_broken();
                    return Err(e.into());
                }
            }
        }
    }

    /// A lane's own counters.
    pub fn lane_stats(&self, token: LaneToken) -> TransportStats {
        self.slots
            .get(token)
            .map(|slot| slot.stats)
            .unwrap_or_default()
    }

    /// Counters aggregated over every lane.
    pub fn stats(&self) -> TransportStats {
        let mut total = TransportStats::default();
        for slot in &self.slots {
            total = total.merge(&slot.stats);
        }
        total
    }
}

/// Writes `out` to the slot's socket with a bounded `WouldBlock` retry.
fn write_encoded(slot: &mut Slot, out: &[u8], cfg: &TcpConfig) -> Result<(), TransportError> {
    let Some(stream) = slot.stream.as_mut() else {
        slot.stats.dropped += 1;
        return Err(TransportError::Disconnected);
    };
    let deadline = Instant::now() + cfg.send_timeout;
    let mut written = 0;
    while written < out.len() {
        match stream.write(&out[written..]) {
            Ok(0) => {
                slot.mark_broken();
                slot.stats.dropped += 1;
                return Err(TransportError::Disconnected);
            }
            Ok(n) => {
                written += n;
                slot.stats.bytes_sent += n as u64;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    // Never stall the sampling period on a clogged lane;
                    // stale-hold above covers the gap.
                    slot.stats.dropped += 1;
                    return Err(TransportError::Timeout);
                }
                std::thread::yield_now();
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => {
                slot.mark_broken();
                slot.stats.dropped += 1;
                return Err(e.into());
            }
        }
    }
    slot.stats.sent += 1;
    Ok(())
}

/// Pulls every readable byte off the slot's socket into its reader.
fn fill_slot(slot: &mut Slot) {
    let Some(stream) = slot.stream.as_mut() else {
        return;
    };
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => {
                // Orderly shutdown; buffered frames still drain below.
                slot.stream = None;
                return;
            }
            Ok(n) => {
                slot.stats.bytes_received += n as u64;
                slot.reader.extend(&chunk[..n]);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                slot.mark_broken();
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lanes::tcp_lane_fabric;

    #[test]
    fn frames_sweep_across_many_lanes() {
        let mut fabric = tcp_lane_fabric(&TcpConfig::default(), 16).unwrap();
        for lane in 0..16 {
            fabric
                .proc
                .send(
                    lane,
                    FrameKind::UtilizationReport,
                    1,
                    7,
                    0,
                    [lane as f64 / 16.0].into_iter(),
                )
                .unwrap();
        }
        let mut got = [f64::NAN; 16];
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        let mut remaining = 16;
        while remaining > 0 && Instant::now() < deadline {
            for (lane, slot) in got.iter_mut().enumerate() {
                remaining -= fabric
                    .ctrl
                    .drain(lane, |view| {
                        assert_eq!(view.kind(), FrameKind::UtilizationReport);
                        assert_eq!(view.period(), 7);
                        *slot = view.value(0);
                    })
                    .unwrap();
            }
        }
        for (lane, v) in got.iter().enumerate() {
            assert_eq!(v.to_bits(), (lane as f64 / 16.0).to_bits());
        }
        let stats = fabric.ctrl.stats();
        assert_eq!(stats.received, 16);
        assert_eq!(stats.decode_errors, 0);
        assert_eq!(fabric.proc.stats().sent, 16);
    }

    #[test]
    fn commands_flow_the_other_way() {
        let mut fabric = tcp_lane_fabric(&TcpConfig::default(), 2).unwrap();
        fabric
            .ctrl
            .send(1, FrameKind::RateCommand, 5, 3, 0, [1.5, 2.5].into_iter())
            .unwrap();
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        let mut rates = Vec::new();
        while rates.is_empty() && Instant::now() < deadline {
            fabric
                .proc
                .drain(1, |view| {
                    assert_eq!(view.seq(), 5);
                    rates.extend(view.values());
                })
                .unwrap();
        }
        assert_eq!(rates, vec![1.5, 2.5]);
        // The untouched lane saw nothing.
        assert_eq!(fabric.proc.lane_stats(0).received, 0);
    }

    #[test]
    fn dead_lane_counts_drops_and_reports_down() {
        let mut fabric = tcp_lane_fabric(&TcpConfig::default(), 2).unwrap();
        fabric.proc.deregister(0);
        assert!(!fabric.proc.lane_connected(0));
        assert!(fabric.proc.lane_connected(1));
        let err = fabric
            .proc
            .send(0, FrameKind::UtilizationReport, 1, 1, 0, [0.5].into_iter())
            .unwrap_err();
        assert_eq!(err, TransportError::Disconnected);
        assert_eq!(fabric.proc.lane_stats(0).dropped, 1);
        // The controller side eventually observes the hangup on drain.
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        while fabric.ctrl.lane_connected(0) && Instant::now() < deadline {
            fabric.ctrl.drain(0, |_| {}).unwrap();
        }
        assert!(!fabric.ctrl.lane_connected(0));
    }

    #[test]
    fn garbage_on_the_wire_is_a_decode_error() {
        use std::io::Write as _;
        let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let mut raw = TcpStream::connect(addr).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        let mut engine = PollEngine::new(&TcpConfig::default());
        let token = engine.register(accepted).unwrap();
        raw.write_all(&[0xAB; 40]).unwrap();
        raw.flush().unwrap();
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        let mut saw_error = false;
        while !saw_error && Instant::now() < deadline {
            if engine.drain(token, |_| {}).is_err() {
                saw_error = true;
            }
        }
        assert!(saw_error);
        assert_eq!(engine.stats().decode_errors, 1);
        assert!(!engine.lane_connected(token));
    }
}
