//! The in-process backend: bounded SPSC queues with drop-oldest
//! backpressure.
//!
//! This is the *ideal lane*: frames cross instantly and in order, so a
//! distributed loop over channel lanes reproduces the single-process
//! closed loop bit-for-bit — the property the transport-equivalence
//! golden tests pin.  It is also the deterministic substrate the
//! delay/loss middleware composes over in tests.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::error::TransportError;
use crate::frame::Frame;
use crate::transport::{Transport, TransportStats};

/// One direction of a lane.
#[derive(Debug, Default)]
struct Queue {
    frames: VecDeque<Frame>,
    /// The consuming endpoint dropped (peer-liveness signal).
    closed: bool,
}

type Shared = Arc<Mutex<Queue>>;

/// One endpoint of an in-process lane created by [`channel_pair`].
#[derive(Debug)]
pub struct ChannelTransport {
    tx: Shared,
    rx: Shared,
    capacity: usize,
    stats: TransportStats,
}

/// Creates a bounded in-process lane and returns its two endpoints.
///
/// Each direction holds at most `capacity` frames; a send into a full
/// queue evicts the oldest undelivered frame (drop-oldest backpressure —
/// fresh measurements beat stale ones in a control loop) and counts the
/// eviction.
///
/// # Panics
///
/// Panics if `capacity` is zero.
pub fn channel_pair(capacity: usize) -> (ChannelTransport, ChannelTransport) {
    assert!(capacity > 0, "lane capacity must be at least 1");
    let ab: Shared = Arc::default();
    let ba: Shared = Arc::default();
    let a = ChannelTransport {
        tx: Arc::clone(&ab),
        rx: Arc::clone(&ba),
        capacity,
        stats: TransportStats::default(),
    };
    let b = ChannelTransport {
        tx: ba,
        rx: ab,
        capacity,
        stats: TransportStats::default(),
    };
    (a, b)
}

impl Drop for ChannelTransport {
    fn drop(&mut self) {
        // Mark both directions closed so the peer sees Disconnected
        // instead of silently sending into the void.
        for q in [&self.tx, &self.rx] {
            if let Ok(mut q) = q.lock() {
                q.closed = true;
            }
        }
    }
}

impl Transport for ChannelTransport {
    fn send(&mut self, frame: Frame) -> Result<(), TransportError> {
        let mut q = self.tx.lock().expect("lane lock");
        if q.closed {
            return Err(TransportError::Disconnected);
        }
        if q.frames.len() == self.capacity {
            q.frames.pop_front();
            self.stats.dropped += 1;
        }
        q.frames.push_back(frame);
        self.stats.sent += 1;
        Ok(())
    }

    fn try_recv(&mut self) -> Result<Option<Frame>, TransportError> {
        let mut q = self.rx.lock().expect("lane lock");
        match q.frames.pop_front() {
            Some(f) => {
                self.stats.received += 1;
                Ok(Some(f))
            }
            None if q.closed => Err(TransportError::Disconnected),
            None => Ok(None),
        }
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "channel"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(seq: u64) -> Frame {
        Frame::UtilizationReport {
            seq,
            period: seq,
            values: vec![seq as f64],
        }
    }

    #[test]
    fn frames_cross_in_order() {
        let (mut a, mut b) = channel_pair(8);
        a.send(report(1)).unwrap();
        a.send(report(2)).unwrap();
        assert_eq!(b.try_recv().unwrap().unwrap().seq(), 1);
        assert_eq!(b.try_recv().unwrap().unwrap().seq(), 2);
        assert_eq!(b.try_recv().unwrap(), None);
        assert_eq!(a.stats().sent, 2);
        assert_eq!(b.stats().received, 2);
    }

    #[test]
    fn both_directions_work() {
        let (mut a, mut b) = channel_pair(4);
        a.send(report(1)).unwrap();
        b.send(report(9)).unwrap();
        assert_eq!(a.try_recv().unwrap().unwrap().seq(), 9);
        assert_eq!(b.try_recv().unwrap().unwrap().seq(), 1);
    }

    #[test]
    fn full_queue_drops_oldest() {
        let (mut a, mut b) = channel_pair(2);
        for k in 1..=5 {
            a.send(report(k)).unwrap();
        }
        // Only the freshest two survive.
        assert_eq!(b.try_recv().unwrap().unwrap().seq(), 4);
        assert_eq!(b.try_recv().unwrap().unwrap().seq(), 5);
        assert_eq!(b.try_recv().unwrap(), None);
        assert_eq!(a.stats().dropped, 3);
    }

    #[test]
    fn dropped_peer_is_reported() {
        let (mut a, b) = channel_pair(2);
        drop(b);
        assert_eq!(a.send(report(1)), Err(TransportError::Disconnected));
        assert_eq!(a.try_recv(), Err(TransportError::Disconnected));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = channel_pair(0);
    }
}
