//! `eucon-net` — the feedback-lane transport runtime.
//!
//! The EUCON paper (§4) wires each processor's utilization monitor and
//! rate modulator to the central controller over dedicated TCP
//! connections, but evaluates the loop with those lanes idealized away.
//! This crate makes the lanes real and pluggable:
//!
//! * [`Frame`] — the versioned, compact binary wire format
//!   (utilization reports up, rate commands down; `f64` payloads
//!   round-trip bit-for-bit).
//! * [`Transport`] — the backend-agnostic lane interface, with two
//!   backends: [`channel_pair`] (bounded in-process queues with
//!   drop-oldest backpressure — the *ideal lane*) and [`tcp_pair`]
//!   (real nonblocking loopback TCP with partial-frame reassembly and
//!   reconnect backoff).
//! * [`DelayLoss`] — network effects (report delay, report loss) as
//!   middleware composable over any backend, draw-for-draw compatible
//!   with the closed loop's `LaneModel` (the decision core is exposed
//!   as [`DelayLossGate`] for transports that bypass the middleware).
//! * [`PollEngine`] / [`LaneFabric`] — the many-lane runtime: one
//!   sweep-based readiness loop multiplexing thousands of nonblocking
//!   TCP lanes with zero-copy [`FrameView`] decode and allocation-free
//!   [`encode_frame`] sends — no thread per lane.
//!
//! The distributed loop runtime in `eucon-core` drives these endpoints;
//! this crate knows nothing about control theory — it moves frames.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod channel;
mod error;
mod frame;
mod lanes;
mod middleware;
mod poll;
mod tcp;
mod transport;

pub use channel::{channel_pair, ChannelTransport};
pub use error::{FrameError, TransportError};
pub use frame::{
    encode_frame, Frame, FrameKind, FrameReader, FrameView, BOUNDARY_TRAILER_LEN, FRAME_VERSION,
    HEADER_LEN, MAX_PAYLOAD,
};
pub use lanes::{tcp_lane_fabric, LaneFabric};
pub use middleware::{DelayLoss, DelayLossGate};
pub use poll::{LaneToken, PollEngine};
pub use tcp::{tcp_pair, TcpConfig, TcpTransport};
pub use transport::{Transport, TransportStats};
