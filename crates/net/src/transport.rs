//! The backend-agnostic lane interface.

use crate::error::TransportError;
use crate::frame::Frame;

/// Cumulative counters of one [`Transport`] endpoint.
///
/// Middleware layers fold their own activity in (a delay/loss layer adds
/// its drops to [`TransportStats::dropped`]), so the top of a transport
/// stack reports the whole stack's behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Frames accepted for sending at this endpoint.
    pub sent: u64,
    /// Frames delivered to the caller by [`Transport::try_recv`].
    pub received: u64,
    /// Frames dropped before reaching the peer: backpressure evictions,
    /// middleware losses, send timeouts.
    pub dropped: u64,
    /// Times a broken connection was re-established.
    pub reconnects: u64,
    /// Malformed frames encountered while decoding the inbound stream.
    pub decode_errors: u64,
    /// Raw bytes written to the wire (0 for in-process backends).
    pub bytes_sent: u64,
    /// Raw bytes read from the wire (0 for in-process backends).
    pub bytes_received: u64,
}

impl TransportStats {
    /// Element-wise sum (for aggregating a set of lanes).
    pub fn merge(&self, other: &TransportStats) -> TransportStats {
        TransportStats {
            sent: self.sent + other.sent,
            received: self.received + other.received,
            dropped: self.dropped + other.dropped,
            reconnects: self.reconnects + other.reconnects,
            decode_errors: self.decode_errors + other.decode_errors,
            bytes_sent: self.bytes_sent + other.bytes_sent,
            bytes_received: self.bytes_received + other.bytes_received,
        }
    }
}

/// One endpoint of a bidirectional feedback lane.
///
/// A lane connects the controller node to one processor node; each side
/// holds one `Transport` endpoint and exchanges [`Frame`]s through it.
/// Endpoints are non-blocking: [`Transport::try_recv`] returns
/// immediately, and [`Transport::send`] blocks at most for the backend's
/// configured send timeout.
///
/// Two backends ship with `eucon-net`:
///
/// * [`channel_pair`] — in-process bounded SPSC queues with drop-oldest
///   backpressure; the *ideal lane* whose closed-loop traces are
///   bit-identical to the single-process loop.
/// * [`tcp_pair`] — real loopback TCP over `std::net`: nonblocking
///   sockets, partial-frame reassembly, reconnect with exponential
///   backoff and jitter.
///
/// [`DelayLoss`] composes over any backend to model lossy or delayed
/// lanes.
///
/// [`channel_pair`]: crate::channel_pair
/// [`tcp_pair`]: crate::tcp_pair
/// [`DelayLoss`]: crate::DelayLoss
pub trait Transport: Send {
    /// Queues a frame for delivery to the peer endpoint.
    ///
    /// Backends may drop frames under backpressure (counted in
    /// [`TransportStats::dropped`]) rather than block the control loop.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError`] when the peer is unreachable and the
    /// frame could not even be queued.
    fn send(&mut self, frame: Frame) -> Result<(), TransportError>;

    /// Delivers the next received frame, without blocking.
    ///
    /// `Ok(None)` means no complete frame is currently available.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError`] for connection failures and malformed
    /// inbound streams; after an error the endpoint keeps trying to
    /// recover on subsequent calls (reconnecting backends re-establish
    /// the connection with backoff).
    fn try_recv(&mut self) -> Result<Option<Frame>, TransportError>;

    /// Advances time-based machinery by one sampling period.
    ///
    /// Plain backends ignore it; the delay/loss middleware uses the tick
    /// as its clock (a frame sent at period `k` over a lane with delay
    /// `d` becomes receivable after `d` ticks).  The loop runtime calls
    /// this exactly once per sampling period, after all sends.
    fn tick(&mut self) {}

    /// Cumulative counters for this endpoint (including any middleware
    /// layered on top of it).
    fn stats(&self) -> TransportStats;

    /// Short backend label for diagnostics (`"channel"`, `"tcp"`, ...).
    fn name(&self) -> &'static str;
}

// Boxed endpoints are endpoints, so middleware composes over
// `Box<dyn Transport>` the same as over a concrete backend.
impl<T: Transport + ?Sized> Transport for Box<T> {
    fn send(&mut self, frame: Frame) -> Result<(), TransportError> {
        (**self).send(frame)
    }

    fn try_recv(&mut self) -> Result<Option<Frame>, TransportError> {
        (**self).try_recv()
    }

    fn tick(&mut self) {
        (**self).tick()
    }

    fn stats(&self) -> TransportStats {
        (**self).stats()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}
