//! Real loopback-TCP lanes over `std::net`.
//!
//! Each lane is one TCP connection between the controller node and a
//! processor node.  Both endpoints are nonblocking and are driven by the
//! control loop itself — no I/O threads.  A broken connection is
//! re-established transparently with exponential backoff plus jitter;
//! the acceptor side keeps its listener open and re-accepts.
//!
//! The endpoints never block the sampling period: `try_recv` returns
//! immediately, and `send` retries `WouldBlock` only up to the
//! configured per-lane send timeout before counting the frame as
//! dropped.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::TransportError;
use crate::frame::{Frame, FrameReader};
use crate::transport::{Transport, TransportStats};

/// Tuning knobs of a TCP lane endpoint.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Longest a single `send` may spend retrying `WouldBlock` before the
    /// frame is counted as dropped.
    pub send_timeout: Duration,
    /// First reconnect delay after a broken connection.
    pub base_backoff: Duration,
    /// Backoff ceiling (doubling stops here).
    pub max_backoff: Duration,
    /// Seed of the jitter applied to each backoff delay (deterministic
    /// runs stay deterministic).
    pub jitter_seed: u64,
    /// Sets `TCP_NODELAY` on every connection (on by default: feedback
    /// frames are tiny and latency-critical).
    pub nodelay: bool,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            send_timeout: Duration::from_millis(5),
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(250),
            jitter_seed: 0x7cb0_94d1,
            nodelay: true,
        }
    }
}

/// How an endpoint re-establishes a broken connection.
#[derive(Debug)]
enum Role {
    /// Dials the peer's address.
    Connector { addr: SocketAddr },
    /// Re-accepts on the original listener.
    Acceptor { listener: TcpListener },
}

/// One endpoint of a loopback-TCP lane created by [`tcp_pair`].
#[derive(Debug)]
pub struct TcpTransport {
    cfg: TcpConfig,
    role: Role,
    stream: Option<TcpStream>,
    reader: FrameReader,
    /// Scratch encode buffer, reused across sends.
    out: Vec<u8>,
    rng: StdRng,
    /// Consecutive failed reconnect attempts (drives the backoff curve).
    failures: u32,
    /// Earliest instant the next reconnect attempt is allowed.
    retry_at: Option<Instant>,
    stats: TransportStats,
}

/// Creates a connected loopback-TCP lane and returns
/// `(acceptor, connector)` endpoints.
///
/// Binds an ephemeral port on `127.0.0.1`, dials it, and accepts — so
/// the pair is connected on return.  Both endpoints are nonblocking;
/// the acceptor keeps the listener open for transparent re-accepts
/// after a broken connection.
///
/// # Errors
///
/// Propagates any `std::io::Error` from binding, connecting or
/// accepting.
pub fn tcp_pair(cfg: &TcpConfig) -> std::io::Result<(TcpTransport, TcpTransport)> {
    let listener = TcpListener::bind(("127.0.0.1", 0))?;
    let addr = listener.local_addr()?;
    let connector_stream = TcpStream::connect(addr)?;
    let (acceptor_stream, _) = listener.accept()?;
    listener.set_nonblocking(true)?;
    prepare(&connector_stream, cfg)?;
    prepare(&acceptor_stream, cfg)?;
    let acceptor = TcpTransport::new(cfg.clone(), Role::Acceptor { listener }, acceptor_stream);
    let connector = TcpTransport::new(
        TcpConfig {
            // De-correlate the two endpoints' jitter streams.
            jitter_seed: cfg.jitter_seed.wrapping_add(1),
            ..cfg.clone()
        },
        Role::Connector { addr },
        connector_stream,
    );
    Ok((acceptor, connector))
}

fn prepare(stream: &TcpStream, cfg: &TcpConfig) -> std::io::Result<()> {
    stream.set_nonblocking(true)?;
    stream.set_nodelay(cfg.nodelay)?;
    Ok(())
}

impl TcpTransport {
    fn new(cfg: TcpConfig, role: Role, stream: TcpStream) -> Self {
        let rng = StdRng::seed_from_u64(cfg.jitter_seed);
        TcpTransport {
            cfg,
            role,
            stream: Some(stream),
            reader: FrameReader::new(),
            out: Vec::with_capacity(256),
            rng,
            failures: 0,
            retry_at: None,
            stats: TransportStats::default(),
        }
    }

    /// The peer address this endpoint dials (connector) or listens on
    /// (acceptor).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        match &self.role {
            Role::Connector { addr } => Some(*addr),
            Role::Acceptor { listener } => listener.local_addr().ok(),
        }
    }

    /// Tears down the current connection and schedules a reconnect.
    fn mark_broken(&mut self) {
        if self.stream.take().is_some() {
            // A partial frame from the dead connection must not prefix
            // the next one.
            self.reader.clear();
        }
        if self.retry_at.is_none() {
            self.retry_at = Some(Instant::now() + self.next_backoff());
        }
    }

    /// Exponential backoff with multiplicative jitter in `[0.5, 1.5)`.
    fn next_backoff(&mut self) -> Duration {
        let exp = self.failures.min(16);
        let base = self
            .cfg
            .base_backoff
            .saturating_mul(1u32 << exp.min(31))
            .min(self.cfg.max_backoff);
        let jitter = 0.5 + self.rng.gen::<f64>();
        base.mul_f64(jitter)
    }

    /// Attempts to re-establish the connection if the backoff allows it.
    fn try_reconnect(&mut self) {
        if self.stream.is_some() {
            return;
        }
        if let Some(at) = self.retry_at {
            if Instant::now() < at {
                return;
            }
        }
        let attempt = match &self.role {
            Role::Connector { addr } => TcpStream::connect_timeout(
                addr,
                self.cfg.send_timeout.max(Duration::from_millis(1)),
            ),
            Role::Acceptor { listener } => listener.accept().map(|(s, _)| s),
        };
        match attempt {
            Ok(stream) if prepare(&stream, &self.cfg).is_ok() => {
                self.stream = Some(stream);
                self.failures = 0;
                self.retry_at = None;
                self.stats.reconnects += 1;
            }
            _ => {
                self.failures = self.failures.saturating_add(1);
                self.retry_at = Some(Instant::now() + self.next_backoff());
            }
        }
    }

    /// Drains readable bytes from the socket into the frame reader.
    fn fill_reader(&mut self) -> Result<(), TransportError> {
        let Some(stream) = self.stream.as_mut() else {
            return Ok(());
        };
        let mut chunk = [0u8; 4096];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) => {
                    // Orderly shutdown by the peer.
                    self.mark_broken();
                    return Err(TransportError::Disconnected);
                }
                Ok(n) => {
                    self.stats.bytes_received += n as u64;
                    self.reader.extend(&chunk[..n]);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.mark_broken();
                    return Err(e.into());
                }
            }
        }
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, frame: Frame) -> Result<(), TransportError> {
        self.try_reconnect();
        let Some(stream) = self.stream.as_mut() else {
            self.stats.dropped += 1;
            return Err(TransportError::Disconnected);
        };
        self.out.clear();
        frame.encode_into(&mut self.out);
        let deadline = Instant::now() + self.cfg.send_timeout;
        let mut written = 0;
        while written < self.out.len() {
            match stream.write(&self.out[written..]) {
                Ok(0) => {
                    self.mark_broken();
                    self.stats.dropped += 1;
                    return Err(TransportError::Disconnected);
                }
                Ok(n) => {
                    written += n;
                    self.stats.bytes_sent += n as u64;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        // Never stall the sampling period on a clogged
                        // lane; the controller's stale-reuse path covers
                        // the gap.
                        self.stats.dropped += 1;
                        return Err(TransportError::Timeout);
                    }
                    std::thread::yield_now();
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => {
                    self.mark_broken();
                    self.stats.dropped += 1;
                    return Err(e.into());
                }
            }
        }
        self.stats.sent += 1;
        Ok(())
    }

    fn try_recv(&mut self) -> Result<Option<Frame>, TransportError> {
        self.try_reconnect();
        // Yield frames already buffered before touching the socket.
        match self.reader.next_frame() {
            Ok(Some(frame)) => {
                self.stats.received += 1;
                return Ok(Some(frame));
            }
            Ok(None) => {}
            Err(e) => {
                self.stats.decode_errors += 1;
                self.mark_broken();
                return Err(e.into());
            }
        }
        self.fill_reader()?;
        match self.reader.next_frame() {
            Ok(Some(frame)) => {
                self.stats.received += 1;
                Ok(Some(frame))
            }
            Ok(None) => Ok(None),
            Err(e) => {
                self.stats.decode_errors += 1;
                self.mark_broken();
                Err(e.into())
            }
        }
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "tcp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(seq: u64, values: &[f64]) -> Frame {
        Frame::UtilizationReport {
            seq,
            period: seq,
            values: values.to_vec(),
        }
    }

    /// Polls `try_recv` until a frame arrives or the deadline passes.
    fn recv_within(t: &mut TcpTransport, d: Duration) -> Option<Frame> {
        let deadline = Instant::now() + d;
        while Instant::now() < deadline {
            match t.try_recv() {
                Ok(Some(f)) => return Some(f),
                Ok(None) | Err(_) => std::thread::yield_now(),
            }
        }
        None
    }

    #[test]
    fn frames_cross_loopback() {
        let (mut a, mut b) = tcp_pair(&TcpConfig::default()).unwrap();
        a.send(report(1, &[0.25, f64::NAN])).unwrap();
        b.send(report(2, &[0.75])).unwrap();
        let got = recv_within(&mut b, Duration::from_secs(2)).expect("frame from a");
        assert_eq!(got.seq(), 1);
        assert_eq!(got.values()[0].to_bits(), 0.25f64.to_bits());
        assert!(got.values()[1].is_nan());
        let got = recv_within(&mut a, Duration::from_secs(2)).expect("frame from b");
        assert_eq!(got.seq(), 2);
        assert!(a.stats().bytes_sent > 0);
        assert!(b.stats().bytes_received > 0);
    }

    #[test]
    fn many_frames_survive_fragmentation() {
        let (mut a, mut b) = tcp_pair(&TcpConfig::default()).unwrap();
        let n = 200u64;
        for seq in 0..n {
            a.send(report(seq, &[seq as f64 / n as f64])).unwrap();
        }
        let mut got = 0u64;
        let deadline = Instant::now() + Duration::from_secs(5);
        while got < n && Instant::now() < deadline {
            match b.try_recv() {
                Ok(Some(f)) => {
                    assert_eq!(f.seq(), got, "in-order delivery");
                    got += 1;
                }
                _ => std::thread::yield_now(),
            }
        }
        assert_eq!(got, n);
    }

    #[test]
    fn reconnects_after_peer_restart() {
        let cfg = TcpConfig::default();
        let (mut acceptor, connector) = tcp_pair(&cfg).unwrap();
        let addr = connector.local_addr().unwrap();

        // Kill the connector side; the acceptor notices on recv.
        drop(connector);
        let deadline = Instant::now() + Duration::from_secs(5);
        while acceptor.stream.is_some() && Instant::now() < deadline {
            let _ = acceptor.try_recv();
        }
        assert!(acceptor.stream.is_none(), "acceptor saw the break");

        // A fresh connector dials the same listener; the acceptor
        // re-accepts and frames flow again.
        let stream = TcpStream::connect(addr).unwrap();
        prepare(&stream, &cfg).unwrap();
        let mut fresh = TcpTransport::new(cfg, Role::Connector { addr }, stream);
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut delivered = false;
        let mut seq = 0;
        while !delivered && Instant::now() < deadline {
            let _ = acceptor.try_recv();
            if fresh.send(report(seq, &[0.5])).is_ok()
                && recv_within(&mut acceptor, Duration::from_millis(50)).is_some()
            {
                delivered = true;
            }
            seq += 1;
        }
        assert!(delivered, "frames flow over the re-accepted connection");
        assert!(acceptor.stats().reconnects >= 1);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let (mut acceptor, connector) = tcp_pair(&TcpConfig {
            base_backoff: Duration::from_millis(4),
            max_backoff: Duration::from_millis(16),
            ..TcpConfig::default()
        })
        .unwrap();
        drop(connector);
        acceptor.mark_broken();
        let mut prev = Duration::ZERO;
        for failures in 0..8 {
            acceptor.failures = failures;
            let d = acceptor.next_backoff();
            // Jitter is in [0.5, 1.5), so the cap bounds every draw.
            assert!(d <= Duration::from_millis(16).mul_f64(1.5));
            if failures <= 1 {
                prev = prev.max(d);
            }
        }
        assert!(prev > Duration::ZERO);
    }
}
