//! Lane fabrics: bulk construction of connected poll-engine lane sets.
//!
//! A control deployment needs one lane per processor, and a service
//! hosting many tenants needs thousands.  [`tcp_lane_fabric`] builds
//! them all off a single ephemeral listener: lane `i` is one loopback
//! TCP connection whose controller-side endpoint is token `i` in
//! [`LaneFabric::ctrl`] and whose processor-side endpoint is token `i`
//! in [`LaneFabric::proc`] — the two engines index identically, so the
//! distributed runtime addresses a lane by processor index on both
//! sides.

use std::net::{TcpListener, TcpStream};

use crate::poll::PollEngine;
use crate::tcp::TcpConfig;

/// Both sides of a set of connected lanes, each side one [`PollEngine`].
///
/// In-process deployments (the simulation harness, the control service)
/// hold both engines; a real split deployment would hold one side and
/// hand the peer sockets to the remote node.
#[derive(Debug)]
pub struct LaneFabric {
    /// Controller-side endpoints: commands out, reports in.
    pub ctrl: PollEngine,
    /// Processor-side endpoints: reports out, commands in.
    pub proc: PollEngine,
}

impl LaneFabric {
    /// Number of lanes in the fabric.
    pub fn lanes(&self) -> usize {
        self.ctrl.lanes()
    }
}

/// Builds `lanes` connected loopback-TCP lanes multiplexed over two
/// poll engines.
///
/// One ephemeral listener serves every accept, and connections are
/// established sequentially, so token `i` on the controller engine is
/// wired to token `i` on the processor engine.
///
/// # Errors
///
/// Propagates any `std::io::Error` from binding, connecting, accepting
/// or configuring the sockets.
pub fn tcp_lane_fabric(cfg: &TcpConfig, lanes: usize) -> std::io::Result<LaneFabric> {
    let listener = TcpListener::bind(("127.0.0.1", 0))?;
    let addr = listener.local_addr()?;
    let mut ctrl = PollEngine::new(cfg);
    let mut proc = PollEngine::new(cfg);
    for lane in 0..lanes {
        let proc_stream = TcpStream::connect(addr)?;
        let (ctrl_stream, _) = listener.accept()?;
        let ctrl_token = ctrl.register(ctrl_stream)?;
        let proc_token = proc.register(proc_stream)?;
        debug_assert_eq!(ctrl_token, lane);
        debug_assert_eq!(proc_token, lane);
    }
    Ok(LaneFabric { ctrl, proc })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameKind;
    use std::time::{Duration, Instant};

    #[test]
    fn fabric_tokens_pair_up_by_lane() {
        let mut fabric = tcp_lane_fabric(&TcpConfig::default(), 8).unwrap();
        assert_eq!(fabric.lanes(), 8);
        // Each proc lane sends its own index; the paired ctrl lane must
        // be the only one that receives it.
        for lane in 0..8 {
            fabric
                .proc
                .send(
                    lane,
                    FrameKind::UtilizationReport,
                    1,
                    1,
                    0,
                    [lane as f64].into_iter(),
                )
                .unwrap();
        }
        for lane in 0..8 {
            let deadline = Instant::now() + Duration::from_secs(5);
            let mut got = None;
            while got.is_none() && Instant::now() < deadline {
                fabric
                    .ctrl
                    .drain(lane, |view| got = Some(view.value(0)))
                    .unwrap();
            }
            assert_eq!(got, Some(lane as f64), "lane {lane} crosswired");
        }
    }
}
