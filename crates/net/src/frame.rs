//! The wire format of the feedback lanes: versioned, compact binary
//! frames.
//!
//! Three frame types cross a lane.  Two mirror the paper's §4
//! architecture: a processor's utilization monitor sends
//! [`Frame::UtilizationReport`]s to the controller, and the controller
//! sends [`Frame::RateCommand`]s back to the processor's rate modulator.
//! The third, [`Frame::BoundaryExchange`], carries the compact boundary
//! state (home utilizations, committed move vectors) that peer-coupled
//! shard controllers trade once per period over their shard lanes.
//!
//! ## Layout (little-endian)
//!
//! ```text
//! offset  size  field
//! 0       1     version byte (FRAME_VERSION)
//! 1       1     kind (1 = UtilizationReport, 2 = RateCommand,
//!               3 = BoundaryExchange)
//! 2       2     payload count n (u16)
//! 4       8     seq   — per-lane monotone sequence number (u64)
//! 12      8     period — sampling-period index the payload belongs to (u64)
//! 20      8·n   payload — f64 bit patterns (exact round-trip, NaN-safe)
//! ```
//!
//! Kind 3 inserts a 4-byte trailer between the header and the payload:
//! a `u16` shard id plus two reserved zero bytes.
//!
//! Values are serialized through [`f64::to_bits`], so a frame round-trips
//! every `f64` bit-for-bit — including the `NaN` a crashed monitor
//! reports.  [`FrameReader`] reassembles frames from an arbitrary byte
//! stream (TCP delivers partial frames at will).

use crate::error::FrameError;

/// Current wire-format version; bumped on any layout change so mixed
/// deployments fail loudly instead of mis-decoding.
pub const FRAME_VERSION: u8 = 1;

/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 20;

/// Maximum payload values per frame (defensive cap: a corrupt length
/// field must not make the reader buffer unbounded garbage).
pub const MAX_PAYLOAD: usize = 4096;

const KIND_REPORT: u8 = 1;
const KIND_COMMAND: u8 = 2;
const KIND_BOUNDARY: u8 = 3;

/// Extra bytes a [`Frame::BoundaryExchange`] carries between the header
/// and the payload: `u16` shard id + two reserved zero bytes.
pub const BOUNDARY_TRAILER_LEN: usize = 4;

/// One message crossing a feedback lane.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Frame {
    /// Monitor → controller: the utilization sample(s) for one sampling
    /// period.
    UtilizationReport {
        /// Per-lane monotone sequence number.
        seq: u64,
        /// Sampling-period index the sample belongs to.
        period: u64,
        /// Sampled utilizations (one per monitored processor on this
        /// lane; a dedicated per-processor lane carries exactly one).
        values: Vec<f64>,
    },
    /// Controller → rate modulator: new task rates.
    RateCommand {
        /// Per-lane monotone sequence number.
        seq: u64,
        /// Sampling-period index the command was computed for.
        period: u64,
        /// Commanded rates (in the receiving node's task order).
        rates: Vec<f64>,
    },
    /// Shard ↔ shard-hub: compact boundary state for peer-coupled shard
    /// control — home-processor utilizations (shard → hub), committed
    /// rate-change moves (shard → hub), or a neighbor's boundary view
    /// (hub → shard).  The payload semantics are fixed by the lane
    /// direction and the sharded-control protocol, not by the frame.
    BoundaryExchange {
        /// Per-lane monotone sequence number.
        seq: u64,
        /// Sampling-period index the boundary state belongs to.
        period: u64,
        /// Originating (or addressed) shard index.
        shard: u16,
        /// Boundary values in protocol order (utilizations or moves).
        values: Vec<f64>,
    },
}

impl Frame {
    /// The frame's sequence number.
    pub fn seq(&self) -> u64 {
        match self {
            Frame::UtilizationReport { seq, .. }
            | Frame::RateCommand { seq, .. }
            | Frame::BoundaryExchange { seq, .. } => *seq,
        }
    }

    /// The sampling-period index the frame belongs to.
    pub fn period(&self) -> u64 {
        match self {
            Frame::UtilizationReport { period, .. }
            | Frame::RateCommand { period, .. }
            | Frame::BoundaryExchange { period, .. } => *period,
        }
    }

    /// The payload values (utilizations, rates or boundary state).
    pub fn values(&self) -> &[f64] {
        match self {
            Frame::UtilizationReport { values, .. } => values,
            Frame::RateCommand { rates, .. } => rates,
            Frame::BoundaryExchange { values, .. } => values,
        }
    }

    fn kind_byte(&self) -> u8 {
        match self {
            Frame::UtilizationReport { .. } => KIND_REPORT,
            Frame::RateCommand { .. } => KIND_COMMAND,
            Frame::BoundaryExchange { .. } => KIND_BOUNDARY,
        }
    }

    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        let trailer = match self {
            Frame::BoundaryExchange { .. } => BOUNDARY_TRAILER_LEN,
            _ => 0,
        };
        HEADER_LEN + trailer + 8 * self.values().len()
    }

    /// Appends the wire encoding to `out` (no intermediate allocation).
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds [`MAX_PAYLOAD`] values — frames are
    /// built from task-set-sized vectors, so this is a programming error,
    /// not a runtime condition.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let values = self.values();
        assert!(values.len() <= MAX_PAYLOAD, "frame payload too large");
        out.reserve(self.encoded_len());
        out.push(FRAME_VERSION);
        out.push(self.kind_byte());
        out.extend_from_slice(&(values.len() as u16).to_le_bytes());
        out.extend_from_slice(&self.seq().to_le_bytes());
        out.extend_from_slice(&self.period().to_le_bytes());
        if let Frame::BoundaryExchange { shard, .. } = self {
            out.extend_from_slice(&shard.to_le_bytes());
            out.extend_from_slice(&[0u8; 2]);
        }
        for &v in values {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }

    /// The wire encoding as a fresh byte vector.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut out);
        out
    }

    /// Decodes one frame from the start of `bytes`.
    ///
    /// Returns the frame and the number of bytes consumed, or `Ok(None)`
    /// when `bytes` does not yet hold a complete frame (the caller should
    /// buffer more input).
    ///
    /// # Errors
    ///
    /// Returns [`FrameError`] for an unsupported version byte, an unknown
    /// frame kind or an oversize payload declaration.
    pub fn decode(bytes: &[u8]) -> Result<Option<(Frame, usize)>, FrameError> {
        if bytes.len() < HEADER_LEN {
            return Ok(None);
        }
        if bytes[0] != FRAME_VERSION {
            return Err(FrameError::BadVersion(bytes[0]));
        }
        let kind = bytes[1];
        if kind != KIND_REPORT && kind != KIND_COMMAND && kind != KIND_BOUNDARY {
            return Err(FrameError::BadKind(kind));
        }
        let n = u16::from_le_bytes([bytes[2], bytes[3]]) as usize;
        if n > MAX_PAYLOAD {
            return Err(FrameError::Oversize(n));
        }
        let trailer = if kind == KIND_BOUNDARY {
            BOUNDARY_TRAILER_LEN
        } else {
            0
        };
        let total = HEADER_LEN + trailer + 8 * n;
        if bytes.len() < total {
            return Ok(None);
        }
        let seq = u64::from_le_bytes(bytes[4..12].try_into().expect("8 bytes"));
        let period = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
        let payload_start = HEADER_LEN + trailer;
        let values: Vec<f64> = bytes[payload_start..total]
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8 bytes"))))
            .collect();
        let frame = match kind {
            KIND_REPORT => Frame::UtilizationReport {
                seq,
                period,
                values,
            },
            KIND_BOUNDARY => Frame::BoundaryExchange {
                seq,
                period,
                shard: u16::from_le_bytes([bytes[HEADER_LEN], bytes[HEADER_LEN + 1]]),
                values,
            },
            _ => Frame::RateCommand {
                seq,
                period,
                rates: values,
            },
        };
        Ok(Some((frame, total)))
    }
}

/// Reassembles [`Frame`]s from an arbitrarily-chunked byte stream.
///
/// TCP is a byte stream: a read may return half a frame, or three frames
/// and a half.  The reader buffers input and yields complete frames in
/// order.  A decode error poisons the buffered bytes (there is no way to
/// resynchronize an unframed stream), so the buffer is cleared and the
/// error returned; the transport layer treats that as a broken connection.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    consumed: usize,
}

impl FrameReader {
    /// An empty reader.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Appends raw bytes received from the stream.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact lazily: only when the dead prefix dominates the buffer.
        if self.consumed > 0 && self.consumed >= self.buf.len() / 2 {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame, if one is buffered.
    ///
    /// # Errors
    ///
    /// Propagates [`FrameError`] for malformed input; the internal buffer
    /// is cleared (the stream cannot be resynchronized past a bad frame).
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        match Frame::decode(&self.buf[self.consumed..]) {
            Ok(Some((frame, used))) => {
                self.consumed += used;
                Ok(Some(frame))
            }
            Ok(None) => Ok(None),
            Err(e) => {
                self.clear();
                Err(e)
            }
        }
    }

    /// Bytes currently buffered and not yet decoded.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.consumed
    }

    /// Discards all buffered bytes (used when a connection is torn down —
    /// a partial frame from the old connection must not prefix the new
    /// stream).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.consumed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(seq: u64, values: &[f64]) -> Frame {
        Frame::UtilizationReport {
            seq,
            period: seq,
            values: values.to_vec(),
        }
    }

    #[test]
    fn round_trips_bit_for_bit() {
        let f = report(7, &[0.5, f64::NAN, -0.0, 1e308, f64::INFINITY]);
        let bytes = f.encode();
        let (g, used) = Frame::decode(&bytes).unwrap().unwrap();
        assert_eq!(used, bytes.len());
        // NaN != NaN, so compare bit patterns.
        let a: Vec<u64> = f.values().iter().map(|v| v.to_bits()).collect();
        let b: Vec<u64> = g.values().iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b);
        assert_eq!(g.seq(), 7);
        assert_eq!(g.period(), 7);
    }

    #[test]
    fn command_round_trips() {
        let f = Frame::RateCommand {
            seq: 3,
            period: 9,
            rates: vec![1.25, 2.5],
        };
        let (g, _) = Frame::decode(&f.encode()).unwrap().unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn boundary_round_trips_bit_for_bit() {
        let f = Frame::BoundaryExchange {
            seq: 11,
            period: 42,
            shard: 513,
            values: vec![0.25, -0.0, f64::NAN, 7e-300],
        };
        let bytes = f.encode();
        assert_eq!(bytes.len(), HEADER_LEN + BOUNDARY_TRAILER_LEN + 8 * 4);
        assert_eq!(bytes.len(), f.encoded_len());
        let (g, used) = Frame::decode(&bytes).unwrap().unwrap();
        assert_eq!(used, bytes.len());
        let Frame::BoundaryExchange {
            seq,
            period,
            shard,
            values,
        } = &g
        else {
            panic!("decoded wrong kind: {g:?}");
        };
        assert_eq!((*seq, *period, *shard), (11, 42, 513));
        let a: Vec<u64> = f.values().iter().map(|v| v.to_bits()).collect();
        let b: Vec<u64> = values.iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn boundary_incomplete_input_asks_for_more() {
        let bytes = Frame::BoundaryExchange {
            seq: 1,
            period: 1,
            shard: 3,
            values: vec![0.5, 0.6],
        }
        .encode();
        // Every truncation point, including mid-trailer, must buffer.
        for cut in 0..bytes.len() {
            assert_eq!(Frame::decode(&bytes[..cut]).unwrap(), None, "cut {cut}");
        }
    }

    #[test]
    fn reader_interleaves_boundary_with_reports() {
        let frames = [
            report(1, &[0.1]),
            Frame::BoundaryExchange {
                seq: 2,
                period: 2,
                shard: 0,
                values: vec![],
            },
            report(3, &[0.3]),
        ];
        let mut stream = Vec::new();
        for f in &frames {
            f.encode_into(&mut stream);
        }
        let mut reader = FrameReader::new();
        reader.extend(&stream);
        let mut got = Vec::new();
        while let Some(f) = reader.next_frame().unwrap() {
            got.push(f);
        }
        assert_eq!(got, frames);
    }

    #[test]
    fn incomplete_input_asks_for_more() {
        let bytes = report(1, &[0.1, 0.2]).encode();
        for cut in 0..bytes.len() {
            assert_eq!(Frame::decode(&bytes[..cut]).unwrap(), None, "cut {cut}");
        }
    }

    #[test]
    fn bad_version_and_kind_rejected() {
        let mut bytes = report(1, &[0.1]).encode();
        bytes[0] = 99;
        assert_eq!(Frame::decode(&bytes), Err(FrameError::BadVersion(99)));
        let mut bytes = report(1, &[0.1]).encode();
        bytes[1] = 77;
        assert_eq!(Frame::decode(&bytes), Err(FrameError::BadKind(77)));
    }

    #[test]
    fn oversize_payload_rejected() {
        let mut bytes = report(1, &[0.1]).encode();
        bytes[2..4].copy_from_slice(&u16::MAX.to_le_bytes());
        assert_eq!(
            Frame::decode(&bytes),
            Err(FrameError::Oversize(u16::MAX as usize))
        );
    }

    #[test]
    fn reader_reassembles_dribbled_bytes() {
        let frames = [report(1, &[0.1]), report(2, &[0.2, 0.3]), report(3, &[])];
        let mut stream = Vec::new();
        for f in &frames {
            f.encode_into(&mut stream);
        }
        let mut reader = FrameReader::new();
        let mut got = Vec::new();
        // Feed one byte at a time: worst-case fragmentation.
        for &b in &stream {
            reader.extend(&[b]);
            while let Some(f) = reader.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
        assert_eq!(reader.pending(), 0);
    }

    #[test]
    fn reader_poisoned_buffer_clears_on_error() {
        let mut reader = FrameReader::new();
        reader.extend(&[0xFF; 64]);
        assert!(reader.next_frame().is_err());
        assert_eq!(reader.pending(), 0, "buffer cleared after poison");
        // A good frame after the clear decodes fine.
        reader.extend(&report(5, &[0.9]).encode());
        assert_eq!(reader.next_frame().unwrap().unwrap().seq(), 5);
    }
}
