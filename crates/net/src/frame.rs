//! The wire format of the feedback lanes: versioned, compact binary
//! frames.
//!
//! Three frame types cross a lane.  Two mirror the paper's §4
//! architecture: a processor's utilization monitor sends
//! [`Frame::UtilizationReport`]s to the controller, and the controller
//! sends [`Frame::RateCommand`]s back to the processor's rate modulator.
//! The third, [`Frame::BoundaryExchange`], carries the compact boundary
//! state (home utilizations, committed move vectors) that peer-coupled
//! shard controllers trade once per period over their shard lanes.
//!
//! ## Layout (little-endian)
//!
//! ```text
//! offset  size  field
//! 0       1     version byte (FRAME_VERSION)
//! 1       1     kind (1 = UtilizationReport, 2 = RateCommand,
//!               3 = BoundaryExchange)
//! 2       2     payload count n (u16)
//! 4       8     seq   — per-lane monotone sequence number (u64)
//! 12      8     period — sampling-period index the payload belongs to (u64)
//! 20      8·n   payload — f64 bit patterns (exact round-trip, NaN-safe)
//! ```
//!
//! Kind 3 inserts a 4-byte trailer between the header and the payload:
//! a `u16` shard id plus two reserved zero bytes.
//!
//! Values are serialized through [`f64::to_bits`], so a frame round-trips
//! every `f64` bit-for-bit — including the `NaN` a crashed monitor
//! reports.  [`FrameReader`] reassembles frames from an arbitrary byte
//! stream (TCP delivers partial frames at will).

use crate::error::FrameError;

/// Current wire-format version; bumped on any layout change so mixed
/// deployments fail loudly instead of mis-decoding.
pub const FRAME_VERSION: u8 = 1;

/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 20;

/// Maximum payload values per frame (defensive cap: a corrupt length
/// field must not make the reader buffer unbounded garbage).
pub const MAX_PAYLOAD: usize = 4096;

const KIND_REPORT: u8 = 1;
const KIND_COMMAND: u8 = 2;
const KIND_BOUNDARY: u8 = 3;

/// The kind of a frame, independent of its payload representation.
///
/// [`Frame`] owns its payload; [`FrameView`] borrows it from the read
/// buffer.  Both report their kind through this enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameKind {
    /// Monitor → controller utilization sample(s).
    UtilizationReport,
    /// Controller → rate modulator task rates.
    RateCommand,
    /// Shard ↔ shard-hub boundary state.
    BoundaryExchange,
}

impl FrameKind {
    fn from_byte(b: u8) -> Option<FrameKind> {
        match b {
            KIND_REPORT => Some(FrameKind::UtilizationReport),
            KIND_COMMAND => Some(FrameKind::RateCommand),
            KIND_BOUNDARY => Some(FrameKind::BoundaryExchange),
            _ => None,
        }
    }

    fn byte(self) -> u8 {
        match self {
            FrameKind::UtilizationReport => KIND_REPORT,
            FrameKind::RateCommand => KIND_COMMAND,
            FrameKind::BoundaryExchange => KIND_BOUNDARY,
        }
    }

    fn trailer_len(self) -> usize {
        match self {
            FrameKind::BoundaryExchange => BOUNDARY_TRAILER_LEN,
            _ => 0,
        }
    }
}

/// Appends one wire frame built from a value iterator to `out` — the
/// allocation-free encode path of the poll engine: no intermediate
/// `Vec<f64>` payload, no owned [`Frame`], just header bytes plus the
/// iterator's values serialized through [`f64::to_bits`].
///
/// `shard` is only encoded for [`FrameKind::BoundaryExchange`] and is
/// ignored for the other kinds.
///
/// # Panics
///
/// Panics if the iterator reports more than [`MAX_PAYLOAD`] values.
pub fn encode_frame<I>(
    out: &mut Vec<u8>,
    kind: FrameKind,
    seq: u64,
    period: u64,
    shard: u16,
    values: I,
) where
    I: ExactSizeIterator<Item = f64>,
{
    let n = values.len();
    assert!(n <= MAX_PAYLOAD, "frame payload too large");
    out.reserve(HEADER_LEN + kind.trailer_len() + 8 * n);
    out.push(FRAME_VERSION);
    out.push(kind.byte());
    out.extend_from_slice(&(n as u16).to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&period.to_le_bytes());
    if kind == FrameKind::BoundaryExchange {
        out.extend_from_slice(&shard.to_le_bytes());
        out.extend_from_slice(&[0u8; 2]);
    }
    for v in values {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
}

/// A decoded frame borrowing its payload straight from the read buffer.
///
/// This is the zero-copy decode path: the header fields are parsed into
/// plain integers and the payload stays where the socket wrote it — no
/// intermediate `Vec<f64>`.  Values are read on demand through
/// [`FrameView::value`] / [`FrameView::values`], each a direct
/// [`f64::from_bits`] over eight payload bytes (bit-exact, NaN-safe).
#[derive(Debug, Clone, Copy)]
pub struct FrameView<'a> {
    kind: FrameKind,
    seq: u64,
    period: u64,
    shard: u16,
    payload: &'a [u8],
}

/// Validates the header at the start of `bytes` and returns the total
/// encoded length of the frame it declares, or `Ok(None)` when `bytes`
/// does not yet hold a complete frame.
fn frame_len(bytes: &[u8]) -> Result<Option<usize>, FrameError> {
    if bytes.len() < HEADER_LEN {
        return Ok(None);
    }
    if bytes[0] != FRAME_VERSION {
        return Err(FrameError::BadVersion(bytes[0]));
    }
    let Some(kind) = FrameKind::from_byte(bytes[1]) else {
        return Err(FrameError::BadKind(bytes[1]));
    };
    let n = u16::from_le_bytes([bytes[2], bytes[3]]) as usize;
    if n > MAX_PAYLOAD {
        return Err(FrameError::Oversize(n));
    }
    let total = HEADER_LEN + kind.trailer_len() + 8 * n;
    if bytes.len() < total {
        return Ok(None);
    }
    Ok(Some(total))
}

impl<'a> FrameView<'a> {
    /// Parses one frame from the start of `bytes` without copying the
    /// payload.  Returns the view and the number of bytes consumed, or
    /// `Ok(None)` when `bytes` does not yet hold a complete frame.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError`] for an unsupported version byte, an unknown
    /// frame kind or an oversize payload declaration.
    pub fn parse(bytes: &'a [u8]) -> Result<Option<(FrameView<'a>, usize)>, FrameError> {
        let Some(total) = frame_len(bytes)? else {
            return Ok(None);
        };
        let kind = FrameKind::from_byte(bytes[1]).expect("validated by frame_len");
        let seq = u64::from_le_bytes(bytes[4..12].try_into().expect("8 bytes"));
        let period = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
        let shard = if kind == FrameKind::BoundaryExchange {
            u16::from_le_bytes([bytes[HEADER_LEN], bytes[HEADER_LEN + 1]])
        } else {
            0
        };
        let payload = &bytes[HEADER_LEN + kind.trailer_len()..total];
        Ok(Some((
            FrameView {
                kind,
                seq,
                period,
                shard,
                payload,
            },
            total,
        )))
    }

    /// The frame's kind.
    pub fn kind(&self) -> FrameKind {
        self.kind
    }

    /// The frame's sequence number.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The sampling-period index the frame belongs to.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// The shard id (0 for non-boundary frames).
    pub fn shard(&self) -> u16 {
        self.shard
    }

    /// Number of payload values.
    pub fn len(&self) -> usize {
        self.payload.len() / 8
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }

    /// The `i`-th payload value, decoded in place.
    ///
    /// # Panics
    ///
    /// Panics when `i >= self.len()`.
    pub fn value(&self, i: usize) -> f64 {
        let bytes = &self.payload[8 * i..8 * i + 8];
        f64::from_bits(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Iterates the payload values in order, decoding in place.
    pub fn values(&self) -> impl ExactSizeIterator<Item = f64> + 'a {
        self.payload
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8 bytes"))))
    }

    /// Copies the payload into `out` (up to `out.len()` values) and
    /// returns how many were written.
    pub fn copy_into(&self, out: &mut [f64]) -> usize {
        let n = self.len().min(out.len());
        for (i, slot) in out.iter_mut().enumerate().take(n) {
            *slot = self.value(i);
        }
        n
    }

    /// Materializes an owned [`Frame`] (allocates — the compatibility
    /// bridge for callers that need ownership).
    pub fn to_frame(&self) -> Frame {
        let values: Vec<f64> = self.values().collect();
        match self.kind {
            FrameKind::UtilizationReport => Frame::UtilizationReport {
                seq: self.seq,
                period: self.period,
                values,
            },
            FrameKind::RateCommand => Frame::RateCommand {
                seq: self.seq,
                period: self.period,
                rates: values,
            },
            FrameKind::BoundaryExchange => Frame::BoundaryExchange {
                seq: self.seq,
                period: self.period,
                shard: self.shard,
                values,
            },
        }
    }
}

/// Extra bytes a [`Frame::BoundaryExchange`] carries between the header
/// and the payload: `u16` shard id + two reserved zero bytes.
pub const BOUNDARY_TRAILER_LEN: usize = 4;

/// One message crossing a feedback lane.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Frame {
    /// Monitor → controller: the utilization sample(s) for one sampling
    /// period.
    UtilizationReport {
        /// Per-lane monotone sequence number.
        seq: u64,
        /// Sampling-period index the sample belongs to.
        period: u64,
        /// Sampled utilizations (one per monitored processor on this
        /// lane; a dedicated per-processor lane carries exactly one).
        values: Vec<f64>,
    },
    /// Controller → rate modulator: new task rates.
    RateCommand {
        /// Per-lane monotone sequence number.
        seq: u64,
        /// Sampling-period index the command was computed for.
        period: u64,
        /// Commanded rates (in the receiving node's task order).
        rates: Vec<f64>,
    },
    /// Shard ↔ shard-hub: compact boundary state for peer-coupled shard
    /// control — home-processor utilizations (shard → hub), committed
    /// rate-change moves (shard → hub), or a neighbor's boundary view
    /// (hub → shard).  The payload semantics are fixed by the lane
    /// direction and the sharded-control protocol, not by the frame.
    BoundaryExchange {
        /// Per-lane monotone sequence number.
        seq: u64,
        /// Sampling-period index the boundary state belongs to.
        period: u64,
        /// Originating (or addressed) shard index.
        shard: u16,
        /// Boundary values in protocol order (utilizations or moves).
        values: Vec<f64>,
    },
}

impl Frame {
    /// The frame's sequence number.
    pub fn seq(&self) -> u64 {
        match self {
            Frame::UtilizationReport { seq, .. }
            | Frame::RateCommand { seq, .. }
            | Frame::BoundaryExchange { seq, .. } => *seq,
        }
    }

    /// The sampling-period index the frame belongs to.
    pub fn period(&self) -> u64 {
        match self {
            Frame::UtilizationReport { period, .. }
            | Frame::RateCommand { period, .. }
            | Frame::BoundaryExchange { period, .. } => *period,
        }
    }

    /// The payload values (utilizations, rates or boundary state).
    pub fn values(&self) -> &[f64] {
        match self {
            Frame::UtilizationReport { values, .. } => values,
            Frame::RateCommand { rates, .. } => rates,
            Frame::BoundaryExchange { values, .. } => values,
        }
    }

    /// The frame's kind.
    pub fn kind(&self) -> FrameKind {
        match self {
            Frame::UtilizationReport { .. } => FrameKind::UtilizationReport,
            Frame::RateCommand { .. } => FrameKind::RateCommand,
            Frame::BoundaryExchange { .. } => FrameKind::BoundaryExchange,
        }
    }

    fn kind_byte(&self) -> u8 {
        self.kind().byte()
    }

    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        let trailer = match self {
            Frame::BoundaryExchange { .. } => BOUNDARY_TRAILER_LEN,
            _ => 0,
        };
        HEADER_LEN + trailer + 8 * self.values().len()
    }

    /// Appends the wire encoding to `out` (no intermediate allocation).
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds [`MAX_PAYLOAD`] values — frames are
    /// built from task-set-sized vectors, so this is a programming error,
    /// not a runtime condition.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let values = self.values();
        assert!(values.len() <= MAX_PAYLOAD, "frame payload too large");
        out.reserve(self.encoded_len());
        out.push(FRAME_VERSION);
        out.push(self.kind_byte());
        out.extend_from_slice(&(values.len() as u16).to_le_bytes());
        out.extend_from_slice(&self.seq().to_le_bytes());
        out.extend_from_slice(&self.period().to_le_bytes());
        if let Frame::BoundaryExchange { shard, .. } = self {
            out.extend_from_slice(&shard.to_le_bytes());
            out.extend_from_slice(&[0u8; 2]);
        }
        for &v in values {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }

    /// The wire encoding as a fresh byte vector.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut out);
        out
    }

    /// Decodes one frame from the start of `bytes`.
    ///
    /// Returns the frame and the number of bytes consumed, or `Ok(None)`
    /// when `bytes` does not yet hold a complete frame (the caller should
    /// buffer more input).
    ///
    /// # Errors
    ///
    /// Returns [`FrameError`] for an unsupported version byte, an unknown
    /// frame kind or an oversize payload declaration.
    pub fn decode(bytes: &[u8]) -> Result<Option<(Frame, usize)>, FrameError> {
        Ok(FrameView::parse(bytes)?.map(|(view, used)| (view.to_frame(), used)))
    }
}

/// Reassembles [`Frame`]s from an arbitrarily-chunked byte stream.
///
/// TCP is a byte stream: a read may return half a frame, or three frames
/// and a half.  The reader buffers input and yields complete frames in
/// order.  A decode error poisons the buffered bytes (there is no way to
/// resynchronize an unframed stream), so the buffer is cleared and the
/// error returned; the transport layer treats that as a broken connection.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    consumed: usize,
}

impl FrameReader {
    /// An empty reader.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Appends raw bytes received from the stream.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact lazily: only when the dead prefix dominates the buffer.
        if self.consumed > 0 && self.consumed >= self.buf.len() / 2 {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame, if one is buffered.
    ///
    /// # Errors
    ///
    /// Propagates [`FrameError`] for malformed input; the internal buffer
    /// is cleared (the stream cannot be resynchronized past a bad frame).
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        match Frame::decode(&self.buf[self.consumed..]) {
            Ok(Some((frame, used))) => {
                self.consumed += used;
                Ok(Some(frame))
            }
            Ok(None) => Ok(None),
            Err(e) => {
                self.clear();
                Err(e)
            }
        }
    }

    /// Pops the next complete frame as a zero-copy [`FrameView`]
    /// borrowing this reader's buffer — the poll engine's drain path
    /// (no payload copy, no allocation).
    ///
    /// The view is valid until the next call that mutates the reader
    /// (`extend`, `next_frame`, `next_view`, `clear`).
    ///
    /// # Errors
    ///
    /// Propagates [`FrameError`] for malformed input; the internal buffer
    /// is cleared, exactly like [`FrameReader::next_frame`].
    pub fn next_view(&mut self) -> Result<Option<FrameView<'_>>, FrameError> {
        let used = match frame_len(&self.buf[self.consumed..]) {
            Ok(Some(total)) => total,
            Ok(None) => return Ok(None),
            Err(e) => {
                self.clear();
                return Err(e);
            }
        };
        let start = self.consumed;
        self.consumed += used;
        let (view, _) = FrameView::parse(&self.buf[start..start + used])?
            .expect("frame_len validated a complete frame");
        Ok(Some(view))
    }

    /// Bytes currently buffered and not yet decoded.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.consumed
    }

    /// Discards all buffered bytes (used when a connection is torn down —
    /// a partial frame from the old connection must not prefix the new
    /// stream).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.consumed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(seq: u64, values: &[f64]) -> Frame {
        Frame::UtilizationReport {
            seq,
            period: seq,
            values: values.to_vec(),
        }
    }

    #[test]
    fn round_trips_bit_for_bit() {
        let f = report(7, &[0.5, f64::NAN, -0.0, 1e308, f64::INFINITY]);
        let bytes = f.encode();
        let (g, used) = Frame::decode(&bytes).unwrap().unwrap();
        assert_eq!(used, bytes.len());
        // NaN != NaN, so compare bit patterns.
        let a: Vec<u64> = f.values().iter().map(|v| v.to_bits()).collect();
        let b: Vec<u64> = g.values().iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b);
        assert_eq!(g.seq(), 7);
        assert_eq!(g.period(), 7);
    }

    #[test]
    fn command_round_trips() {
        let f = Frame::RateCommand {
            seq: 3,
            period: 9,
            rates: vec![1.25, 2.5],
        };
        let (g, _) = Frame::decode(&f.encode()).unwrap().unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn boundary_round_trips_bit_for_bit() {
        let f = Frame::BoundaryExchange {
            seq: 11,
            period: 42,
            shard: 513,
            values: vec![0.25, -0.0, f64::NAN, 7e-300],
        };
        let bytes = f.encode();
        assert_eq!(bytes.len(), HEADER_LEN + BOUNDARY_TRAILER_LEN + 8 * 4);
        assert_eq!(bytes.len(), f.encoded_len());
        let (g, used) = Frame::decode(&bytes).unwrap().unwrap();
        assert_eq!(used, bytes.len());
        let Frame::BoundaryExchange {
            seq,
            period,
            shard,
            values,
        } = &g
        else {
            panic!("decoded wrong kind: {g:?}");
        };
        assert_eq!((*seq, *period, *shard), (11, 42, 513));
        let a: Vec<u64> = f.values().iter().map(|v| v.to_bits()).collect();
        let b: Vec<u64> = values.iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn boundary_incomplete_input_asks_for_more() {
        let bytes = Frame::BoundaryExchange {
            seq: 1,
            period: 1,
            shard: 3,
            values: vec![0.5, 0.6],
        }
        .encode();
        // Every truncation point, including mid-trailer, must buffer.
        for cut in 0..bytes.len() {
            assert_eq!(Frame::decode(&bytes[..cut]).unwrap(), None, "cut {cut}");
        }
    }

    #[test]
    fn reader_interleaves_boundary_with_reports() {
        let frames = [
            report(1, &[0.1]),
            Frame::BoundaryExchange {
                seq: 2,
                period: 2,
                shard: 0,
                values: vec![],
            },
            report(3, &[0.3]),
        ];
        let mut stream = Vec::new();
        for f in &frames {
            f.encode_into(&mut stream);
        }
        let mut reader = FrameReader::new();
        reader.extend(&stream);
        let mut got = Vec::new();
        while let Some(f) = reader.next_frame().unwrap() {
            got.push(f);
        }
        assert_eq!(got, frames);
    }

    #[test]
    fn incomplete_input_asks_for_more() {
        let bytes = report(1, &[0.1, 0.2]).encode();
        for cut in 0..bytes.len() {
            assert_eq!(Frame::decode(&bytes[..cut]).unwrap(), None, "cut {cut}");
        }
    }

    #[test]
    fn bad_version_and_kind_rejected() {
        let mut bytes = report(1, &[0.1]).encode();
        bytes[0] = 99;
        assert_eq!(Frame::decode(&bytes), Err(FrameError::BadVersion(99)));
        let mut bytes = report(1, &[0.1]).encode();
        bytes[1] = 77;
        assert_eq!(Frame::decode(&bytes), Err(FrameError::BadKind(77)));
    }

    #[test]
    fn oversize_payload_rejected() {
        let mut bytes = report(1, &[0.1]).encode();
        bytes[2..4].copy_from_slice(&u16::MAX.to_le_bytes());
        assert_eq!(
            Frame::decode(&bytes),
            Err(FrameError::Oversize(u16::MAX as usize))
        );
    }

    #[test]
    fn reader_reassembles_dribbled_bytes() {
        let frames = [report(1, &[0.1]), report(2, &[0.2, 0.3]), report(3, &[])];
        let mut stream = Vec::new();
        for f in &frames {
            f.encode_into(&mut stream);
        }
        let mut reader = FrameReader::new();
        let mut got = Vec::new();
        // Feed one byte at a time: worst-case fragmentation.
        for &b in &stream {
            reader.extend(&[b]);
            while let Some(f) = reader.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
        assert_eq!(reader.pending(), 0);
    }

    #[test]
    fn view_decodes_in_place_bit_for_bit() {
        let f = Frame::BoundaryExchange {
            seq: 9,
            period: 77,
            shard: 1024,
            values: vec![0.5, f64::NAN, -0.0, f64::NEG_INFINITY],
        };
        let bytes = f.encode();
        let (view, used) = FrameView::parse(&bytes).unwrap().unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(view.kind(), FrameKind::BoundaryExchange);
        assert_eq!((view.seq(), view.period(), view.shard()), (9, 77, 1024));
        assert_eq!(view.len(), 4);
        let a: Vec<u64> = f.values().iter().map(|v| v.to_bits()).collect();
        let b: Vec<u64> = view.values().map(|v| v.to_bits()).collect();
        assert_eq!(a, b);
        assert_eq!(view.value(1).to_bits(), f64::NAN.to_bits());
        let mut out = [0.0f64; 4];
        assert_eq!(view.copy_into(&mut out), 4);
        assert_eq!(out[0], 0.5);
        // The owned bridge reproduces the original frame exactly.
        let g = view.to_frame();
        let c: Vec<u64> = g.values().iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, c);
    }

    #[test]
    fn encode_frame_matches_owned_encoding() {
        let f = Frame::RateCommand {
            seq: 21,
            period: 6,
            rates: vec![1.5, 0.25, 3.0],
        };
        let mut streamed = Vec::new();
        encode_frame(
            &mut streamed,
            FrameKind::RateCommand,
            21,
            6,
            0,
            [1.5, 0.25, 3.0].into_iter(),
        );
        assert_eq!(streamed, f.encode(), "iterator path is byte-identical");
        let mut boundary = Vec::new();
        encode_frame(
            &mut boundary,
            FrameKind::BoundaryExchange,
            1,
            2,
            513,
            [0.5].into_iter(),
        );
        let g = Frame::BoundaryExchange {
            seq: 1,
            period: 2,
            shard: 513,
            values: vec![0.5],
        };
        assert_eq!(boundary, g.encode());
    }

    #[test]
    fn reader_views_drain_dribbled_bytes() {
        let frames = [report(1, &[0.1]), report(2, &[0.2, 0.3]), report(3, &[])];
        let mut stream = Vec::new();
        for f in &frames {
            f.encode_into(&mut stream);
        }
        let mut reader = FrameReader::new();
        let mut got = Vec::new();
        for &b in &stream {
            reader.extend(&[b]);
            while let Some(view) = reader.next_view().unwrap() {
                got.push(view.to_frame());
            }
        }
        assert_eq!(got, frames);
        assert_eq!(reader.pending(), 0);
    }

    #[test]
    fn reader_view_poisoned_buffer_clears_on_error() {
        let mut reader = FrameReader::new();
        reader.extend(&[0xFF; 64]);
        assert!(reader.next_view().is_err());
        assert_eq!(reader.pending(), 0);
        reader.extend(&report(5, &[0.9]).encode());
        assert_eq!(reader.next_view().unwrap().unwrap().seq(), 5);
    }

    #[test]
    fn reader_poisoned_buffer_clears_on_error() {
        let mut reader = FrameReader::new();
        reader.extend(&[0xFF; 64]);
        assert!(reader.next_frame().is_err());
        assert_eq!(reader.pending(), 0, "buffer cleared after poison");
        // A good frame after the clear decodes fine.
        reader.extend(&report(5, &[0.9]).encode());
        assert_eq!(reader.next_frame().unwrap().unwrap().seq(), 5);
    }
}
