//! Lane middleware: network effects composed over any backend.
//!
//! [`DelayLoss`] reimplements the closed loop's `LaneModel` semantics at
//! the transport layer, so delayed and lossy lanes are a property of the
//! *lane*, not of the loop: the same middleware wraps an in-process
//! channel in tests and a real TCP lane in a deployment.
//!
//! The draw order is kept identical to the in-loop lane model — a loss
//! probability is consulted once per frame, and only at the moment the
//! frame actually crosses the lane (after its delay elapses).  With the
//! same seed, a `DelayLoss` lane and a `LaneModel` produce the same
//! sequence of loss decisions; the transport-equivalence property test
//! pins this.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::TransportError;
use crate::frame::Frame;
use crate::transport::{Transport, TransportStats};

/// A lane that delays every frame by a fixed number of ticks and drops
/// each crossing frame independently with a configured probability.
///
/// [`Transport::tick`] is the middleware's clock: the loop runtime calls
/// it once per sampling period, which releases frames whose delay has
/// elapsed into the underlying backend (or drops them on a loss draw).
#[derive(Debug)]
pub struct DelayLoss<T> {
    inner: T,
    /// Whole ticks each frame spends in flight.
    delay: usize,
    /// Per-frame drop probability in `[0, 1)`.
    loss_probability: f64,
    rng: StdRng,
    /// Frames not yet released (oldest first); length ≤ delay + 1.
    in_flight: VecDeque<Frame>,
    /// Frames this layer dropped on a loss draw.
    lost: u64,
    /// Frames this layer accepted for sending.
    accepted: u64,
}

impl<T: Transport> DelayLoss<T> {
    /// Wraps `inner` with `delay` ticks of latency and per-frame loss
    /// probability `loss_probability` drawn from `seed`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ loss_probability < 1`.
    pub fn new(inner: T, delay: usize, loss_probability: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&loss_probability),
            "loss probability must be in [0, 1)"
        );
        DelayLoss {
            inner,
            delay,
            loss_probability,
            rng: StdRng::seed_from_u64(seed),
            in_flight: VecDeque::new(),
            lost: 0,
            accepted: 0,
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Releases every frame whose delay has elapsed, drawing the loss
    /// probability per crossing frame.
    fn release_due(&mut self) {
        while self.in_flight.len() > self.delay {
            let frame = self.in_flight.pop_front().expect("len checked");
            let dropped =
                self.loss_probability > 0.0 && self.rng.gen::<f64>() < self.loss_probability;
            if dropped {
                self.lost += 1;
            } else {
                // A full inner queue applies its own backpressure policy;
                // that is not a loss-model drop, so the error is ignored
                // here and shows up in the inner stats instead.
                let _ = self.inner.send(frame);
            }
        }
    }
}

impl<T: Transport> Transport for DelayLoss<T> {
    fn send(&mut self, frame: Frame) -> Result<(), TransportError> {
        self.accepted += 1;
        if self.delay == 0 && self.loss_probability == 0.0 {
            // Degenerate config: transparent passthrough.
            return self.inner.send(frame);
        }
        self.in_flight.push_back(frame);
        Ok(())
    }

    fn try_recv(&mut self) -> Result<Option<Frame>, TransportError> {
        self.inner.try_recv()
    }

    fn tick(&mut self) {
        self.release_due();
        self.inner.tick();
    }

    fn stats(&self) -> TransportStats {
        let mut stats = self.inner.stats();
        // The inner backend never saw lost or still-delayed frames, so
        // report sends as what this layer accepted and fold the losses in.
        stats.sent = self.accepted;
        stats.dropped += self.lost;
        stats
    }

    fn name(&self) -> &'static str {
        "delay-loss"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::channel_pair;

    fn report(seq: u64) -> Frame {
        Frame::UtilizationReport {
            seq,
            period: seq,
            values: vec![seq as f64],
        }
    }

    #[test]
    fn zero_config_is_transparent() {
        let (tx, mut rx) = channel_pair(8);
        let mut lane = DelayLoss::new(tx, 0, 0.0, 0);
        lane.send(report(1)).unwrap();
        // No tick needed: passthrough.
        assert_eq!(rx.try_recv().unwrap().unwrap().seq(), 1);
    }

    #[test]
    fn delay_holds_frames_for_d_ticks() {
        let (tx, mut rx) = channel_pair(8);
        let mut lane = DelayLoss::new(tx, 2, 0.0, 0);
        for seq in 1..=4 {
            lane.send(report(seq)).unwrap();
            lane.tick();
        }
        // After 4 send+tick rounds with delay 2, frames 1 and 2 crossed.
        assert_eq!(rx.try_recv().unwrap().unwrap().seq(), 1);
        assert_eq!(rx.try_recv().unwrap().unwrap().seq(), 2);
        assert_eq!(rx.try_recv().unwrap(), None);
    }

    #[test]
    fn loss_draws_follow_the_seed() {
        // Oracle: replicate the draw sequence with the same RNG.
        let p = 0.4;
        let seed = 42;
        let mut oracle = StdRng::seed_from_u64(seed);
        let (tx, mut rx) = channel_pair(1024);
        let mut lane = DelayLoss::new(tx, 0, p, seed);
        let mut expected = Vec::new();
        let mut got = Vec::new();
        for seq in 0..500u64 {
            let delivered = oracle.gen::<f64>() >= p;
            if delivered {
                expected.push(seq);
            }
            lane.send(report(seq)).unwrap();
            lane.tick();
            if let Some(f) = rx.try_recv().unwrap() {
                got.push(f.seq());
            }
        }
        assert_eq!(got, expected);
        assert_eq!(lane.stats().dropped, 500 - expected.len() as u64);
        assert_eq!(lane.stats().sent, 500);
    }

    #[test]
    fn no_draws_before_frames_cross() {
        // With delay 3, the first 3 ticks must not consume RNG draws.
        let p = 0.5;
        let seed = 9;
        let (tx, _rx) = channel_pair(64);
        let mut lane = DelayLoss::new(tx, 3, p, seed);
        for seq in 0..3 {
            lane.send(report(seq)).unwrap();
            lane.tick();
        }
        // The lane's RNG must still be at its initial state: the fourth
        // send+tick releases frame 0 with the seed's *first* draw.
        let mut oracle = StdRng::seed_from_u64(seed);
        let first_draw_drops = oracle.gen::<f64>() < p;
        lane.send(report(3)).unwrap();
        lane.tick();
        assert_eq!(lane.stats().dropped, u64::from(first_draw_drops));
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn invalid_probability_rejected() {
        let (tx, _rx) = channel_pair(1);
        let _ = DelayLoss::new(tx, 0, 1.0, 0);
    }
}
