//! Lane middleware: network effects composed over any backend.
//!
//! [`DelayLoss`] reimplements the closed loop's `LaneModel` semantics at
//! the transport layer, so delayed and lossy lanes are a property of the
//! *lane*, not of the loop: the same middleware wraps an in-process
//! channel in tests and a real TCP lane in a deployment.
//!
//! The draw order is kept identical to the in-loop lane model — a loss
//! probability is consulted once per frame, and only at the moment the
//! frame actually crosses the lane (after its delay elapses).  With the
//! same seed, a `DelayLoss` lane and a `LaneModel` produce the same
//! sequence of loss decisions; the transport-equivalence property test
//! pins this.
//!
//! The decision core lives in [`DelayLossGate`], a transport-free
//! delay/loss queue that both the `DelayLoss` wrapper and the poll
//! engine's per-lane gates drive — one implementation, so the draw
//! sequence cannot diverge between the transport-pair and poll paths.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::TransportError;
use crate::frame::Frame;
use crate::transport::{Transport, TransportStats};

/// The delay/loss decision core: a FIFO of in-flight frames released by
/// [`DelayLossGate::tick`], each crossing frame drawing the loss
/// probability exactly once at release time.
///
/// Knows nothing about transports — the caller supplies the delivery
/// action.  [`DelayLoss`] layers it over a [`Transport`]; the distributed
/// runtime's poll path layers it over direct socket encodes.
#[derive(Debug)]
pub struct DelayLossGate {
    /// Whole ticks each frame spends in flight.
    delay: usize,
    /// Per-frame drop probability in `[0, 1)`.
    loss_probability: f64,
    rng: StdRng,
    /// Frames not yet released (oldest first); length ≤ delay + 1.
    in_flight: VecDeque<Frame>,
    /// Frames dropped on a loss draw.
    lost: u64,
    /// Frames accepted for sending.
    accepted: u64,
}

impl DelayLossGate {
    /// A gate with `delay` ticks of latency and per-frame loss
    /// probability `loss_probability` drawn from `seed`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ loss_probability < 1`.
    pub fn new(delay: usize, loss_probability: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&loss_probability),
            "loss probability must be in [0, 1)"
        );
        DelayLossGate {
            delay,
            loss_probability,
            rng: StdRng::seed_from_u64(seed),
            in_flight: VecDeque::new(),
            lost: 0,
            accepted: 0,
        }
    }

    /// Whether the gate is a no-op (zero delay, zero loss): offered
    /// frames should cross immediately without queuing.
    pub fn is_transparent(&self) -> bool {
        self.delay == 0 && self.loss_probability == 0.0
    }

    /// Accepts a frame.  Returns `Some(frame)` when it should cross the
    /// lane immediately (the transparent configuration); otherwise the
    /// frame is queued until its delay elapses.
    pub fn offer(&mut self, frame: Frame) -> Option<Frame> {
        self.accepted += 1;
        if self.is_transparent() {
            return Some(frame);
        }
        self.in_flight.push_back(frame);
        None
    }

    /// Advances the gate's clock by one tick: every frame whose delay has
    /// elapsed either crosses (via `deliver`) or is dropped on its loss
    /// draw.
    pub fn tick(&mut self, mut deliver: impl FnMut(Frame)) {
        while self.in_flight.len() > self.delay {
            let frame = self.in_flight.pop_front().expect("len checked");
            let dropped =
                self.loss_probability > 0.0 && self.rng.gen::<f64>() < self.loss_probability;
            if dropped {
                self.lost += 1;
            } else {
                deliver(frame);
            }
        }
    }

    /// Frames accepted for sending so far.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Frames dropped on a loss draw so far.
    pub fn lost(&self) -> u64 {
        self.lost
    }
}

/// A lane that delays every frame by a fixed number of ticks and drops
/// each crossing frame independently with a configured probability.
///
/// [`Transport::tick`] is the middleware's clock: the loop runtime calls
/// it once per sampling period, which releases frames whose delay has
/// elapsed into the underlying backend (or drops them on a loss draw).
#[derive(Debug)]
pub struct DelayLoss<T> {
    inner: T,
    gate: DelayLossGate,
}

impl<T: Transport> DelayLoss<T> {
    /// Wraps `inner` with `delay` ticks of latency and per-frame loss
    /// probability `loss_probability` drawn from `seed`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ loss_probability < 1`.
    pub fn new(inner: T, delay: usize, loss_probability: f64, seed: u64) -> Self {
        DelayLoss {
            inner,
            gate: DelayLossGate::new(delay, loss_probability, seed),
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &T {
        &self.inner
    }
}

impl<T: Transport> Transport for DelayLoss<T> {
    fn send(&mut self, frame: Frame) -> Result<(), TransportError> {
        if let Some(frame) = self.gate.offer(frame) {
            // Transparent configuration: straight through.
            return self.inner.send(frame);
        }
        Ok(())
    }

    fn try_recv(&mut self) -> Result<Option<Frame>, TransportError> {
        self.inner.try_recv()
    }

    fn tick(&mut self) {
        let inner = &mut self.inner;
        self.gate.tick(|frame| {
            // A full inner queue applies its own backpressure policy;
            // that is not a loss-model drop, so the error is ignored
            // here and shows up in the inner stats instead.
            let _ = inner.send(frame);
        });
        self.inner.tick();
    }

    fn stats(&self) -> TransportStats {
        let mut stats = self.inner.stats();
        // The inner backend never saw lost or still-delayed frames, so
        // report sends as what this layer accepted and fold the losses in.
        stats.sent = self.gate.accepted();
        stats.dropped += self.gate.lost();
        stats
    }

    fn name(&self) -> &'static str {
        "delay-loss"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::channel_pair;

    fn report(seq: u64) -> Frame {
        Frame::UtilizationReport {
            seq,
            period: seq,
            values: vec![seq as f64],
        }
    }

    #[test]
    fn zero_config_is_transparent() {
        let (tx, mut rx) = channel_pair(8);
        let mut lane = DelayLoss::new(tx, 0, 0.0, 0);
        lane.send(report(1)).unwrap();
        // No tick needed: passthrough.
        assert_eq!(rx.try_recv().unwrap().unwrap().seq(), 1);
    }

    #[test]
    fn delay_holds_frames_for_d_ticks() {
        let (tx, mut rx) = channel_pair(8);
        let mut lane = DelayLoss::new(tx, 2, 0.0, 0);
        for seq in 1..=4 {
            lane.send(report(seq)).unwrap();
            lane.tick();
        }
        // After 4 send+tick rounds with delay 2, frames 1 and 2 crossed.
        assert_eq!(rx.try_recv().unwrap().unwrap().seq(), 1);
        assert_eq!(rx.try_recv().unwrap().unwrap().seq(), 2);
        assert_eq!(rx.try_recv().unwrap(), None);
    }

    #[test]
    fn loss_draws_follow_the_seed() {
        // Oracle: replicate the draw sequence with the same RNG.
        let p = 0.4;
        let seed = 42;
        let mut oracle = StdRng::seed_from_u64(seed);
        let (tx, mut rx) = channel_pair(1024);
        let mut lane = DelayLoss::new(tx, 0, p, seed);
        let mut expected = Vec::new();
        let mut got = Vec::new();
        for seq in 0..500u64 {
            let delivered = oracle.gen::<f64>() >= p;
            if delivered {
                expected.push(seq);
            }
            lane.send(report(seq)).unwrap();
            lane.tick();
            if let Some(f) = rx.try_recv().unwrap() {
                got.push(f.seq());
            }
        }
        assert_eq!(got, expected);
        assert_eq!(lane.stats().dropped, 500 - expected.len() as u64);
        assert_eq!(lane.stats().sent, 500);
    }

    #[test]
    fn no_draws_before_frames_cross() {
        // With delay 3, the first 3 ticks must not consume RNG draws.
        let p = 0.5;
        let seed = 9;
        let (tx, _rx) = channel_pair(64);
        let mut lane = DelayLoss::new(tx, 3, p, seed);
        for seq in 0..3 {
            lane.send(report(seq)).unwrap();
            lane.tick();
        }
        // The lane's RNG must still be at its initial state: the fourth
        // send+tick releases frame 0 with the seed's *first* draw.
        let mut oracle = StdRng::seed_from_u64(seed);
        let first_draw_drops = oracle.gen::<f64>() < p;
        lane.send(report(3)).unwrap();
        lane.tick();
        assert_eq!(lane.stats().dropped, u64::from(first_draw_drops));
    }

    #[test]
    fn bare_gate_matches_the_wrapped_middleware_draw_for_draw() {
        // The same seed must produce the same delivery sequence whether
        // the gate runs inside DelayLoss or standalone (the poll path).
        let (p, seed, delay) = (0.35, 123, 1);
        let (tx, mut rx) = channel_pair(1024);
        let mut wrapped = DelayLoss::new(tx, delay, p, seed);
        let mut bare = DelayLossGate::new(delay, p, seed);
        let mut bare_got = Vec::new();
        let mut wrapped_got = Vec::new();
        for seq in 0..200u64 {
            wrapped.send(report(seq)).unwrap();
            wrapped.tick();
            while let Ok(Some(f)) = rx.try_recv() {
                wrapped_got.push(f.seq());
            }
            if let Some(f) = bare.offer(report(seq)) {
                bare_got.push(f.seq());
            }
            bare.tick(|f| bare_got.push(f.seq()));
        }
        assert_eq!(bare_got, wrapped_got);
        assert_eq!(bare.lost(), wrapped.stats().dropped);
        assert_eq!(bare.accepted(), 200);
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn invalid_probability_rejected() {
        let (tx, _rx) = channel_pair(1);
        let _ = DelayLoss::new(tx, 0, 1.0, 0);
    }
}
