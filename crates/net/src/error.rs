//! Error types of the transport layer.

use std::error::Error;
use std::fmt;

/// A malformed or incompatible wire frame.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FrameError {
    /// The version byte does not match [`crate::FRAME_VERSION`].
    ///
    /// [`crate::FRAME_VERSION`]: crate::frame::FRAME_VERSION
    BadVersion(u8),
    /// The frame-kind byte is not a known frame type.
    BadKind(u8),
    /// The declared payload length exceeds [`crate::frame::MAX_PAYLOAD`].
    Oversize(usize),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadVersion(v) => write!(f, "unsupported frame version {v:#04x}"),
            FrameError::BadKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            FrameError::Oversize(n) => write!(f, "frame payload of {n} values exceeds the cap"),
        }
    }
}

impl Error for FrameError {}

/// Errors surfaced by a [`Transport`] endpoint.
///
/// [`Transport`]: crate::Transport
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TransportError {
    /// The peer endpoint is gone and cannot be reached (the channel's
    /// other half was dropped, or a TCP endpoint exhausted reconnection).
    Disconnected,
    /// A send did not complete within the configured send timeout.
    Timeout,
    /// The byte stream carried a malformed frame.
    Frame(FrameError),
    /// An I/O failure from the operating system (kind and message are
    /// preserved; the `std::io::Error` itself is not `Clone`).
    Io(String),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Disconnected => write!(f, "transport peer disconnected"),
            TransportError::Timeout => write!(f, "transport send timed out"),
            TransportError::Frame(e) => write!(f, "frame decode failed: {e}"),
            TransportError::Io(msg) => write!(f, "transport I/O error: {msg}"),
        }
    }
}

impl Error for TransportError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TransportError::Frame(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FrameError> for TransportError {
    fn from(e: FrameError) -> Self {
        TransportError::Frame(e)
    }
}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = TransportError::Frame(FrameError::BadVersion(9));
        assert!(e.to_string().contains("0x09"));
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&TransportError::Timeout).is_none());
        let io: TransportError = std::io::Error::other("boom").into();
        assert!(io.to_string().contains("boom"));
    }
}
