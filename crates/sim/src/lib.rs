//! Event-driven simulator of distributed real-time systems running
//! end-to-end tasks.
//!
//! This crate rebuilds the C++ evaluation substrate of the EUCON paper
//! (§7.1) in Rust:
//!
//! * **Processors** scheduled by preemptive rate-monotonic scheduling
//!   (priority = current period; smaller period preempts larger).
//! * **Release guard** (Sun & Liu) enforcing precedence between consecutive
//!   subtasks while keeping every subtask periodic at its task's rate.
//! * **Utilization monitors** reporting per-processor busy fractions per
//!   sampling window, and **rate modulators** applying controller outputs.
//! * **Execution-time factor** profiles ([`EtfProfile`]) scaling actual
//!   execution times relative to the design-time estimates, constant or
//!   stepping at run time (Experiment II), with optional uniform-random
//!   job-level variation ([`ExecModel`]).
//! * **Deadline bookkeeping** for soft end-to-end deadlines
//!   (`d_i = n_i / r_i`).
//! * **Fault injection** ([`FaultPlan`] / [`FaultInjector`]): scripted or
//!   stochastic processor crash + recovery, execution-time bursts,
//!   stuck/corrupted utilization sensors, and actuation-lane loss/delay —
//!   the infrastructure failures the paper idealizes away.
//!
//! # Example
//!
//! ```
//! use eucon_sim::{EtfProfile, SimConfig, Simulator};
//! use eucon_tasks::workloads;
//!
//! // Run SIMPLE for 10 sampling periods at half the estimated load.
//! let cfg = SimConfig::constant_etf(0.5);
//! let mut sim = Simulator::new(workloads::simple(), cfg);
//! for k in 1..=10 {
//!     sim.run_until(k as f64 * 1000.0);
//!     let u = sim.sample_utilizations();
//!     assert!(u.iter().all(|&ui| ui <= 1.0));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod engine;
mod error;
mod event;
mod fault;
mod stats;

pub use config::{EtfProfile, ExecModel, ReleaseGuard, SimConfig};
pub use engine::Simulator;
pub use error::SimError;
pub use fault::{FaultInjector, FaultPlan, RandomCrashes, SensorFaultKind};
pub use stats::{DeadlineStats, EngineCounters, SubtaskStats, TaskStats};
