//! Simulation configuration: execution-time models and the execution-time
//! factor profile.

/// Stochastic model for actual subtask execution times.
///
/// The paper's simulator draws actual execution times around a mean of
/// `etf(t) · c_ij` (§7.1): SIMPLE uses constant times, MEDIUM uses a
/// uniform random distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum ExecModel {
    /// Every job of a subtask takes exactly its mean execution time.
    Constant,
    /// Job execution times are uniform in `mean · [1 − h, 1 + h]`.
    Uniform {
        /// Half-width `h` of the relative uniform band, in `(0, 1)`.
        half_width: f64,
    },
    /// Job execution times alternate between two modes — the paper's
    /// motivating data-dependent workloads ("the execution times of
    /// visual tracking applications can vary significantly as a function
    /// of the number of potential targets").  With probability `p_high`
    /// a job takes `mean · high`, otherwise `mean · low`.
    ///
    /// Build with [`ExecModel::bimodal`] to keep the long-run average at
    /// `mean`.
    Bimodal {
        /// Relative execution time of the cheap mode (e.g. no targets).
        low: f64,
        /// Relative execution time of the expensive mode (targets in view).
        high: f64,
        /// Probability of the expensive mode, in `[0, 1]`.
        p_high: f64,
    },
}

impl ExecModel {
    /// A mean-preserving bimodal model: the expensive mode costs
    /// `high_over_low` times the cheap one and occurs with probability
    /// `p_high`; the two modes are scaled so the long-run average equals
    /// the configured mean.
    ///
    /// # Panics
    ///
    /// Panics unless `high_over_low > 1` and `0 < p_high < 1`.
    pub fn bimodal(high_over_low: f64, p_high: f64) -> Self {
        assert!(high_over_low > 1.0, "the expensive mode must cost more");
        assert!(
            (0.0..1.0).contains(&p_high) && p_high > 0.0,
            "p_high must be in (0, 1)"
        );
        // E[x] = low·(1−p) + low·ratio·p = 1 ⇒ low = 1/(1 − p + ratio·p).
        let low = 1.0 / (1.0 - p_high + high_over_low * p_high);
        ExecModel::Bimodal {
            low,
            high: low * high_over_low,
            p_high,
        }
    }

    /// Draws an actual execution time for the given mean.
    ///
    /// `unit` must be uniform in `[0, 1)`; the caller provides it so the
    /// model itself stays deterministic and RNG-agnostic.
    pub fn sample(&self, mean: f64, unit: f64) -> f64 {
        match *self {
            ExecModel::Constant => mean,
            ExecModel::Uniform { half_width } => {
                let lo = mean * (1.0 - half_width);
                let hi = mean * (1.0 + half_width);
                (lo + unit * (hi - lo)).max(f64::MIN_POSITIVE)
            }
            ExecModel::Bimodal { low, high, p_high } => {
                let factor = if unit < p_high { high } else { low };
                (mean * factor).max(f64::MIN_POSITIVE)
            }
        }
    }
}

// Not derived: `Constant` is a deliberate semantic default (the paper's
// SIMPLE experiments), not just the first variant.
#[allow(clippy::derivable_impls)]
impl Default for ExecModel {
    fn default() -> Self {
        ExecModel::Constant
    }
}

/// Piecewise-constant execution-time factor profile `etf(t)`.
///
/// The execution-time factor (paper §7.1) scales every subtask's actual
/// mean execution time relative to its design-time estimate:
/// `mean_ij(t) = etf(t) · c_ij`.  Experiment I uses constant profiles;
/// Experiment II uses the step profile 0.5 → 0.9 at `100·Ts` → 0.33 at
/// `200·Ts`.
///
/// # Example
///
/// ```
/// use eucon_sim::EtfProfile;
///
/// let profile = EtfProfile::steps(&[(0.0, 0.5), (100_000.0, 0.9), (200_000.0, 0.33)]);
/// assert_eq!(profile.value_at(50_000.0), 0.5);
/// assert_eq!(profile.value_at(150_000.0), 0.9);
/// assert_eq!(profile.value_at(250_000.0), 0.33);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EtfProfile {
    /// `(start_time, factor)` pairs, sorted by time.
    steps: Vec<(f64, f64)>,
}

impl EtfProfile {
    /// A constant factor for the whole run.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not a positive finite number.
    pub fn constant(factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "etf must be positive and finite"
        );
        EtfProfile {
            steps: vec![(0.0, factor)],
        }
    }

    /// A step profile from `(start_time, factor)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty, not sorted by strictly increasing time,
    /// does not start at time 0, or contains a non-positive factor.
    pub fn steps(steps: &[(f64, f64)]) -> Self {
        assert!(!steps.is_empty(), "profile needs at least one step");
        assert_eq!(steps[0].0, 0.0, "profile must start at time 0");
        for w in steps.windows(2) {
            assert!(w[0].0 < w[1].0, "step times must be strictly increasing");
        }
        for &(_, f) in steps {
            assert!(f > 0.0 && f.is_finite(), "etf must be positive and finite");
        }
        EtfProfile {
            steps: steps.to_vec(),
        }
    }

    /// The factor in effect at time `t` (clamped to the first step for
    /// negative times).
    pub fn value_at(&self, t: f64) -> f64 {
        let mut current = self.steps[0].1;
        for &(start, f) in &self.steps {
            if t >= start {
                current = f;
            } else {
                break;
            }
        }
        current
    }
}

impl Default for EtfProfile {
    fn default() -> Self {
        EtfProfile::constant(1.0)
    }
}

/// Variant of the release-guard synchronization protocol (Sun & Liu).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum ReleaseGuard {
    /// Rule 1 + rule 2: a guarded subtask may release early when its
    /// processor is idle.  Prevents transient overloads from permanently
    /// phase-shifting downstream subtasks (measured in EXPERIMENTS.md:
    /// 43% end-to-end misses in Experiment II without rule 2, 2–3% with
    /// it).  The default.
    #[default]
    IdleRelease,
    /// Rule 1 only: consecutive releases of a subtask are always spaced
    /// at least one period apart — strictly periodic, at the price of
    /// unrecoverable phase drift after overloads.
    Strict,
}

/// Full simulator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Stochastic execution-time model.
    pub exec_model: ExecModel,
    /// Execution-time factor profile.
    pub etf: EtfProfile,
    /// RNG seed for the execution-time draws.
    pub seed: u64,
    /// Release-guard variant (default: idle-time release).
    pub release_guard: ReleaseGuard,
    /// Optional per-processor speed factors: the execution time of a job
    /// on processor `i` is additionally multiplied by `speeds[i]`.
    ///
    /// Models heterogeneous platforms — and realizes *asymmetric*
    /// utilization gains `G = diag(g_i)`, the general case of the paper's
    /// stability analysis (a factor of 2 on one processor makes `g` twice
    /// the global etf there).  `None` means a homogeneous platform.
    pub processor_speeds: Option<Vec<f64>>,
}

impl SimConfig {
    /// Configuration with a constant execution-time factor and
    /// deterministic execution times.
    pub fn constant_etf(factor: f64) -> Self {
        SimConfig {
            exec_model: ExecModel::Constant,
            etf: EtfProfile::constant(factor),
            seed: 0,
            release_guard: ReleaseGuard::IdleRelease,
            processor_speeds: None,
        }
    }

    /// Chooses the release-guard variant.
    pub fn release_guard(mut self, guard: ReleaseGuard) -> Self {
        self.release_guard = guard;
        self
    }

    /// Sets per-processor speed factors (see
    /// [`SimConfig::processor_speeds`]).
    ///
    /// # Panics
    ///
    /// Panics if any factor is not a positive finite number.
    pub fn processor_speeds(mut self, speeds: Vec<f64>) -> Self {
        assert!(
            speeds.iter().all(|&s| s > 0.0 && s.is_finite()),
            "speed factors must be positive and finite"
        );
        self.processor_speeds = Some(speeds);
        self
    }

    /// Sets the execution-time model.
    pub fn exec_model(mut self, model: ExecModel) -> Self {
        self.exec_model = model;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the execution-time factor profile.
    pub fn etf(mut self, profile: EtfProfile) -> Self {
        self.etf = profile;
        self
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::constant_etf(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_model_returns_mean() {
        assert_eq!(ExecModel::Constant.sample(42.0, 0.77), 42.0);
    }

    #[test]
    fn uniform_model_spans_band() {
        let m = ExecModel::Uniform { half_width: 0.5 };
        assert_eq!(m.sample(10.0, 0.0), 5.0);
        assert_eq!(m.sample(10.0, 0.5), 10.0);
        assert!((m.sample(10.0, 1.0) - 15.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_model_never_returns_zero() {
        let m = ExecModel::Uniform { half_width: 1.0 };
        assert!(m.sample(10.0, 0.0) > 0.0);
    }

    #[test]
    fn bimodal_modes_and_mean() {
        let m = ExecModel::bimodal(4.0, 0.25);
        let ExecModel::Bimodal { low, high, p_high } = m else {
            panic!("constructor must build the bimodal variant");
        };
        assert!((high / low - 4.0).abs() < 1e-12);
        // Mean preserved: E[factor] = 1.
        let mean = low * (1.0 - p_high) + high * p_high;
        assert!((mean - 1.0).abs() < 1e-12);
        // Sampling picks the expensive mode below p_high.
        assert_eq!(m.sample(10.0, 0.1), 10.0 * high);
        assert_eq!(m.sample(10.0, 0.9), 10.0 * low);
    }

    #[test]
    #[should_panic(expected = "cost more")]
    fn bimodal_ratio_validated() {
        let _ = ExecModel::bimodal(1.0, 0.5);
    }

    #[test]
    fn constant_profile() {
        let p = EtfProfile::constant(0.5);
        assert_eq!(p.value_at(0.0), 0.5);
        assert_eq!(p.value_at(1e9), 0.5);
        assert_eq!(p.value_at(-5.0), 0.5);
    }

    #[test]
    fn step_profile_switches_at_boundaries() {
        let p = EtfProfile::steps(&[(0.0, 0.5), (100.0, 0.9), (200.0, 0.33)]);
        assert_eq!(p.value_at(99.999), 0.5);
        assert_eq!(p.value_at(100.0), 0.9);
        assert_eq!(p.value_at(199.999), 0.9);
        assert_eq!(p.value_at(200.0), 0.33);
    }

    #[test]
    #[should_panic(expected = "start at time 0")]
    fn profile_must_start_at_zero() {
        let _ = EtfProfile::steps(&[(1.0, 0.5)]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn profile_times_must_increase() {
        let _ = EtfProfile::steps(&[(0.0, 0.5), (0.0, 0.9)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_factor_rejected() {
        let _ = EtfProfile::constant(0.0);
    }

    #[test]
    fn config_builders() {
        let cfg = SimConfig::constant_etf(0.5)
            .exec_model(ExecModel::Uniform { half_width: 0.2 })
            .seed(7);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.etf.value_at(0.0), 0.5);
        assert!(matches!(cfg.exec_model, ExecModel::Uniform { .. }));
        assert_eq!(SimConfig::default().etf.value_at(0.0), 1.0);
        assert!(cfg.processor_speeds.is_none());
    }

    #[test]
    fn processor_speeds_builder() {
        let cfg = SimConfig::constant_etf(1.0).processor_speeds(vec![1.0, 2.0]);
        assert_eq!(cfg.processor_speeds, Some(vec![1.0, 2.0]));
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn invalid_speed_rejected() {
        let _ = SimConfig::constant_etf(1.0).processor_speeds(vec![0.0]);
    }
}
