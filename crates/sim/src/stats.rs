//! Run-time statistics collected by the simulator.

/// End-to-end deadline bookkeeping (soft deadlines, paper §3.1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeadlineStats {
    /// Task instances that completed by their end-to-end deadline.
    pub met: u64,
    /// Task instances that completed after their end-to-end deadline.
    pub missed: u64,
}

impl DeadlineStats {
    /// Deadline miss ratio in `[0, 1]`; zero when nothing completed.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.met + self.missed;
        if total == 0 {
            0.0
        } else {
            self.missed as f64 / total as f64
        }
    }

    /// Total completed instances.
    pub fn completed(&self) -> u64 {
        self.met + self.missed
    }
}

/// Event-engine performance counters.
///
/// Exposed through [`crate::Simulator::counters`] so benchmarks and
/// regression tests can observe the engine's behaviour directly: how many
/// events it processed, how much of its work the indexed queue absorbed as
/// in-place reschedules (each of these was a heap tombstone in the old
/// engine), and how large the queue ever got.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineCounters {
    /// Events popped and processed (every pop is live — the indexed queue
    /// never discards stale entries).
    pub events: u64,
    /// In-place reschedules of an already-queued event source (rate
    /// changes, completion updates after preemption).
    pub reschedules: u64,
    /// Subtask releases deferred by the release guard.
    pub guard_deferrals: u64,
    /// Completion wake-ups that found unfinished work after floating-point
    /// drift and had to be rescheduled.
    pub stale_wakeups: u64,
    /// High-water mark of simultaneously pending events.
    pub queue_peak: usize,
}

impl EngineCounters {
    /// Counter increments since an `earlier` snapshot of the same engine.
    ///
    /// The monotone counters come back as differences; `queue_peak` is a
    /// high-water mark, not a rate, so the current value carries over
    /// unchanged.  This is what per-period telemetry uses to turn the
    /// engine's cumulative totals into per-sampling-period activity.
    pub fn delta(&self, earlier: &EngineCounters) -> EngineCounters {
        EngineCounters {
            events: self.events.saturating_sub(earlier.events),
            reschedules: self.reschedules.saturating_sub(earlier.reschedules),
            guard_deferrals: self.guard_deferrals.saturating_sub(earlier.guard_deferrals),
            stale_wakeups: self.stale_wakeups.saturating_sub(earlier.stale_wakeups),
            queue_peak: self.queue_peak,
        }
    }

    /// Events processed per simulated time unit.
    pub fn events_per_time(&self, elapsed: f64) -> f64 {
        if elapsed <= 0.0 {
            0.0
        } else {
            self.events as f64 / elapsed
        }
    }
}

/// Per-task response-time statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TaskStats {
    /// Completed end-to-end instances.
    pub completed: u64,
    /// Instances that missed their end-to-end deadline.
    pub missed: u64,
    /// Sum of end-to-end response times (release of the head subtask to
    /// completion of the tail subtask).
    pub response_time_sum: f64,
    /// Largest observed end-to-end response time.
    pub response_time_max: f64,
}

impl TaskStats {
    /// Mean end-to-end response time; zero when nothing completed.
    pub fn mean_response_time(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.response_time_sum / self.completed as f64
        }
    }
}

/// Per-subtask subdeadline bookkeeping.
///
/// Under the paper's subdeadline assignment (§7.1), each subtask's
/// subdeadline equals its period; enforcing the RMS utilization bound on a
/// processor is supposed to make every subtask on it meet that
/// subdeadline.  These counters make that claim measurable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubtaskStats {
    /// Completed jobs of this subtask.
    pub completed: u64,
    /// Jobs that finished later than one period after their release.
    pub missed: u64,
}

impl SubtaskStats {
    /// Subdeadline miss ratio in `[0, 1]`; zero when nothing completed.
    pub fn miss_ratio(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.missed as f64 / self.completed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_ratio_handles_empty() {
        assert_eq!(DeadlineStats::default().miss_ratio(), 0.0);
        let s = DeadlineStats { met: 3, missed: 1 };
        assert!((s.miss_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(s.completed(), 4);
    }

    #[test]
    fn subtask_miss_ratio() {
        assert_eq!(SubtaskStats::default().miss_ratio(), 0.0);
        let s = SubtaskStats {
            completed: 10,
            missed: 3,
        };
        assert!((s.miss_ratio() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn mean_response_time_handles_empty() {
        assert_eq!(TaskStats::default().mean_response_time(), 0.0);
        let s = TaskStats {
            completed: 2,
            missed: 0,
            response_time_sum: 10.0,
            response_time_max: 7.0,
        };
        assert_eq!(s.mean_response_time(), 5.0);
    }
}
