//! Event-driven simulation engine: RMS processors, release guard,
//! utilization monitors and rate modulators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use eucon_math::Vector;
use eucon_tasks::{ProcessorId, TaskError, TaskId, TaskSet};

use crate::event::{EventCore, FiredEvent};
use crate::{DeadlineStats, EngineCounters, SimConfig, SubtaskStats, TaskStats};

/// Slack used when comparing simulation times.
const TIME_EPS: f64 = 1e-9;

/// A released but not yet completed subtask job.
#[derive(Debug, Clone, Copy)]
struct Job {
    task: usize,
    index: usize,
    instance: u64,
    remaining: f64,
    /// Task period at release time — the RMS priority (smaller is higher).
    period: f64,
    release: f64,
    seq: u64,
}

/// Per-processor scheduler state: a preemptive fixed-priority (RMS) ready
/// queue with busy-time accounting.
///
/// The queue is kept sorted in *descending* dispatch order, so the running
/// job (the dispatch minimum) is always `ready.last()`: the scheduler
/// decision is a pointer read, arrival is a sorted insert, and completion
/// pops from the end — no rescans, no cached index to invalidate.  Job
/// priorities are snapshots taken at release, so a queued job's position
/// never changes while it waits.
#[derive(Debug, Default)]
struct ProcState {
    ready: Vec<Job>,
    /// Busy time accumulated in the current monitoring window.
    busy_window: f64,
    /// Busy time accumulated since the start of the run.
    busy_total: f64,
    last_update: f64,
    /// Crashed processors execute nothing: time passes but no job makes
    /// progress and no busy time accrues, so the monitor reports `u = 0`.
    crashed: bool,
}

/// RMS dispatch order: smallest period first, ties broken by earlier
/// release, then FIFO sequence.  `seq` is unique per job, so two distinct
/// jobs never compare equal.
fn dispatch_cmp(a: &Job, b: &Job) -> std::cmp::Ordering {
    a.period
        .total_cmp(&b.period)
        .then(a.release.total_cmp(&b.release))
        .then(a.seq.cmp(&b.seq))
}

impl ProcState {
    /// The job the processor is executing: the dispatch minimum, i.e. the
    /// tail of the descending-sorted queue.
    fn running(&self) -> Option<&Job> {
        self.ready.last()
    }

    /// Enqueues a job at its sorted position (prefix = lower priority,
    /// suffix = higher priority).
    fn push_job(&mut self, job: Job) {
        let at = self
            .ready
            .partition_point(|j| dispatch_cmp(j, &job).is_gt());
        self.ready.insert(at, job);
    }

    /// Removes and returns the running job.
    fn pop_running(&mut self) -> Job {
        self.ready
            .pop()
            .expect("pop_running requires a running job")
    }

    /// Advances the processor's clock to `t`, charging the elapsed time to
    /// the currently running job.  A crashed processor lets time pass
    /// without executing: queued jobs stall and accrue deadline misses.
    fn advance(&mut self, t: f64) {
        let delta = t - self.last_update;
        if delta > 0.0 {
            if !self.crashed {
                if let Some(job) = self.ready.last_mut() {
                    job.remaining = (job.remaining - delta).max(0.0);
                    self.busy_window += delta;
                    self.busy_total += delta;
                }
            }
            self.last_update = t;
        } else {
            self.last_update = self.last_update.max(t);
        }
    }
}

/// Release time and absolute deadline of a task's in-flight instances.
///
/// Instances get sequential ids at release, so a ring buffer indexed by
/// `instance - base` replaces the per-task hash map: O(1) insert and
/// removal with no hashing and no steady-state allocation.  Completions
/// can retire out of order (a rate change snapshots a shorter period into
/// a younger instance, which then overtakes an older one under RMS),
/// hence the `Option` slots; fully retired slots are popped from the
/// front to keep the ring as short as the task's in-flight window.
#[derive(Debug, Default)]
struct InflightRing {
    /// Instance id of `slots[0]`.
    base: u64,
    slots: std::collections::VecDeque<Option<(f64, f64)>>,
}

impl InflightRing {
    fn insert(&mut self, instance: u64, release: f64, deadline: f64) {
        if self.slots.is_empty() {
            self.base = instance;
        }
        debug_assert_eq!(
            self.base + self.slots.len() as u64,
            instance,
            "instances are created sequentially"
        );
        self.slots.push_back(Some((release, deadline)));
    }

    fn remove(&mut self, instance: u64) -> Option<(f64, f64)> {
        let idx = usize::try_from(instance.checked_sub(self.base)?).ok()?;
        let value = self.slots.get_mut(idx)?.take();
        while let Some(None) = self.slots.front() {
            self.slots.pop_front();
            self.base += 1;
        }
        value
    }
}

/// Event-driven simulator of a distributed real-time system running
/// end-to-end tasks (the paper's evaluation substrate, §7.1).
///
/// Per processor, subtasks are scheduled by preemptive rate-monotonic
/// scheduling (priority = current period at release).  Precedence
/// constraints between consecutive subtasks are enforced by the release
/// guard protocol (Sun & Liu, ICDCS 1996): a subtask instance is released
/// when its predecessor completes, but never earlier than one period after
/// the subtask's previous release — keeping every subtask periodic at the
/// task rate.
///
/// The *rate modulator* ([`Simulator::set_rates`]) and the *utilization
/// monitor* ([`Simulator::sample_utilizations`]) are the two interfaces the
/// EUCON feedback loop uses each sampling period.
///
/// Internally the engine runs on an indexed per-source event queue
/// ([`EventCore`]): each task owns one head-release slot, each processor
/// one tentative-completion slot, and each successor subtask a short
/// sorted list of release-guarded instances.  Rate changes and
/// preemptions *reschedule in place* instead of pushing tombstones, so
/// every popped event is live and queue memory stays `O(m + n + Σ
/// subtasks)` with no steady-state allocation.
///
/// # Example
///
/// ```
/// use eucon_sim::{SimConfig, Simulator};
/// use eucon_tasks::workloads;
///
/// let mut sim = Simulator::new(workloads::simple(), SimConfig::constant_etf(1.0));
/// sim.run_until(10_000.0);
/// let u = sim.sample_utilizations();
/// assert!(u.iter().all(|&ui| (0.0..=1.0).contains(&ui)));
/// ```
#[derive(Debug)]
pub struct Simulator {
    set: TaskSet,
    cfg: SimConfig,
    rng: StdRng,
    core: EventCore,
    now: f64,
    rates: Vec<f64>,
    next_instance: Vec<u64>,
    /// Last release time per (task, subtask index); `-inf` before first.
    sub_last_release: Vec<Vec<f64>>,
    /// Release time and absolute deadline of in-flight instances.
    inflight: Vec<InflightRing>,
    procs: Vec<ProcState>,
    /// Runtime per-processor execution-time multipliers (fault injection:
    /// transient bursts on top of the configured speeds); all 1.0 nominally.
    speed_override: Vec<f64>,
    suspended: Vec<bool>,
    /// Permanently departed tasks: the slot (and `TaskId`) stays so no
    /// index ever shifts, but no further instances release.
    departed: Vec<bool>,
    /// Per-task execution-time multipliers (mode changes); all 1.0
    /// nominally.  Applies to jobs released from now on.
    task_exec_scale: Vec<f64>,
    deadline_stats: DeadlineStats,
    task_stats: Vec<TaskStats>,
    subtask_stats: Vec<Vec<SubtaskStats>>,
    next_job_seq: u64,
    window_start: f64,
    events: u64,
    guard_deferrals: u64,
    stale_wakeups: u64,
}

impl Simulator {
    /// Creates a simulator and schedules the first release of every task
    /// at time 0.
    ///
    /// # Panics
    ///
    /// Panics if the task set is empty (see [`TaskSet::validate`]).
    pub fn new(set: TaskSet, cfg: SimConfig) -> Self {
        set.validate()
            .expect("simulator requires a non-empty task set");
        let m = set.num_tasks();
        let n = set.num_processors();
        let rates: Vec<f64> = set.initial_rates().into_vec();
        let sub_last_release: Vec<Vec<f64>> = set
            .tasks()
            .iter()
            .map(|t| vec![f64::NEG_INFINITY; t.len()])
            .collect();
        let set_subtask_stats: Vec<Vec<SubtaskStats>> = set
            .tasks()
            .iter()
            .map(|t| vec![SubtaskStats::default(); t.len()])
            .collect();
        let subtask_counts: Vec<usize> = set.tasks().iter().map(|t| t.len()).collect();
        let mut sim = Simulator {
            rng: StdRng::seed_from_u64(cfg.seed),
            core: EventCore::new(m, n, &subtask_counts),
            set,
            cfg,
            now: 0.0,
            rates,
            next_instance: vec![0; m],
            sub_last_release,
            inflight: (0..m).map(|_| InflightRing::default()).collect(),
            procs: (0..n).map(|_| ProcState::default()).collect(),
            speed_override: vec![1.0; n],
            suspended: vec![false; m],
            departed: vec![false; m],
            task_exec_scale: vec![1.0; m],
            deadline_stats: DeadlineStats::default(),
            task_stats: vec![TaskStats::default(); m],
            subtask_stats: set_subtask_stats,
            next_job_seq: 0,
            window_start: 0.0,
            events: 0,
            guard_deferrals: 0,
            stale_wakeups: 0,
        };
        for t in 0..m {
            sim.core.schedule_task_release(t, 0.0);
        }
        sim
    }

    /// Current simulation time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The task set being simulated.
    pub fn task_set(&self) -> &TaskSet {
        &self.set
    }

    /// Current task rates.
    ///
    /// Allocates a fresh vector; the closed-loop hot path should use
    /// [`Simulator::rates_slice`] instead.
    pub fn rates(&self) -> Vector {
        Vector::from_slice(&self.rates)
    }

    /// Current task rates, borrowed without allocating.
    pub fn rates_slice(&self) -> &[f64] {
        &self.rates
    }

    /// Event-engine performance counters accumulated since construction.
    pub fn counters(&self) -> EngineCounters {
        EngineCounters {
            events: self.events,
            reschedules: self.core.reschedules(),
            guard_deferrals: self.guard_deferrals,
            stale_wakeups: self.stale_wakeups,
            queue_peak: self.core.peak(),
        }
    }

    /// End-to-end deadline statistics accumulated so far.
    pub fn deadline_stats(&self) -> DeadlineStats {
        self.deadline_stats
    }

    /// Per-task statistics accumulated so far.
    pub fn task_stats(&self) -> &[TaskStats] {
        &self.task_stats
    }

    /// Per-subtask subdeadline statistics, indexed `[task][subtask]`.
    ///
    /// The subdeadline of every subtask equals its period (paper §7.1).
    pub fn subtask_stats(&self) -> &[Vec<SubtaskStats>] {
        &self.subtask_stats
    }

    /// Overall subdeadline miss ratio across every subtask.
    pub fn subdeadline_miss_ratio(&self) -> f64 {
        let (mut completed, mut missed) = (0u64, 0u64);
        for per_task in &self.subtask_stats {
            for s in per_task {
                completed += s.completed;
                missed += s.missed;
            }
        }
        if completed == 0 {
            0.0
        } else {
            missed as f64 / completed as f64
        }
    }

    /// Fraction of total elapsed time each processor has been busy since
    /// the start of the run.
    pub fn total_utilizations(&self) -> Vector {
        if self.now <= 0.0 {
            return Vector::zeros(self.procs.len());
        }
        Vector::from_iter(self.procs.iter().map(|p| p.busy_total / self.now))
    }

    /// Sets the rate of one task, clamped into its acceptable range, and
    /// returns the applied value.
    ///
    /// This is the *rate modulator*: the new rate governs all future
    /// releases; the pending head release is rescheduled so a rate increase
    /// takes effect immediately (subject to the release guard).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not a positive finite number or the id is out of
    /// range.
    pub fn set_rate(&mut self, task: TaskId, rate: f64) -> f64 {
        assert!(
            rate > 0.0 && rate.is_finite(),
            "rate must be positive and finite"
        );
        let t = task.0;
        let clamped = self.set.task(task).clamp_rate(rate);
        self.rates[t] = clamped;
        // Reschedule the pending head release in place under the new
        // period, honouring the release guard on the head subtask.
        // Suspended or departed tasks keep the new rate but stay dormant
        // (their head release slot is empty).
        if !self.suspended[t] && !self.departed[t] {
            let last = self.sub_last_release[t][0];
            let next = if last.is_finite() {
                (last + 1.0 / clamped).max(self.now)
            } else {
                self.now
            };
            self.core.schedule_task_release(t, next);
        }
        clamped
    }

    /// Sets all task rates at once (each clamped into range).
    ///
    /// # Panics
    ///
    /// Panics if `rates.len()` differs from the task count.
    pub fn set_rates(&mut self, rates: &Vector) {
        assert_eq!(
            rates.len(),
            self.set.num_tasks(),
            "one rate per task required"
        );
        for t in 0..rates.len() {
            self.set_rate(TaskId(t), rates[t]);
        }
    }

    /// Suspends a task: no further instances are released until
    /// [`Simulator::resume_task`]; in-flight jobs drain normally.
    ///
    /// Used by admission control (paper §6.2 suggests switching to
    /// admission control when rate adaptation alone cannot resolve an
    /// overload).  Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn suspend_task(&mut self, task: TaskId) {
        assert!(task.0 < self.set.num_tasks(), "task id out of range");
        if !self.suspended[task.0] {
            self.suspended[task.0] = true;
            // Remove the pending head release (no tombstone left behind).
            self.core.cancel_task_release(task.0);
        }
    }

    /// Resumes a suspended task; the next instance releases immediately
    /// (subject to the release guard).  Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn resume_task(&mut self, task: TaskId) {
        assert!(task.0 < self.set.num_tasks(), "task id out of range");
        if self.suspended[task.0] && !self.departed[task.0] {
            self.suspended[task.0] = false;
            let last = self.sub_last_release[task.0][0];
            let next = if last.is_finite() {
                (last + 1.0 / self.rates[task.0]).max(self.now)
            } else {
                self.now
            };
            self.core.schedule_task_release(task.0, next);
        }
    }

    /// Whether a task is currently suspended.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn is_suspended(&self, task: TaskId) -> bool {
        self.suspended[task.0]
    }

    /// Admits a new task at runtime: appends it to the task set, grows
    /// every per-task state table and the event core, and schedules its
    /// first head release at the current time.  Successor subtasks are
    /// release-guarded exactly like any static task's.
    ///
    /// The returned id is stable forever — departures never shift ids.
    ///
    /// # Errors
    ///
    /// Returns the [`TaskSet::add_task`] error when a subtask references
    /// a processor outside the set.
    pub fn admit_task(&mut self, task: eucon_tasks::Task) -> Result<TaskId, TaskError> {
        let len = task.len();
        let rate = task.initial_rate();
        let id = self.set.add_task(task)?;
        debug_assert_eq!(id.0, self.rates.len());
        self.rates.push(rate);
        self.next_instance.push(0);
        self.sub_last_release.push(vec![f64::NEG_INFINITY; len]);
        self.inflight.push(InflightRing::default());
        self.suspended.push(false);
        self.departed.push(false);
        self.task_exec_scale.push(1.0);
        self.task_stats.push(TaskStats::default());
        self.subtask_stats.push(vec![SubtaskStats::default(); len]);
        let core_id = self.core.add_task(len);
        debug_assert_eq!(core_id, id.0);
        self.core.schedule_task_release(id.0, self.now);
        Ok(id)
    }

    /// Departs a task permanently: no further instances release, in-flight
    /// jobs drain normally (successor subtasks still fire), and the slot —
    /// hence every other task's id — stays where it is.  Idempotent;
    /// departed tasks cannot be resumed.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn depart_task(&mut self, task: TaskId) {
        assert!(task.0 < self.set.num_tasks(), "task id out of range");
        if !self.departed[task.0] {
            self.departed[task.0] = true;
            self.core.cancel_task_release(task.0);
        }
    }

    /// Whether a task has departed.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn is_departed(&self, task: TaskId) -> bool {
        self.departed[task.0]
    }

    /// Number of tasks that are neither suspended nor departed.
    pub fn active_tasks(&self) -> usize {
        (0..self.set.num_tasks())
            .filter(|&t| !self.suspended[t] && !self.departed[t])
            .count()
    }

    /// Switches a task to a new mode: jobs released from now on take
    /// `exec_scale ×` their estimated execution time.  `1.0` restores the
    /// nominal mode.  This is the plant-side half of a mode change; the
    /// controller sees it as a scaled allocation-matrix column.
    ///
    /// # Panics
    ///
    /// Panics unless `exec_scale` is positive and finite, or if the id is
    /// out of range.
    pub fn set_task_mode(&mut self, task: TaskId, exec_scale: f64) {
        assert!(
            exec_scale > 0.0 && exec_scale.is_finite(),
            "mode execution scale must be positive and finite"
        );
        self.task_exec_scale[task.0] = exec_scale;
    }

    /// The current mode execution-time multiplier of a task.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn task_mode(&self, task: TaskId) -> f64 {
        self.task_exec_scale[task.0]
    }

    /// Crashes a processor: from the current simulation time it executes
    /// nothing and accrues no busy time (its utilization monitor reports
    /// `u = 0`).  Releases keep arriving and queue up, so their jobs miss
    /// deadlines — the paper's infrastructure assumption turned off.
    /// Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn crash_processor(&mut self, p: ProcessorId) {
        assert!(p.0 < self.procs.len(), "processor id out of range");
        if !self.procs[p.0].crashed {
            self.procs[p.0].advance(self.now);
            self.procs[p.0].crashed = true;
            // Remove the pending completion of the interrupted job.
            self.core.cancel_completion(p.0);
        }
    }

    /// Recovers a crashed processor; the backlog that piled up during the
    /// outage resumes executing immediately (in RMS priority order).
    /// Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn recover_processor(&mut self, p: ProcessorId) {
        assert!(p.0 < self.procs.len(), "processor id out of range");
        if self.procs[p.0].crashed {
            self.procs[p.0].advance(self.now);
            self.procs[p.0].crashed = false;
            self.reschedule_completion(p.0);
        }
    }

    /// Whether a processor is currently crashed.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn is_crashed(&self, p: ProcessorId) -> bool {
        self.procs[p.0].crashed
    }

    /// Sets a runtime execution-time multiplier for one processor
    /// (fault injection: transient execution-time bursts).  Applies to
    /// jobs released from now on, multiplying the configured speed and
    /// etf profile; `1.0` restores nominal behaviour.
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is positive and finite, or if the id is out
    /// of range.
    pub fn set_speed_override(&mut self, p: ProcessorId, factor: f64) {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "speed override must be positive and finite"
        );
        self.speed_override[p.0] = factor;
    }

    /// The current runtime execution-time multiplier of a processor.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn speed_override(&self, p: ProcessorId) -> f64 {
        self.speed_override[p.0]
    }

    /// Runs the simulation up to (and including) time `t_end`.
    ///
    /// # Panics
    ///
    /// Panics if `t_end` precedes the current time.
    pub fn run_until(&mut self, t_end: f64) {
        assert!(
            t_end >= self.now - TIME_EPS,
            "cannot run backwards: now = {}, requested {t_end}",
            self.now
        );
        while let Some((time, fired)) = self.core.pop_before(t_end) {
            self.now = time.max(self.now);
            self.events += 1;
            match fired {
                FiredEvent::TaskRelease { task } => self.handle_head_release(task),
                FiredEvent::SubtaskRelease {
                    task,
                    index,
                    instance,
                } => {
                    self.handle_subtask_release(task, index, instance);
                }
                FiredEvent::Completion { processor } => self.handle_completion(processor),
            }
        }
        self.now = t_end;
        for p in 0..self.procs.len() {
            self.procs[p].advance(t_end);
        }
    }

    /// Reads the utilization of every processor over the window since the
    /// previous sample (the *utilization monitor*, `u_i(k)` in the paper)
    /// and starts a new window.
    ///
    /// Returns zeros if no time has elapsed since the last sample.
    pub fn sample_utilizations(&mut self) -> Vector {
        let mut u = Vector::zeros(self.procs.len());
        self.sample_utilizations_into(&mut u);
        u
    }

    /// Allocation-free variant of [`Simulator::sample_utilizations`]:
    /// writes the window utilizations into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the processor count.
    pub fn sample_utilizations_into(&mut self, out: &mut Vector) {
        assert_eq!(
            out.len(),
            self.procs.len(),
            "one utilization slot per processor required"
        );
        for p in 0..self.procs.len() {
            self.procs[p].advance(self.now);
        }
        let elapsed = self.now - self.window_start;
        let slots = out.as_mut_slice();
        if elapsed <= 0.0 {
            slots.fill(0.0);
        } else {
            for (slot, p) in slots.iter_mut().zip(&self.procs) {
                *slot = (p.busy_window / elapsed).min(1.0);
            }
        }
        for p in &mut self.procs {
            p.busy_window = 0.0;
        }
        self.window_start = self.now;
    }

    /// Number of jobs currently queued or running across all processors.
    pub fn backlog(&self) -> usize {
        self.procs.iter().map(|p| p.ready.len()).sum()
    }

    // ---- internal event handlers ----

    fn handle_head_release(&mut self, task: usize) {
        let instance = self.next_instance[task];
        self.next_instance[task] += 1;
        let rate = self.rates[task];
        let n_sub = self.set.tasks()[task].len();
        // End-to-end deadline d_i = n_i / r_i (paper §7.1).
        let deadline = self.now + n_sub as f64 / rate;
        self.inflight[task].insert(instance, self.now, deadline);
        self.release_job(task, 0, instance);
        // Next periodic release under the current rate.
        self.core.schedule_task_release(task, self.now + 1.0 / rate);
    }

    fn handle_subtask_release(&mut self, task: usize, index: usize, instance: u64) {
        // Release guard (Sun & Liu, rule 1): delay until one period after
        // this subtask's previous release so every subtask stays periodic.
        // Rule 2 (idle-time release): the subtask may be released early
        // when its processor is idle — the early work cannot interfere
        // with anything, and without this rule transient overloads would
        // push release phases permanently late.
        let last = self.sub_last_release[task][index];
        let guard = if last.is_finite() {
            last + 1.0 / self.rates[task]
        } else {
            self.now
        };
        if self.now + TIME_EPS < guard {
            let idle_release = self.cfg.release_guard == crate::ReleaseGuard::IdleRelease && {
                let p = self.set.tasks()[task].subtasks()[index].processor.0;
                self.procs[p].advance(self.now);
                self.procs[p].ready.is_empty()
            };
            if !idle_release {
                self.core.push_subtask(task, index, instance, guard);
                self.guard_deferrals += 1;
                return;
            }
        }
        self.release_job(task, index, instance);
    }

    fn release_job(&mut self, task: usize, index: usize, instance: u64) {
        self.sub_last_release[task][index] = self.now;
        let subtask = self.set.tasks()[task].subtasks()[index];
        let speed = self
            .cfg
            .processor_speeds
            .as_ref()
            .map_or(1.0, |s| s[subtask.processor.0]);
        // The per-task mode scale is 1.0 nominally — an exact
        // multiplicative identity, so mode-free runs stay bit-identical.
        let mean = speed
            * self.speed_override[subtask.processor.0]
            * self.cfg.etf.value_at(self.now)
            * subtask.estimated_time
            * self.task_exec_scale[task];
        // The constant model ignores the uniform draw entirely, so skip
        // the generator on that (hot) path.  The stream only ever feeds
        // execution sampling, so unconsumed draws are unobservable.
        let exec = match self.cfg.exec_model {
            crate::ExecModel::Constant => mean,
            ref model => model.sample(mean, self.rng.gen::<f64>()),
        };
        let job = Job {
            task,
            index,
            instance,
            remaining: exec,
            period: 1.0 / self.rates[task],
            release: self.now,
            seq: self.next_job_seq,
        };
        self.next_job_seq += 1;
        let p = subtask.processor.0;
        self.procs[p].advance(self.now);
        self.procs[p].push_job(job);
        self.reschedule_completion(p);
    }

    fn handle_completion(&mut self, p: usize) {
        self.procs[p].advance(self.now);
        let Some(running) = self.procs[p].running() else {
            return;
        };
        if running.remaining > TIME_EPS {
            // Stale wake-up after floating-point drift; reschedule.
            self.stale_wakeups += 1;
            self.reschedule_completion(p);
            return;
        }
        let job = self.procs[p].pop_running();
        // Subdeadline bookkeeping: subdeadline = period at release.
        {
            let st = &mut self.subtask_stats[job.task][job.index];
            st.completed += 1;
            if self.now > job.release + job.period + TIME_EPS {
                st.missed += 1;
            }
        }
        let chain_len = self.set.tasks()[job.task].len();
        if job.index + 1 < chain_len {
            // Precedence: hand the instance to the successor subtask (the
            // release guard is applied when the event fires).
            self.core
                .push_subtask(job.task, job.index + 1, job.instance, self.now);
        } else if let Some((release, deadline)) = self.inflight[job.task].remove(job.instance) {
            let response = self.now - release;
            let stats = &mut self.task_stats[job.task];
            stats.completed += 1;
            stats.response_time_sum += response;
            stats.response_time_max = stats.response_time_max.max(response);
            if self.now <= deadline + TIME_EPS {
                self.deadline_stats.met += 1;
            } else {
                self.deadline_stats.missed += 1;
                stats.missed += 1;
            }
        }
        self.reschedule_completion(p);
    }

    /// Updates the processor's single completion slot to its currently
    /// running job: rescheduled in place with a fresh sequence number, or
    /// removed when the processor is crashed or idle.
    fn reschedule_completion(&mut self, p: usize) {
        if self.procs[p].crashed {
            self.core.cancel_completion(p);
            return;
        }
        match self.procs[p].running() {
            Some(job) => {
                let eta = self.now + job.remaining;
                self.core.schedule_completion(p, eta);
            }
            None => self.core.cancel_completion(p),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eucon_tasks::{ProcessorId, Task};

    fn single_task_set(c: f64, period: f64) -> TaskSet {
        let r = 1.0 / period;
        let mut set = TaskSet::new(1);
        set.add_task(
            Task::builder(r / 10.0, r * 10.0, r)
                .subtask(ProcessorId(0), c)
                .build()
                .unwrap(),
        )
        .unwrap();
        set
    }

    #[test]
    fn ready_queue_stays_sorted_and_runs_the_minimum() {
        // The descending-sorted ready queue must always run the dispatch
        // minimum, matching a fresh scan, across arrivals (including ties
        // on period and release) and completions.
        let mk = |period: f64, release: f64, seq: u64| Job {
            task: 0,
            index: 0,
            instance: 0,
            remaining: 1.0,
            period,
            release,
            seq,
        };
        let scan_min = |p: &ProcState| {
            p.ready
                .iter()
                .min_by(|a, b| dispatch_cmp(a, b))
                .map(|j| j.seq)
        };
        let mut p = ProcState::default();
        assert!(p.running().is_none());
        // Arrivals: lower-priority first, a preempting one, a tie on
        // period broken by release, and a tie on both broken by seq.
        for job in [
            mk(5.0, 0.0, 0),
            mk(3.0, 1.0, 1),
            mk(4.0, 0.5, 2),
            mk(3.0, 1.0, 3),
        ] {
            p.push_job(job);
            assert_eq!(p.running().map(|j| j.seq), scan_min(&p));
            assert!(
                p.ready
                    .windows(2)
                    .all(|w| dispatch_cmp(&w[0], &w[1]).is_gt()),
                "queue must stay strictly descending"
            );
        }
        // Drain from the run position.
        let mut drained = Vec::new();
        while p.running().is_some() {
            assert_eq!(p.running().map(|j| j.seq), scan_min(&p));
            drained.push(p.pop_running().seq);
        }
        assert_eq!(drained, vec![1, 3, 2, 0], "drained in dispatch order");
        assert!(p.ready.is_empty());
    }

    #[test]
    fn inflight_ring_retires_out_of_order() {
        let mut ring = InflightRing::default();
        for i in 0..4u64 {
            ring.insert(i, i as f64, i as f64 + 10.0);
        }
        // Retire the middle first, then the front; the front pop must
        // advance past already-retired slots.
        assert_eq!(ring.remove(1), Some((1.0, 11.0)));
        assert_eq!(ring.remove(1), None, "double retire yields nothing");
        assert_eq!(ring.remove(0), Some((0.0, 10.0)));
        assert_eq!(ring.base, 2, "front retired slots are reclaimed");
        assert_eq!(ring.remove(3), Some((3.0, 13.0)));
        assert_eq!(ring.remove(2), Some((2.0, 12.0)));
        assert!(ring.slots.is_empty());
        // Reuse after drain restarts the ring at the next instance.
        ring.insert(4, 4.0, 14.0);
        assert_eq!(ring.remove(4), Some((4.0, 14.0)));
    }

    #[test]
    fn counters_track_engine_activity() {
        let set = eucon_tasks::workloads::medium();
        let mut sim = Simulator::new(set, SimConfig::constant_etf(1.0));
        sim.run_until(10_000.0);
        let c = sim.counters();
        assert!(c.events > 1000, "medium runs thousands of events: {c:?}");
        assert!(c.reschedules > 0, "preemptions must reschedule in place");
        assert!(c.queue_peak >= 10, "queue holds at least one slot per task");
        // The queue is bounded by the per-source structure, not the event
        // count: no tombstone accumulation.
        assert!(
            c.queue_peak < 200,
            "queue must stay O(sources), got {}",
            c.queue_peak
        );
        assert_eq!(c.events_per_time(0.0), 0.0);
        assert!(c.events_per_time(10_000.0) > 0.1);
    }

    #[test]
    fn sample_into_matches_allocating_sampler() {
        let mk = || {
            let set = eucon_tasks::workloads::medium();
            Simulator::new(
                set,
                SimConfig::constant_etf(0.9)
                    .exec_model(crate::ExecModel::Uniform { half_width: 0.2 })
                    .seed(5),
            )
        };
        let mut a = mk();
        let mut b = mk();
        let mut buf = Vector::zeros(a.task_set().num_processors());
        for k in 1..=5 {
            a.run_until(k as f64 * 1000.0);
            b.run_until(k as f64 * 1000.0);
            let u = a.sample_utilizations();
            b.sample_utilizations_into(&mut buf);
            assert!(u.approx_eq(&buf, 0.0), "bit-identical samples");
        }
        // Zero-length window fills zeros.
        b.sample_utilizations_into(&mut buf);
        assert!(buf.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn rates_slice_matches_rates() {
        let set = single_task_set(20.0, 100.0);
        let mut sim = Simulator::new(set, SimConfig::constant_etf(1.0));
        sim.set_rate(TaskId(0), 0.02);
        assert_eq!(sim.rates().as_slice(), sim.rates_slice());
    }

    #[test]
    fn single_task_utilization_is_c_over_period() {
        let set = single_task_set(20.0, 100.0);
        let mut sim = Simulator::new(set, SimConfig::constant_etf(1.0));
        sim.run_until(10_000.0);
        let u = sim.sample_utilizations();
        assert!((u[0] - 0.2).abs() < 0.01, "expected ~0.2, got {}", u[0]);
    }

    #[test]
    fn etf_scales_utilization() {
        let set = single_task_set(20.0, 100.0);
        let mut sim = Simulator::new(set, SimConfig::constant_etf(2.0));
        sim.run_until(10_000.0);
        let u = sim.sample_utilizations();
        assert!((u[0] - 0.4).abs() < 0.01, "expected ~0.4, got {}", u[0]);
    }

    #[test]
    fn overload_caps_utilization_at_one() {
        // Demand 2.0 > 1: the processor saturates and the backlog grows.
        let set = single_task_set(200.0, 100.0);
        let mut sim = Simulator::new(set, SimConfig::constant_etf(1.0));
        sim.run_until(5_000.0);
        let u = sim.sample_utilizations();
        assert!((u[0] - 1.0).abs() < 1e-9);
        assert!(sim.backlog() > 10, "queue should build up under overload");
    }

    #[test]
    fn rate_change_takes_effect() {
        let set = single_task_set(20.0, 100.0);
        let mut sim = Simulator::new(set, SimConfig::constant_etf(1.0));
        sim.run_until(10_000.0);
        let _ = sim.sample_utilizations();
        // Halve the rate → utilization halves.
        sim.set_rate(TaskId(0), 0.005);
        sim.run_until(30_000.0);
        let u = sim.sample_utilizations();
        assert!((u[0] - 0.1).abs() < 0.01, "expected ~0.1, got {}", u[0]);
    }

    #[test]
    fn set_rate_clamps_to_task_range() {
        let set = single_task_set(20.0, 100.0);
        let mut sim = Simulator::new(set, SimConfig::constant_etf(1.0));
        let applied = sim.set_rate(TaskId(0), 100.0);
        assert!((applied - 0.1).abs() < 1e-12, "clamped to Rmax = 10/period");
        let applied = sim.set_rate(TaskId(0), 1e-9);
        assert!((applied - 0.001).abs() < 1e-12, "clamped to Rmin");
    }

    #[test]
    fn two_processor_chain_executes_in_order() {
        // One end-to-end task over two processors: both see equal
        // utilization, and deadlines (2 periods end-to-end) are met at low
        // load.
        let r = 1.0 / 100.0;
        let mut set = TaskSet::new(2);
        set.add_task(
            Task::builder(r / 10.0, r * 10.0, r)
                .subtask(ProcessorId(0), 10.0)
                .subtask(ProcessorId(1), 10.0)
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut sim = Simulator::new(set, SimConfig::constant_etf(1.0));
        sim.run_until(20_000.0);
        let u = sim.sample_utilizations();
        assert!((u[0] - 0.1).abs() < 0.01);
        assert!((u[1] - 0.1).abs() < 0.01);
        let d = sim.deadline_stats();
        assert!(d.completed() > 150);
        assert_eq!(d.missed, 0);
    }

    #[test]
    fn release_guard_keeps_successor_periodic() {
        // Head subtask is tiny, successor is released at completion times
        // which jitter; the guard must keep inter-release gaps ≥ period.
        let r = 1.0 / 50.0;
        let mut set = TaskSet::new(2);
        set.add_task(
            Task::builder(r / 10.0, r * 10.0, r)
                .subtask(ProcessorId(0), 5.0)
                .subtask(ProcessorId(1), 20.0)
                .build()
                .unwrap(),
        )
        .unwrap();
        // Competing high-priority load on P0 creates completion jitter.
        let r2 = 1.0 / 23.0;
        set.add_task(
            Task::builder(r2 / 10.0, r2 * 10.0, r2)
                .subtask(ProcessorId(0), 8.0)
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut sim = Simulator::new(
            set,
            SimConfig::constant_etf(1.0)
                .exec_model(crate::ExecModel::Uniform { half_width: 0.5 })
                .seed(42),
        );
        sim.run_until(30_000.0);
        // The guard is validated structurally: inter-release spacing of the
        // successor is tracked inside the engine; we assert the observable
        // consequence — the successor completed about `duration/period`
        // instances, never more.
        let completed = sim.task_stats()[0].completed;
        assert!(completed <= 600, "guard must prevent bursts: {completed}");
        assert!(completed >= 550, "successor should keep up: {completed}");
    }

    #[test]
    fn rms_priority_preempts_longer_period_task() {
        // A short-period task must always meet deadlines even when a
        // long-period hog shares the processor.
        let fast = 1.0 / 20.0;
        let slow = 1.0 / 200.0;
        let mut set = TaskSet::new(1);
        set.add_task(
            Task::builder(fast / 2.0, fast * 2.0, fast)
                .subtask(ProcessorId(0), 5.0)
                .build()
                .unwrap(),
        )
        .unwrap();
        set.add_task(
            Task::builder(slow / 2.0, slow * 2.0, slow)
                .subtask(ProcessorId(0), 100.0)
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut sim = Simulator::new(set, SimConfig::constant_etf(1.0));
        sim.run_until(20_000.0);
        // Utilization = 5/20 + 100/200 = 0.75; fast task misses nothing
        // under RMS despite the hog.
        let u = sim.sample_utilizations();
        assert!((u[0] - 0.75).abs() < 0.01);
        assert_eq!(sim.task_stats()[0].missed, 0, "fast task must never miss");
    }

    #[test]
    fn strict_guard_enforces_exact_periodicity() {
        // With the strict guard, a successor's completions over a horizon
        // can never exceed horizon/period + 1 even when the predecessor
        // floods it (completions arrive early and must wait).
        let r = 1.0 / 50.0;
        let mut set = TaskSet::new(2);
        set.add_task(
            Task::builder(r / 10.0, r * 10.0, r)
                .subtask(ProcessorId(0), 1.0) // trivially fast head
                .subtask(ProcessorId(1), 5.0)
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut sim = Simulator::new(
            set,
            SimConfig::constant_etf(1.0).release_guard(crate::ReleaseGuard::Strict),
        );
        sim.run_until(10_000.0);
        let completed = sim.task_stats()[0].completed;
        assert!(
            completed <= 201,
            "strict spacing bounds completions: {completed}"
        );
        assert!(
            completed >= 195,
            "successor keeps up in steady state: {completed}"
        );
    }

    #[test]
    fn guard_deferrals_counted_under_jittered_strict_guard() {
        // Under the strict guard with jittered execution, any head
        // completion arriving earlier than one period after the
        // successor's previous release must be deferred — and counted.
        let r = 1.0 / 50.0;
        let mut set = TaskSet::new(2);
        set.add_task(
            Task::builder(r / 10.0, r * 10.0, r)
                .subtask(ProcessorId(0), 5.0)
                .subtask(ProcessorId(1), 20.0)
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut sim = Simulator::new(
            set,
            SimConfig::constant_etf(1.0)
                .exec_model(crate::ExecModel::Uniform { half_width: 0.5 })
                .seed(9)
                .release_guard(crate::ReleaseGuard::Strict),
        );
        sim.run_until(30_000.0);
        let c = sim.counters();
        assert!(
            c.guard_deferrals > 0,
            "jittered completions must defer: {c:?}"
        );
    }

    #[test]
    fn strict_guard_accumulates_phase_drift_after_overload() {
        // Demonstrates why the idle-release rule matters: a transient
        // overload phase-shifts the strict-guard successor permanently,
        // so end-to-end deadlines (d = 2 periods) keep missing after the
        // overload clears; idle release recovers.
        let run = |guard: crate::ReleaseGuard| {
            let r = 1.0 / 100.0;
            let mut set = TaskSet::new(2);
            set.add_task(
                Task::builder(r / 10.0, r * 10.0, r)
                    .subtask(ProcessorId(0), 30.0)
                    .subtask(ProcessorId(1), 30.0)
                    .build()
                    .unwrap(),
            )
            .unwrap();
            // Saturating overload for the first 20 periods (etf 5 →
            // demand 1.5 per processor builds a real backlog), then calm.
            let profile = crate::EtfProfile::steps(&[(0.0, 5.0), (2_000.0, 0.5)]);
            let cfg = SimConfig {
                exec_model: crate::ExecModel::Constant,
                etf: profile,
                seed: 0,
                release_guard: guard,
                processor_speeds: None,
            };
            let mut sim = Simulator::new(set, cfg);
            // Let the backlog drain before measuring steady state.
            sim.run_until(8_000.0);
            let before = sim.deadline_stats();
            sim.run_until(60_000.0);
            let after = sim.deadline_stats();
            // Miss ratio over the post-overload interval only.
            (after.missed - before.missed) as f64
                / (after.completed() - before.completed()).max(1) as f64
        };
        let strict = run(crate::ReleaseGuard::Strict);
        let idle = run(crate::ReleaseGuard::IdleRelease);
        assert!(idle < 0.02, "idle release recovers: {idle:.3}");
        assert!(
            strict > idle + 0.05,
            "strict guard must show persistent drift: strict {strict:.3} vs idle {idle:.3}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            let set = eucon_tasks::workloads::medium();
            let mut sim = Simulator::new(
                set,
                SimConfig::constant_etf(0.8)
                    .exec_model(crate::ExecModel::Uniform { half_width: 0.3 })
                    .seed(123),
            );
            sim.run_until(50_000.0);
            (sim.sample_utilizations(), sim.deadline_stats())
        };
        let (u1, d1) = mk();
        let (u2, d2) = mk();
        assert!(u1.approx_eq(&u2, 0.0));
        assert_eq!(d1, d2);
    }

    #[test]
    fn sampling_windows_are_independent() {
        let set = single_task_set(20.0, 100.0);
        let mut sim = Simulator::new(set, SimConfig::constant_etf(1.0));
        sim.run_until(10_000.0);
        let u1 = sim.sample_utilizations();
        sim.run_until(20_000.0);
        let u2 = sim.sample_utilizations();
        assert!((u1[0] - u2[0]).abs() < 0.02, "steady state: windows agree");
        // Zero-length window yields zeros, not NaN.
        let u3 = sim.sample_utilizations();
        assert_eq!(u3[0], 0.0);
    }

    #[test]
    fn total_utilization_tracks_whole_run() {
        let set = single_task_set(50.0, 100.0);
        let mut sim = Simulator::new(set, SimConfig::constant_etf(1.0));
        assert_eq!(sim.total_utilizations()[0], 0.0);
        sim.run_until(10_000.0);
        assert!((sim.total_utilizations()[0] - 0.5).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "cannot run backwards")]
    fn run_backwards_panics() {
        let set = single_task_set(20.0, 100.0);
        let mut sim = Simulator::new(set, SimConfig::constant_etf(1.0));
        sim.run_until(100.0);
        sim.run_until(50.0);
    }

    #[test]
    fn suspend_stops_releases_and_resume_restarts() {
        let set = single_task_set(20.0, 100.0);
        let mut sim = Simulator::new(set, SimConfig::constant_etf(1.0));
        sim.run_until(10_000.0);
        let _ = sim.sample_utilizations();
        assert!(!sim.is_suspended(TaskId(0)));
        sim.suspend_task(TaskId(0));
        assert!(sim.is_suspended(TaskId(0)));
        // Drain in-flight work, then the processor goes idle.
        sim.run_until(11_000.0);
        let _ = sim.sample_utilizations();
        sim.run_until(21_000.0);
        let u = sim.sample_utilizations();
        assert!(u[0] < 1e-9, "suspended task must not execute, got {}", u[0]);

        sim.resume_task(TaskId(0));
        sim.run_until(31_000.0);
        let u = sim.sample_utilizations();
        assert!(
            (u[0] - 0.2).abs() < 0.02,
            "resumed task runs again, got {}",
            u[0]
        );
    }

    #[test]
    fn suspend_is_idempotent_and_rate_changes_stay_dormant() {
        let set = single_task_set(20.0, 100.0);
        let mut sim = Simulator::new(set, SimConfig::constant_etf(1.0));
        sim.suspend_task(TaskId(0));
        sim.suspend_task(TaskId(0));
        // Rate change while suspended must not wake the task.
        sim.set_rate(TaskId(0), 0.02);
        sim.run_until(10_000.0);
        let u = sim.sample_utilizations();
        assert!(u[0] < 1e-9);
        // Resume picks up the new rate.
        sim.resume_task(TaskId(0));
        sim.resume_task(TaskId(0));
        sim.run_until(30_000.0);
        let u = sim.sample_utilizations();
        assert!(
            (u[0] - 0.4).abs() < 0.05,
            "20 exec / 50 period = 0.4, got {}",
            u[0]
        );
    }

    #[test]
    fn admitted_task_releases_and_executes() {
        let set = single_task_set(20.0, 100.0);
        let mut sim = Simulator::new(set, SimConfig::constant_etf(1.0));
        sim.run_until(10_000.0);
        let _ = sim.sample_utilizations();
        // Admit a second task mid-run: same shape, same processor.
        let r = 1.0 / 100.0;
        let id = sim
            .admit_task(
                Task::builder(r / 10.0, r * 10.0, r)
                    .subtask(ProcessorId(0), 20.0)
                    .build()
                    .unwrap(),
            )
            .unwrap();
        assert_eq!(id, TaskId(1));
        assert_eq!(sim.task_set().num_tasks(), 2);
        assert_eq!(sim.active_tasks(), 2);
        sim.run_until(30_000.0);
        let u = sim.sample_utilizations();
        assert!(
            (u[0] - 0.4).abs() < 0.02,
            "two tasks at 0.2 each, got {}",
            u[0]
        );
        assert!(sim.task_stats()[1].completed > 150, "new task runs");
    }

    #[test]
    fn admitted_task_rejects_bad_processor() {
        let set = single_task_set(20.0, 100.0);
        let mut sim = Simulator::new(set, SimConfig::constant_etf(1.0));
        let r = 1.0 / 100.0;
        let err = sim.admit_task(
            Task::builder(r / 10.0, r * 10.0, r)
                .subtask(ProcessorId(7), 20.0)
                .build()
                .unwrap(),
        );
        assert!(err.is_err());
        assert_eq!(
            sim.task_set().num_tasks(),
            1,
            "failed admit leaves no trace"
        );
    }

    #[test]
    fn departed_task_drains_in_flight_and_never_returns() {
        // Two-processor chain so departure leaves a successor in flight.
        let r = 1.0 / 100.0;
        let mut set = TaskSet::new(2);
        set.add_task(
            Task::builder(r / 10.0, r * 10.0, r)
                .subtask(ProcessorId(0), 10.0)
                .subtask(ProcessorId(1), 10.0)
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut sim = Simulator::new(set, SimConfig::constant_etf(1.0));
        sim.run_until(10_005.0); // head of instance ~100 just released
        let completed_at_depart = sim.task_stats()[0].completed;
        sim.depart_task(TaskId(0));
        sim.depart_task(TaskId(0)); // idempotent
        assert!(sim.is_departed(TaskId(0)));
        assert_eq!(sim.active_tasks(), 0);
        let _ = sim.sample_utilizations();
        sim.run_until(11_000.0);
        // The in-flight instance drained through its successor.
        assert!(sim.task_stats()[0].completed >= completed_at_depart);
        // Resume and rate changes cannot wake a departed task.
        sim.resume_task(TaskId(0));
        sim.set_rate(TaskId(0), 0.02);
        let _ = sim.sample_utilizations();
        sim.run_until(25_000.0);
        let u = sim.sample_utilizations();
        assert!(u[0] < 1e-9, "departed task must stay gone, got {}", u[0]);
        assert!(u[1] < 1e-9);
    }

    #[test]
    fn readmission_after_departure_uses_a_fresh_slot() {
        let set = single_task_set(20.0, 100.0);
        let mut sim = Simulator::new(set, SimConfig::constant_etf(1.0));
        sim.run_until(5_000.0);
        sim.depart_task(TaskId(0));
        let r = 1.0 / 100.0;
        let id = sim
            .admit_task(
                Task::builder(r / 10.0, r * 10.0, r)
                    .subtask(ProcessorId(0), 20.0)
                    .build()
                    .unwrap(),
            )
            .unwrap();
        assert_eq!(id, TaskId(1), "slots are never recycled");
        let _ = sim.sample_utilizations();
        sim.run_until(25_000.0);
        let u = sim.sample_utilizations();
        assert!((u[0] - 0.2).abs() < 0.02, "replacement runs, got {}", u[0]);
    }

    #[test]
    fn mode_change_scales_execution_demand() {
        let set = single_task_set(20.0, 100.0);
        let mut sim = Simulator::new(set, SimConfig::constant_etf(1.0));
        sim.run_until(10_000.0);
        let _ = sim.sample_utilizations();
        sim.set_task_mode(TaskId(0), 2.0);
        assert_eq!(sim.task_mode(TaskId(0)), 2.0);
        sim.run_until(30_000.0);
        let u = sim.sample_utilizations();
        assert!((u[0] - 0.4).abs() < 0.02, "2x mode: {}", u[0]);
        sim.set_task_mode(TaskId(0), 1.0);
        sim.run_until(60_000.0);
        let u = sim.sample_utilizations();
        assert!((u[0] - 0.2).abs() < 0.02, "nominal mode restored: {}", u[0]);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn mode_scale_validated() {
        let set = single_task_set(20.0, 100.0);
        let mut sim = Simulator::new(set, SimConfig::constant_etf(1.0));
        sim.set_task_mode(TaskId(0), 0.0);
    }

    #[test]
    fn crash_stops_execution_and_recovery_drains_backlog() {
        let set = single_task_set(20.0, 100.0);
        let mut sim = Simulator::new(set, SimConfig::constant_etf(1.0));
        sim.run_until(10_000.0);
        let _ = sim.sample_utilizations();
        let before = sim.deadline_stats();

        assert!(!sim.is_crashed(ProcessorId(0)));
        sim.crash_processor(ProcessorId(0));
        sim.crash_processor(ProcessorId(0)); // idempotent
        assert!(sim.is_crashed(ProcessorId(0)));
        sim.run_until(15_000.0);
        let u = sim.sample_utilizations();
        assert!(
            u[0] < 1e-9,
            "crashed processor must report u = 0, got {}",
            u[0]
        );
        assert!(sim.backlog() >= 40, "releases pile up: {}", sim.backlog());

        sim.recover_processor(ProcessorId(0));
        sim.recover_processor(ProcessorId(0)); // idempotent
        assert!(!sim.is_crashed(ProcessorId(0)));
        // 50 queued jobs × 20 each = 1000 time units of catch-up work
        // followed by the periodic load: the window saturates first, and
        // the queued instances complete past their deadlines.
        sim.run_until(16_000.0);
        let u = sim.sample_utilizations();
        assert!(
            (u[0] - 1.0).abs() < 1e-9,
            "catch-up saturates, got {}",
            u[0]
        );
        sim.run_until(30_000.0);
        let after = sim.deadline_stats();
        assert!(
            after.missed > before.missed + 30,
            "outage jobs must miss deadlines: {} -> {}",
            before.missed,
            after.missed
        );
        let u = sim.sample_utilizations();
        assert!((u[0] - 0.2).abs() < 0.05, "steady state restored: {}", u[0]);
    }

    #[test]
    fn crash_preserves_interrupted_job_progress() {
        // A job interrupted mid-execution resumes where it stopped (the
        // outage adds latency, not work).
        let set = single_task_set(50.0, 1_000.0);
        let mut sim = Simulator::new(set, SimConfig::constant_etf(1.0));
        sim.run_until(25.0); // halfway through the first job
        sim.crash_processor(ProcessorId(0));
        sim.run_until(1_000.0);
        sim.recover_processor(ProcessorId(0));
        // Remaining 25 units finish 25 after recovery.
        sim.run_until(1_030.0);
        assert_eq!(sim.task_stats()[0].completed, 1);
    }

    #[test]
    fn speed_override_scales_utilization() {
        let set = single_task_set(20.0, 100.0);
        let mut sim = Simulator::new(set, SimConfig::constant_etf(1.0));
        sim.set_speed_override(ProcessorId(0), 3.0);
        assert_eq!(sim.speed_override(ProcessorId(0)), 3.0);
        sim.run_until(10_000.0);
        let u = sim.sample_utilizations();
        assert!((u[0] - 0.6).abs() < 0.01, "3x burst: {}", u[0]);
        sim.set_speed_override(ProcessorId(0), 1.0);
        sim.run_until(30_000.0);
        let u = sim.sample_utilizations();
        assert!((u[0] - 0.2).abs() < 0.02, "burst cleared: {}", u[0]);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn speed_override_validated() {
        let set = single_task_set(20.0, 100.0);
        let mut sim = Simulator::new(set, SimConfig::constant_etf(1.0));
        sim.set_speed_override(ProcessorId(0), f64::NAN);
    }

    #[test]
    fn deadline_misses_recorded_under_overload() {
        let set = single_task_set(150.0, 100.0);
        let mut sim = Simulator::new(set, SimConfig::constant_etf(1.0));
        sim.run_until(10_000.0);
        let d = sim.deadline_stats();
        assert!(d.missed > 0, "overload must produce misses");
        assert!(d.miss_ratio() > 0.5);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            // Long-run utilization of a single periodic task equals
            // etf · c / period, for arbitrary feasible parameters.
            #[test]
            fn utilization_law(
                c in 5.0..50.0f64,
                period in 100.0..400.0f64,
                etf in 0.2..1.5f64,
            ) {
                prop_assume!(etf * c / period < 0.95);
                let set = single_task_set(c, period);
                let mut sim = Simulator::new(set, SimConfig::constant_etf(etf));
                sim.run_until(50_000.0);
                let u = sim.sample_utilizations();
                let expected = etf * c / period;
                prop_assert!(
                    (u[0] - expected).abs() < 0.03,
                    "u = {}, expected {expected}", u[0]
                );
            }

            // Utilization measurements stay within [0, 1] and busy-time
            // accounting is consistent with the all-time totals, for
            // random multi-task workloads.
            #[test]
            fn accounting_invariants(seed in 0u64..50) {
                let set = eucon_tasks::workloads::RandomWorkload::new(3, 8)
                    .seed(seed)
                    .generate();
                let cfg = SimConfig::constant_etf(0.8)
                    .exec_model(crate::ExecModel::Uniform { half_width: 0.4 })
                    .seed(seed);
                let mut sim = Simulator::new(set, cfg);
                let mut windows = Vec::new();
                for k in 1..=10 {
                    sim.run_until(k as f64 * 1000.0);
                    windows.push(sim.sample_utilizations());
                }
                for w in &windows {
                    for &u in w.iter() {
                        prop_assert!((0.0..=1.0).contains(&u));
                    }
                }
                // Mean of the window samples equals the all-time busy
                // fraction.
                let total = sim.total_utilizations();
                for p in 0..3 {
                    let mean: f64 =
                        windows.iter().map(|w| w[p]).sum::<f64>() / windows.len() as f64;
                    prop_assert!((mean - total[p]).abs() < 1e-9);
                }
            }

            // Completion counts never exceed what the release rate allows.
            #[test]
            fn completions_bounded_by_rate(seed in 0u64..30) {
                let set = eucon_tasks::workloads::RandomWorkload::new(2, 5)
                    .seed(seed)
                    .generate();
                let horizon = 30_000.0;
                let rates = set.initial_rates();
                let mut sim = Simulator::new(set, SimConfig::constant_etf(0.5).seed(seed));
                sim.run_until(horizon);
                for (t, stats) in sim.task_stats().iter().enumerate() {
                    let max_releases = (horizon * rates[t]).ceil() as u64 + 1;
                    prop_assert!(
                        stats.completed <= max_releases,
                        "T{}: {} completions exceed {} possible releases",
                        t + 1, stats.completed, max_releases
                    );
                }
            }

            // Random rate-change / suspend / crash sequences never drive
            // the indexed queue out of order: the event core asserts
            // (time, seq)-monotone pops in debug builds, and the engine's
            // accounting must survive arbitrary reschedule churn.
            #[test]
            fn rate_churn_never_reorders_events(
                seed in 0u64..40,
                ops in proptest::collection::vec((0u8..5, 0usize..8, 0.3f64..3.0), 40),
            ) {
                let set = eucon_tasks::workloads::RandomWorkload::new(3, 8)
                    .seed(seed)
                    .generate();
                let cfg = SimConfig::constant_etf(0.8)
                    .exec_model(crate::ExecModel::Uniform { half_width: 0.4 })
                    .seed(seed);
                let mut sim = Simulator::new(set, cfg);
                let mut t = 0.0;
                for (kind, which, factor) in ops {
                    t += 150.0;
                    // Every pop inside run_until is checked against the
                    // monotonicity invariant in EventCore::pop.
                    sim.run_until(t);
                    let task = TaskId(which % 8);
                    match kind {
                        0 => {
                            let r = sim.rates_slice()[task.0];
                            let _ = sim.set_rate(task, r * factor);
                        }
                        1 => sim.suspend_task(task),
                        2 => sim.resume_task(task),
                        3 => sim.crash_processor(ProcessorId(which % 3)),
                        _ => sim.recover_processor(ProcessorId(which % 3)),
                    }
                }
                sim.run_until(t + 2_000.0);
                let u = sim.sample_utilizations();
                for &ui in u.iter() {
                    prop_assert!((0.0..=1.0).contains(&ui));
                }
                let c = sim.counters();
                prop_assert!(c.events > 0);
                // No tombstone accumulation: the tombstone heap grew with
                // every reschedule (thousands under this much churn); the
                // indexed queue stays near the source count plus the
                // in-flight successor window, however many reschedules
                // happen.
                prop_assert!(
                    c.queue_peak < 200,
                    "queue must not grow with reschedule churn: peak {} after {} reschedules",
                    c.queue_peak,
                    c.reschedules
                );
            }
        }
    }
}
