//! Fault injection: scripted and stochastic infrastructure failures.
//!
//! The paper assumes ideal infrastructure (§4, §6): monitors never lie,
//! rate commands always arrive, processors never crash.  This module
//! scripts exactly those failures so the robustness of the control loop —
//! and of the supervisory wrapper in `eucon-control` — can be measured:
//!
//! * **processor crash + recovery** — a crashed processor executes
//!   nothing and reports `u = 0`; queued jobs miss deadlines
//!   ([`FaultPlan::crash`], or stochastic via [`FaultPlan::random_crashes`]);
//! * **execution-time bursts** — a transient etf spike on one processor
//!   ([`FaultPlan::burst`]);
//! * **sensor faults** — a processor's utilization sample is frozen at
//!   its pre-fault value, replaced by NaN, or forced out of range
//!   ([`FaultPlan::sensor`]);
//! * **actuation loss / delay** — rate commands that never reach a
//!   processor's rate modulator, or arrive whole periods late — the
//!   symmetric counterpart of the feedback-only `LaneModel`
//!   ([`FaultPlan::actuation_loss`], [`FaultPlan::actuation_delay`]).
//!
//! A [`FaultPlan`] is pure configuration; a [`FaultInjector`] is its
//! seeded runtime state, stepped once per sampling period by the closed
//! loop.  All stochastic draws are deterministic given the plan's seed.
//!
//! Plans are built fluently **without panicking**; call
//! [`FaultPlan::validate`] (the loop builders in `eucon-core` do this for
//! you) to reject malformed plans — out-of-range processors, empty or
//! inverted windows, ambiguous same-kind overlaps, out-of-range
//! probabilities — with a typed [`SimError`](crate::SimError) instead of
//! a crash mid-experiment.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::SimError;
use eucon_math::Vector;

/// How a stuck or corrupted utilization sensor misreports.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum SensorFaultKind {
    /// The sample freezes at the last pre-fault value (a stuck monitor).
    Frozen,
    /// The sample is replaced by NaN (a crashed monitor process).
    NaN,
    /// The sample is replaced by a constant bogus value (e.g. `-1.0` or
    /// `9.9`), modelling a corrupted report.
    Stuck(f64),
}

/// A fault window on one processor, active for sampling periods
/// `from ≤ k < until` (`until = usize::MAX` means "never repaired").
#[derive(Debug, Clone, Copy, PartialEq)]
struct Window {
    processor: usize,
    from: usize,
    until: usize,
}

impl Window {
    fn active(&self, period: usize) -> bool {
        (self.from..self.until).contains(&period)
    }
}

/// Stochastic crash model: per period, a healthy processor crashes with
/// probability `crash`, and a crashed one recovers with probability
/// `recover` (geometric outage lengths — a memoryless MTBF/MTTR model).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomCrashes {
    /// Per-period crash probability of a healthy processor, in `[0, 1)`.
    pub crash: f64,
    /// Per-period recovery probability of a crashed processor, in `(0, 1]`.
    pub recover: f64,
}

/// A scripted (and optionally stochastic) fault scenario.
///
/// Built fluently and handed to the closed loop; see the crate docs of
/// `eucon-core` for the wiring.
///
/// # Example
///
/// ```
/// use eucon_sim::{FaultPlan, SensorFaultKind};
///
/// // P2 crashes at period 60 and recovers at 100; 20% of rate commands
/// // to every processor are lost throughout the run.
/// let plan = FaultPlan::none()
///     .crash(1, 60, 100)
///     .actuation_loss(0.2)
///     .seed(7);
/// assert!(!plan.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    crashes: Vec<Window>,
    bursts: Vec<(Window, f64)>,
    sensors: Vec<(Window, SensorFaultKind)>,
    /// Windows during which a processor's feedback lane is partitioned
    /// from the controller: no utilization report arrives (the controller
    /// reuses the last delivered value) and no rate command arrives (the
    /// processor's tasks keep their in-force rates).  The processor itself
    /// keeps executing — only the network between it and the controller
    /// is down.
    partitions: Vec<Window>,
    /// Probability that a period's rate command to a given processor's
    /// rate modulator is lost, in `[0, 1)`.
    actuation_loss: f64,
    /// Whole sampling periods of delay on rate commands.
    actuation_delay: usize,
    random_crashes: Option<RandomCrashes>,
    /// Seed for every stochastic draw (actuation loss, random crashes).
    seed: u64,
}

impl FaultPlan {
    /// The empty plan: no faults (the paper's idealization).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
            && self.bursts.is_empty()
            && self.sensors.is_empty()
            && self.partitions.is_empty()
            && self.actuation_loss == 0.0
            && self.actuation_delay == 0
            && self.random_crashes.is_none()
    }

    /// Crashes `processor` for sampling periods `from ≤ k < until`.
    ///
    /// Never panics; [`FaultPlan::validate`] rejects empty windows and
    /// out-of-range processors.
    pub fn crash(mut self, processor: usize, from: usize, until: usize) -> Self {
        self.crashes.push(Window {
            processor,
            from,
            until,
        });
        self
    }

    /// Multiplies execution times on `processor` by `factor` for periods
    /// `from ≤ k < until` (a transient execution-time burst).
    ///
    /// Overlapping bursts on one processor are legal and compound
    /// multiplicatively.  Never panics; [`FaultPlan::validate`] rejects
    /// empty windows, out-of-range processors and non-positive factors.
    pub fn burst(mut self, processor: usize, from: usize, until: usize, factor: f64) -> Self {
        self.bursts.push((
            Window {
                processor,
                from,
                until,
            },
            factor,
        ));
        self
    }

    /// Corrupts the utilization sensor of `processor` for periods
    /// `from ≤ k < until`.
    ///
    /// Never panics; [`FaultPlan::validate`] rejects empty windows,
    /// out-of-range processors and same-processor overlaps.
    pub fn sensor(
        mut self,
        processor: usize,
        from: usize,
        until: usize,
        kind: SensorFaultKind,
    ) -> Self {
        self.sensors.push((
            Window {
                processor,
                from,
                until,
            },
            kind,
        ));
        self
    }

    /// Partitions `processor`'s feedback lane from the controller for
    /// sampling periods `from ≤ k < until`: both directions of the lane
    /// are dead (reports out, commands in), while the processor itself
    /// keeps executing on its in-force rates.
    ///
    /// Never panics; [`FaultPlan::validate`] rejects empty windows and
    /// out-of-range processors.
    pub fn partition(mut self, processor: usize, from: usize, until: usize) -> Self {
        self.partitions.push(Window {
            processor,
            from,
            until,
        });
        self
    }

    /// Whether the plan contains any lane-partition windows.
    pub fn has_partitions(&self) -> bool {
        !self.partitions.is_empty()
    }

    /// Loses each period's rate command to each processor independently
    /// with probability `p` (the affected processor's tasks keep their
    /// previous rates that period).
    ///
    /// Never panics; [`FaultPlan::validate`] rejects `p` outside `[0, 1)`.
    pub fn actuation_loss(mut self, p: f64) -> Self {
        self.actuation_loss = p;
        self
    }

    /// Delays every rate command by whole sampling periods (the plant
    /// runs on rates the controller computed `periods` ago).
    pub fn actuation_delay(mut self, periods: usize) -> Self {
        self.actuation_delay = periods;
        self
    }

    /// Adds memoryless random crashes on every processor.
    ///
    /// Never panics; [`FaultPlan::validate`] rejects `crash` outside
    /// `[0, 1)` and `recover` outside `(0, 1]`.
    pub fn random_crashes(mut self, crash: f64, recover: f64) -> Self {
        self.random_crashes = Some(RandomCrashes { crash, recover });
        self
    }

    /// Seeds the plan's stochastic draws.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The configured actuation delay, in sampling periods.
    pub fn actuation_delay_periods(&self) -> usize {
        self.actuation_delay
    }

    /// Validates the assembled plan against a deployment of
    /// `num_processors` processors.
    ///
    /// Checks, in order: every window's processor is in range; every
    /// window is non-empty (`from < until`); crash, sensor and partition
    /// windows do not overlap another window of the same kind on the same
    /// processor (bursts are exempt — overlapping bursts compound by
    /// design); burst factors are positive and finite; the actuation-loss
    /// probability is in `[0, 1)`; random-crash probabilities are in
    /// `[0, 1)` / `(0, 1]`.
    ///
    /// The loop builders in `eucon-core` call this before constructing a
    /// [`FaultInjector`], so a malformed plan fails the build with a typed
    /// error instead of panicking mid-run.
    ///
    /// # Errors
    ///
    /// The first [`SimError`] found, in the order above.
    pub fn validate(&self, num_processors: usize) -> Result<(), SimError> {
        let bursts: Vec<Window> = self.bursts.iter().map(|&(w, _)| w).collect();
        let sensors: Vec<Window> = self.sensors.iter().map(|&(w, _)| w).collect();
        // Same-kind overlap on one processor is ambiguous for crashes,
        // sensors and partitions; bursts compound and are exempt.
        check_windows("crash", &self.crashes, num_processors, true)?;
        check_windows("burst", &bursts, num_processors, false)?;
        check_windows("sensor", &sensors, num_processors, true)?;
        check_windows("partition", &self.partitions, num_processors, true)?;
        for &(_, factor) in &self.bursts {
            if !(factor > 0.0 && factor.is_finite()) {
                return Err(SimError::InvalidFactor { value: factor });
            }
        }
        if !(0.0..1.0).contains(&self.actuation_loss) {
            return Err(SimError::InvalidProbability {
                what: "actuation loss",
                value: self.actuation_loss,
            });
        }
        if let Some(rc) = self.random_crashes {
            if !(0.0..1.0).contains(&rc.crash) {
                return Err(SimError::InvalidProbability {
                    what: "crash",
                    value: rc.crash,
                });
            }
            if !(rc.recover > 0.0 && rc.recover <= 1.0) {
                return Err(SimError::InvalidProbability {
                    what: "recovery",
                    value: rc.recover,
                });
            }
        }
        Ok(())
    }
}

/// Range + emptiness checks for one fault kind's windows; when
/// `exclusive`, also rejects same-processor overlaps.
fn check_windows(
    fault: &'static str,
    windows: &[Window],
    num_processors: usize,
    exclusive: bool,
) -> Result<(), SimError> {
    for w in windows {
        if w.processor >= num_processors {
            return Err(SimError::ProcessorOutOfRange {
                fault,
                processor: w.processor,
                num_processors,
            });
        }
        if w.from >= w.until {
            return Err(SimError::EmptyWindow {
                fault,
                processor: w.processor,
                from: w.from,
                until: w.until,
            });
        }
    }
    if exclusive {
        for p in 0..num_processors {
            let mut ws: Vec<&Window> = windows.iter().filter(|w| w.processor == p).collect();
            ws.sort_by_key(|w| w.from);
            for pair in ws.windows(2) {
                if pair[1].from < pair[0].until {
                    return Err(SimError::OverlappingWindows {
                        fault,
                        processor: p,
                        first: (pair[0].from, pair[0].until),
                        second: (pair[1].from, pair[1].until),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Runtime state of a [`FaultPlan`], stepped once per sampling period.
///
/// The closed loop calls, in order: [`FaultInjector::begin_period`] before
/// advancing the plant, [`FaultInjector::corrupt_sensors`] on the sampled
/// utilization vector, and [`FaultInjector::actuation_lost`] when applying
/// the controller's rate commands.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: StdRng,
    num_processors: usize,
    /// Stochastic crash state per processor (scripted windows are
    /// stateless and evaluated per period).
    random_down: Vec<bool>,
    /// Value a frozen sensor is pinned to, captured at fault onset.
    frozen: Vec<Option<f64>>,
    /// Scratch: per-processor actuation-loss draws for the current period.
    lost: Vec<bool>,
    sensor_fault_periods: usize,
    actuation_drops: usize,
}

impl FaultInjector {
    /// Creates the runtime state for `num_processors` processors.
    pub fn new(plan: FaultPlan, num_processors: usize) -> Self {
        FaultInjector {
            rng: StdRng::seed_from_u64(plan.seed),
            plan,
            num_processors,
            random_down: vec![false; num_processors],
            frozen: vec![None; num_processors],
            lost: vec![false; num_processors],
            sensor_fault_periods: 0,
            actuation_drops: 0,
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Advances stochastic fault state to `period` and returns the set of
    /// processors that must be down during it.
    ///
    /// Call exactly once per period, with strictly increasing `period`
    /// values, before advancing the plant — the stochastic draws are
    /// consumed in order.
    pub fn begin_period(&mut self, period: usize) -> Vec<usize> {
        if let Some(rc) = self.plan.random_crashes {
            for p in 0..self.num_processors {
                let flip = if self.random_down[p] {
                    self.rng.gen::<f64>() < rc.recover
                } else {
                    self.rng.gen::<f64>() < rc.crash
                };
                if flip {
                    self.random_down[p] = !self.random_down[p];
                }
            }
        }
        // Pre-draw this period's actuation losses so the draw order is
        // independent of how callers interleave the other queries.
        for p in 0..self.num_processors {
            self.lost[p] =
                self.plan.actuation_loss > 0.0 && self.rng.gen::<f64>() < self.plan.actuation_loss;
        }
        (0..self.num_processors)
            .filter(|&p| {
                self.random_down[p]
                    || self
                        .plan
                        .crashes
                        .iter()
                        .any(|w| w.processor == p && w.active(period))
            })
            .collect()
    }

    /// The execution-time multiplier each processor must run at during
    /// `period` (compounding overlapping bursts).
    pub fn speed_factor(&self, period: usize, processor: usize) -> f64 {
        self.plan
            .bursts
            .iter()
            .filter(|(w, _)| w.processor == processor && w.active(period))
            .map(|&(_, f)| f)
            .product()
    }

    /// Applies the active sensor faults for `period` to the freshly
    /// sampled utilization vector, in place.
    ///
    /// # Panics
    ///
    /// Panics if `u` does not have one entry per processor.
    pub fn corrupt_sensors(&mut self, period: usize, u: &mut Vector) {
        assert_eq!(u.len(), self.num_processors, "one sample per processor");
        let mut any = false;
        for p in 0..self.num_processors {
            let mut faulted = false;
            for &(w, kind) in &self.plan.sensors {
                if w.processor != p || !w.active(period) {
                    continue;
                }
                faulted = true;
                match kind {
                    SensorFaultKind::Frozen => {
                        let pin = *self.frozen[p].get_or_insert(u[p]);
                        u[p] = pin;
                    }
                    SensorFaultKind::NaN => u[p] = f64::NAN,
                    SensorFaultKind::Stuck(v) => u[p] = v,
                }
            }
            if !faulted {
                self.frozen[p] = None;
            }
            any |= faulted;
        }
        if any {
            self.sensor_fault_periods += 1;
        }
    }

    /// Whether `processor`'s feedback lane is partitioned from the
    /// controller during `period` (scripted windows; stateless query).
    pub fn lane_partitioned(&self, period: usize, processor: usize) -> bool {
        self.plan
            .partitions
            .iter()
            .any(|w| w.processor == processor && w.active(period))
    }

    /// Whether the rate command to `processor`'s modulator is lost this
    /// period (drawn in [`FaultInjector::begin_period`]).
    pub fn actuation_lost(&mut self, processor: usize) -> bool {
        let lost = self.lost[processor];
        if lost {
            self.actuation_drops += 1;
        }
        lost
    }

    /// Number of periods in which at least one sensor misreported.
    pub fn sensor_fault_periods(&self) -> usize {
        self.sensor_fault_periods
    }

    /// Number of (period × processor) rate commands lost so far.
    pub fn actuation_drops(&self) -> usize {
        self.actuation_drops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inert() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        let mut inj = FaultInjector::new(plan, 2);
        assert!(inj.begin_period(0).is_empty());
        assert_eq!(inj.speed_factor(0, 0), 1.0);
        let mut u = Vector::from_slice(&[0.5, 0.6]);
        inj.corrupt_sensors(0, &mut u);
        assert_eq!(u.as_slice(), &[0.5, 0.6]);
        assert!(!inj.actuation_lost(0));
        assert_eq!(inj.sensor_fault_periods(), 0);
        assert_eq!(inj.actuation_drops(), 0);
    }

    #[test]
    fn scripted_crash_window_is_half_open() {
        let mut inj = FaultInjector::new(FaultPlan::none().crash(1, 60, 100), 3);
        assert!(inj.begin_period(59).is_empty());
        assert_eq!(inj.begin_period(60), vec![1]);
        assert_eq!(inj.begin_period(99), vec![1]);
        assert!(inj.begin_period(100).is_empty());
    }

    #[test]
    fn bursts_compound() {
        let plan = FaultPlan::none()
            .burst(0, 10, 20, 2.0)
            .burst(0, 15, 25, 3.0);
        let inj = FaultInjector::new(plan, 1);
        assert_eq!(inj.speed_factor(5, 0), 1.0);
        assert_eq!(inj.speed_factor(12, 0), 2.0);
        assert_eq!(inj.speed_factor(17, 0), 6.0);
        assert_eq!(inj.speed_factor(22, 0), 3.0);
    }

    #[test]
    fn frozen_sensor_pins_the_onset_value_and_clears() {
        let plan = FaultPlan::none().sensor(0, 2, 4, SensorFaultKind::Frozen);
        let mut inj = FaultInjector::new(plan, 1);
        for (k, (fresh, want)) in [(0.1, 0.1), (0.2, 0.2), (0.3, 0.3), (0.4, 0.3), (0.5, 0.5)]
            .iter()
            .enumerate()
        {
            let mut u = Vector::from_slice(&[*fresh]);
            inj.corrupt_sensors(k, &mut u);
            assert_eq!(u[0], *want, "period {k}");
        }
        assert_eq!(inj.sensor_fault_periods(), 2);
    }

    #[test]
    fn nan_and_stuck_sensors() {
        let plan = FaultPlan::none()
            .sensor(0, 0, 10, SensorFaultKind::NaN)
            .sensor(1, 0, 10, SensorFaultKind::Stuck(9.9));
        let mut inj = FaultInjector::new(plan, 2);
        let mut u = Vector::from_slice(&[0.5, 0.5]);
        inj.corrupt_sensors(3, &mut u);
        assert!(u[0].is_nan());
        assert_eq!(u[1], 9.9);
    }

    #[test]
    fn actuation_loss_rate_matches_probability() {
        let mut inj = FaultInjector::new(FaultPlan::none().actuation_loss(0.2).seed(11), 2);
        let mut drops = 0;
        for k in 0..1000 {
            let _ = inj.begin_period(k);
            for p in 0..2 {
                if inj.actuation_lost(p) {
                    drops += 1;
                }
            }
        }
        assert!((300..500).contains(&drops), "≈20% of 2000: {drops}");
        assert_eq!(inj.actuation_drops(), drops);
    }

    #[test]
    fn random_crashes_are_deterministic_and_recover() {
        let mk = || {
            let mut inj =
                FaultInjector::new(FaultPlan::none().random_crashes(0.05, 0.3).seed(5), 4);
            (0..500)
                .map(|k| inj.begin_period(k).len())
                .collect::<Vec<_>>()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a, b, "seeded draws must be reproducible");
        let total_down: usize = a.iter().sum();
        assert!(total_down > 0, "crashes must occur");
        assert!(
            *a.iter().max().unwrap() <= 4 && a.contains(&0),
            "processors recover"
        );
    }

    #[test]
    fn partition_windows_are_half_open_and_per_processor() {
        let plan = FaultPlan::none().partition(1, 30, 60);
        assert!(!plan.is_empty());
        assert!(plan.has_partitions());
        let inj = FaultInjector::new(plan, 3);
        assert!(!inj.lane_partitioned(29, 1));
        assert!(inj.lane_partitioned(30, 1));
        assert!(inj.lane_partitioned(59, 1));
        assert!(!inj.lane_partitioned(60, 1));
        assert!(!inj.lane_partitioned(40, 0), "other lanes unaffected");
    }

    #[test]
    fn validate_accepts_well_formed_plans() {
        let plan = FaultPlan::none()
            .crash(1, 60, 100)
            .crash(1, 120, 140)
            .burst(0, 10, 20, 2.0)
            .burst(0, 15, 25, 3.0) // overlapping bursts compound: legal
            .sensor(2, 0, 30, SensorFaultKind::NaN)
            .partition(0, 5, 9)
            .actuation_loss(0.3)
            .actuation_delay(2)
            .random_crashes(0.05, 0.3);
        assert_eq!(plan.validate(3), Ok(()));
        assert_eq!(FaultPlan::none().validate(0), Ok(()));
    }

    #[test]
    fn empty_window_rejected() {
        let err = FaultPlan::none().crash(0, 10, 10).validate(2).unwrap_err();
        assert_eq!(
            err,
            SimError::EmptyWindow {
                fault: "crash",
                processor: 0,
                from: 10,
                until: 10,
            }
        );
        // Inverted windows are the same rejection.
        let err = FaultPlan::none()
            .sensor(1, 20, 10, SensorFaultKind::Frozen)
            .validate(2)
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::EmptyWindow {
                fault: "sensor",
                ..
            }
        ));
    }

    #[test]
    fn out_of_range_processor_rejected() {
        let err = FaultPlan::none()
            .partition(5, 0, 10)
            .validate(3)
            .unwrap_err();
        assert_eq!(
            err,
            SimError::ProcessorOutOfRange {
                fault: "partition",
                processor: 5,
                num_processors: 3,
            }
        );
    }

    #[test]
    fn overlapping_exclusive_windows_rejected_but_bursts_exempt() {
        let err = FaultPlan::none()
            .crash(1, 10, 30)
            .crash(1, 20, 40)
            .validate(2)
            .unwrap_err();
        assert_eq!(
            err,
            SimError::OverlappingWindows {
                fault: "crash",
                processor: 1,
                first: (10, 30),
                second: (20, 40),
            }
        );
        // Same windows on *different* processors are fine.
        assert_eq!(
            FaultPlan::none()
                .crash(0, 10, 30)
                .crash(1, 20, 40)
                .validate(2),
            Ok(())
        );
        // Overlapping bursts compound by design and must stay legal.
        assert_eq!(
            FaultPlan::none()
                .burst(0, 10, 30, 2.0)
                .burst(0, 20, 40, 3.0)
                .validate(1),
            Ok(())
        );
        // Back-to-back half-open windows share an endpoint, not a period.
        assert_eq!(
            FaultPlan::none()
                .crash(0, 10, 20)
                .crash(0, 20, 30)
                .validate(1),
            Ok(())
        );
    }

    #[test]
    fn bad_burst_factor_rejected() {
        for bad in [0.0, -2.0, f64::INFINITY, f64::NAN] {
            let err = FaultPlan::none()
                .burst(0, 0, 5, bad)
                .validate(1)
                .unwrap_err();
            assert!(matches!(err, SimError::InvalidFactor { .. }), "{bad}");
        }
    }

    #[test]
    fn actuation_loss_validated() {
        let err = FaultPlan::none()
            .actuation_loss(1.0)
            .validate(1)
            .unwrap_err();
        assert_eq!(
            err,
            SimError::InvalidProbability {
                what: "actuation loss",
                value: 1.0,
            }
        );
        assert!(FaultPlan::none().actuation_loss(-0.1).validate(1).is_err());
        assert!(FaultPlan::none().actuation_loss(0.999).validate(1).is_ok());
    }

    #[test]
    fn random_crash_probabilities_validated() {
        let err = FaultPlan::none()
            .random_crashes(1.5, 0.5)
            .validate(1)
            .unwrap_err();
        assert_eq!(
            err,
            SimError::InvalidProbability {
                what: "crash",
                value: 1.5,
            }
        );
        let err = FaultPlan::none()
            .random_crashes(0.1, 0.0)
            .validate(1)
            .unwrap_err();
        assert_eq!(
            err,
            SimError::InvalidProbability {
                what: "recovery",
                value: 0.0,
            }
        );
        assert!(FaultPlan::none()
            .random_crashes(0.0, 1.0)
            .validate(1)
            .is_ok());
    }
}
