//! Indexed, per-source event core — the tombstone-free replacement for the
//! global `BinaryHeap` event queue.
//!
//! The engine's event set has fixed structure: each task has exactly one
//! live "next head release", each processor exactly one live tentative
//! completion, and each subtask a short list of release-guarded successor
//! instances.  Instead of pushing a fresh heap entry on every reschedule
//! and leaving the stale one to rot until pop (the version-tombstone
//! pattern), every *event source* owns one slot in an indexed binary
//! min-heap with a position table: rescheduling is a decrease/increase-key
//! sift, cancellation is a removal, and `pop` never discards anything.
//! Memory is `O(m + n + Σ subtasks)` and the steady state allocates
//! nothing.
//!
//! Determinism is inherited from the old queue: every (re)schedule stamps
//! a fresh monotone sequence number, and events are ordered by
//! `(time, seq)` — so simultaneous events fire in exactly the order the
//! tombstone engine fired them (live entries were always the most recently
//! pushed for their source there, too).

/// An event popped from the [`EventCore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FiredEvent {
    /// Periodic release of a task's head subtask.
    TaskRelease { task: usize },
    /// Release-guarded release of a successor subtask instance.
    SubtaskRelease {
        task: usize,
        index: usize,
        instance: u64,
    },
    /// Tentative completion of the job running on a processor.
    Completion { processor: usize },
}

/// A pending successor-subtask release: `(time, seq, instance)`.
///
/// Entries of one subtask source are kept sorted by `(time, seq)`.  They
/// are *not* a FIFO: a guard-deferred instance (future release time) can
/// coexist with a later-arriving instance whose release time is earlier.
#[derive(Debug, Clone, Copy)]
struct Pending {
    time: f64,
    seq: u64,
    instance: u64,
}

/// Sentinel for "source not in the heap".
const ABSENT: u32 = u32::MAX;

/// What a source id denotes.
///
/// The original layout was pure arithmetic over `[tasks | processors |
/// subtasks]`; runtime task admission appends new sources at the end of
/// the id space, which breaks the arithmetic — so the mapping is an
/// explicit table, consulted once per pop (a single indexed load, cheaper
/// than the `partition_point` the arithmetic needed for subtask owners).
#[derive(Debug, Clone, Copy)]
enum SourceKind {
    /// Head-release source of a task.
    Task(u32),
    /// Tentative-completion source of a processor.
    Proc(u32),
    /// Release-guarded successor subtask `(task, index ≥ 1)`.
    Sub { task: u32, index: u32 },
}

/// Heap branching factor.  `(time, seq)` is a strict total order (`seq`
/// is unique), so the pop sequence is independent of the heap's shape —
/// arity is purely a constant-factor knob.  Four halves the sift depth
/// relative to a binary heap and keeps each node's children in adjacent
/// cache lines.
const ARITY: usize = 4;

/// A heap slot: the key is stored inline so sift comparisons touch only
/// the heap array itself (indirecting through per-source key arrays costs
/// two extra cache misses per comparison, which dominates at scale).
#[derive(Debug, Clone, Copy)]
struct Slot {
    time: f64,
    seq: u64,
    src: u32,
}

impl Slot {
    #[inline]
    fn less(&self, other: &Slot) -> bool {
        match self.time.total_cmp(&other.time) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => self.seq < other.seq,
        }
    }
}

/// Indexed earliest-first event queue with one slot per event source.
///
/// Source ids are laid out as `[tasks | processors | subtasks]`:
/// task `t` → `t`, processor `p` → `m + p`, successor subtask `(t, i)`
/// (with `i ≥ 1`) → `sub_base[t] + (i − 1)`.
#[derive(Debug)]
pub(crate) struct EventCore {
    /// Source id of the first processor (the initial task count —
    /// processor ids never move because growth only appends).
    proc0: u32,
    /// Kind of every source id.
    kind: Vec<SourceKind>,
    /// Head-release source id of each task (original tasks keep `t`,
    /// appended tasks get ids at the end of the id space).
    head_src: Vec<u32>,
    /// First subtask-source id of each task (successors only).
    sub_base: Vec<u32>,
    /// Heap of sources with inline keys, ordered by `(time, seq)`.
    heap: Vec<Slot>,
    /// Position of each source in `heap`, or [`ABSENT`].
    pos: Vec<u32>,
    /// Pending instances per source id, sorted by `(time, seq)`; the
    /// front entry is the source's heap key.  Only subtask sources ever
    /// queue entries; task/processor slots stay empty (a few unused
    /// `Vec`s buy direct indexing by source id, which survives growth).
    pending: Vec<Vec<Pending>>,
    next_seq: u64,
    /// Live events (heap singletons + queued pending entries).
    live: usize,
    /// Largest live-event count ever observed.
    peak: usize,
    /// In-place reschedules of an already-queued source (each of these
    /// would have been a tombstone in the old queue).
    reschedules: u64,
    /// `(time, seq)` of the last popped event, for the monotonicity
    /// invariant (debug builds only).
    #[cfg(debug_assertions)]
    last_popped: (f64, u64),
}

impl EventCore {
    /// Creates a core for `num_tasks` tasks on `num_procs` processors,
    /// where task `t` has `subtask_counts[t]` subtasks (so
    /// `subtask_counts[t] − 1` successor sources).
    pub fn new(num_tasks: usize, num_procs: usize, subtask_counts: &[usize]) -> Self {
        assert_eq!(subtask_counts.len(), num_tasks);
        let mut kind = Vec::with_capacity(num_tasks + num_procs);
        let mut head_src = Vec::with_capacity(num_tasks);
        for t in 0..num_tasks {
            kind.push(SourceKind::Task(t as u32));
            head_src.push(t as u32);
        }
        for p in 0..num_procs {
            kind.push(SourceKind::Proc(p as u32));
        }
        let mut sub_base = Vec::with_capacity(num_tasks);
        let mut next = (num_tasks + num_procs) as u32;
        for (t, &len) in subtask_counts.iter().enumerate() {
            sub_base.push(next);
            for i in 1..len {
                kind.push(SourceKind::Sub {
                    task: t as u32,
                    index: i as u32,
                });
            }
            next += len.saturating_sub(1) as u32;
        }
        let total = next as usize;
        EventCore {
            proc0: num_tasks as u32,
            kind,
            head_src,
            sub_base,
            heap: Vec::with_capacity(total),
            pos: vec![ABSENT; total],
            pending: vec![Vec::new(); total],
            next_seq: 0,
            live: 0,
            peak: 0,
            reschedules: 0,
            #[cfg(debug_assertions)]
            last_popped: (f64::NEG_INFINITY, 0),
        }
    }

    /// Adds a task with `num_subtasks` subtasks at runtime, returning its
    /// id (always the next task index).  The new head-release and
    /// successor sources are appended to the end of the id space;
    /// existing ids, queued events and the `(time, seq)` pop order are
    /// untouched.
    pub fn add_task(&mut self, num_subtasks: usize) -> usize {
        assert!(num_subtasks >= 1, "a task has at least one subtask");
        let task = self.head_src.len();
        let head = self.kind.len() as u32;
        self.kind.push(SourceKind::Task(task as u32));
        self.head_src.push(head);
        self.sub_base.push(head + 1);
        for i in 1..num_subtasks {
            self.kind.push(SourceKind::Sub {
                task: task as u32,
                index: i as u32,
            });
        }
        let total = self.kind.len();
        self.pos.resize(total, ABSENT);
        self.pending.resize_with(total, Vec::new);
        task
    }

    /// Number of live events.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Largest number of simultaneously live events so far.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// In-place reschedules performed so far (the old queue would have
    /// left one tombstone per reschedule).
    pub fn reschedules(&self) -> u64 {
        self.reschedules
    }

    /// Schedules (or reschedules) the next head release of `task`.
    pub fn schedule_task_release(&mut self, task: usize, time: f64) {
        self.upsert(self.head_src[task], time);
    }

    /// Cancels the pending head release of `task`, if any.
    pub fn cancel_task_release(&mut self, task: usize) {
        self.cancel(self.head_src[task]);
    }

    /// Schedules (or reschedules) the tentative completion of the job
    /// running on processor `p`.
    pub fn schedule_completion(&mut self, p: usize, time: f64) {
        self.upsert(self.proc_source(p), time);
    }

    /// Cancels the pending completion of processor `p`, if any.
    pub fn cancel_completion(&mut self, p: usize) {
        self.cancel(self.proc_source(p));
    }

    /// Queues a successor-subtask release (`index ≥ 1`) of `instance` at
    /// `time`.
    pub fn push_subtask(&mut self, task: usize, index: usize, instance: u64, time: f64) {
        assert!(!time.is_nan(), "event time must not be NaN");
        let s = self.sub_source(task, index);
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = Pending {
            time,
            seq,
            instance,
        };
        let list = &mut self.pending[s as usize];
        // Sorted insert by (time, seq); lists are a handful of entries at
        // worst (bounded by the release-guard backlog of one subtask).
        let at = list.partition_point(|e| (e.time, e.seq) < (entry.time, entry.seq));
        list.insert(at, entry);
        self.live += 1;
        self.peak = self.peak.max(self.live);
        if at == 0 {
            // New front: the source's heap key changes (counted as a plain
            // schedule, not a reschedule — nothing was invalidated).
            let front = (time, seq);
            self.set_key(s, front.0, front.1);
        }
    }

    /// Time of the earliest event, if any.
    #[cfg(test)]
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.first().map(|slot| slot.time)
    }

    /// Pops the earliest event if it fires no later than `t_end`
    /// (fused peek + pop for the engine's main loop).
    pub fn pop_before(&mut self, t_end: f64) -> Option<(f64, FiredEvent)> {
        if self.heap.first()?.time > t_end {
            return None;
        }
        self.pop()
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(f64, FiredEvent)> {
        let &slot = self.heap.first()?;
        let s = slot.src as usize;
        let at = (slot.time, slot.seq);
        #[cfg(debug_assertions)]
        {
            let (lt, lq) = self.last_popped;
            debug_assert!(
                at.0 > lt || (at.0 == lt && at.1 > lq),
                "event core must pop in (time, seq) order: {at:?} after {:?}",
                (lt, lq)
            );
            self.last_popped = at;
        }
        self.live -= 1;
        let fired = match self.kind[s] {
            SourceKind::Task(task) => {
                self.remove_root();
                FiredEvent::TaskRelease {
                    task: task as usize,
                }
            }
            SourceKind::Proc(p) => {
                self.remove_root();
                FiredEvent::Completion {
                    processor: p as usize,
                }
            }
            SourceKind::Sub { task, index } => {
                let entry = self.pending[s].remove(0);
                debug_assert_eq!((entry.time, entry.seq), at);
                match self.pending[s].first().map(|e| (e.time, e.seq)) {
                    Some((t, q)) => self.set_key(s as u32, t, q),
                    None => self.remove_root(),
                }
                FiredEvent::SubtaskRelease {
                    task: task as usize,
                    index: index as usize,
                    instance: entry.instance,
                }
            }
        };
        Some((at.0, fired))
    }

    // ---- source-id lookup ----

    fn proc_source(&self, p: usize) -> u32 {
        self.proc0 + p as u32
    }

    fn sub_source(&self, task: usize, index: usize) -> u32 {
        debug_assert!(index >= 1, "index 0 is the head release source");
        self.sub_base[task] + (index as u32 - 1)
    }

    // ---- indexed-heap primitives ----

    /// Inserts or reschedules a single-slot source (task or processor)
    /// with a fresh sequence number.
    fn upsert(&mut self, s: u32, time: f64) {
        assert!(!time.is_nan(), "event time must not be NaN");
        if self.pos[s as usize] == ABSENT {
            self.live += 1;
            self.peak = self.peak.max(self.live);
        } else {
            self.reschedules += 1;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.set_key(s, time, seq);
    }

    /// Removes a single-slot source if present.
    fn cancel(&mut self, s: u32) {
        if self.pos[s as usize] != ABSENT {
            self.remove(s);
            self.live -= 1;
        }
    }

    /// Sets a source's key and restores the heap order (inserting the
    /// source if absent).
    fn set_key(&mut self, s: u32, time: f64, seq: u64) {
        let slot = Slot { time, seq, src: s };
        let i = self.pos[s as usize];
        if i == ABSENT {
            self.heap.push(slot);
            self.sift_up(self.heap.len() - 1, slot);
        } else {
            let i = i as usize;
            self.heap[i] = slot;
            // The key may have moved either way: try both directions (one
            // is a no-op).
            self.sift_up(i, slot);
            self.sift_down(self.pos[s as usize] as usize);
        }
    }

    /// Removes the heap root (cheaper than the general `remove`).
    fn remove_root(&mut self) {
        let removed = self.heap.swap_remove(0);
        self.pos[removed.src as usize] = ABSENT;
        if let Some(moved) = self.heap.first() {
            self.pos[moved.src as usize] = 0;
            self.sift_down(0);
        }
    }

    /// Removes an arbitrary source from the heap.
    fn remove(&mut self, s: u32) {
        let i = self.pos[s as usize] as usize;
        self.pos[s as usize] = ABSENT;
        let last = self.heap.len() - 1;
        self.heap.swap_remove(i);
        if i <= last && i < self.heap.len() {
            let moved = self.heap[i];
            self.pos[moved.src as usize] = i as u32;
            self.sift_up(i, moved);
            self.sift_down(self.pos[moved.src as usize] as usize);
        }
    }

    /// Moves the slot at `i` (already equal to `slot`) toward the root
    /// until its parent is no greater.  Hole-based: ancestors shift down
    /// and positions are written once per visited level.
    fn sift_up(&mut self, mut i: usize, slot: Slot) {
        while i > 0 {
            let parent = (i - 1) / ARITY;
            let p = self.heap[parent];
            if slot.less(&p) {
                self.heap[i] = p;
                self.pos[p.src as usize] = i as u32;
                i = parent;
            } else {
                break;
            }
        }
        self.heap[i] = slot;
        self.pos[slot.src as usize] = i as u32;
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        let slot = self.heap[i];
        loop {
            let first = ARITY * i + 1;
            if first >= n {
                break;
            }
            let last = (first + ARITY).min(n);
            let mut best = first;
            let mut b = self.heap[first];
            for c in first + 1..last {
                if self.heap[c].less(&b) {
                    best = c;
                    b = self.heap[c];
                }
            }
            if b.less(&slot) {
                self.heap[i] = b;
                self.pos[b.src as usize] = i as u32;
                i = best;
            } else {
                break;
            }
        }
        self.heap[i] = slot;
        self.pos[slot.src as usize] = i as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core3() -> EventCore {
        // 3 tasks on 2 processors; task 0 has 3 subtasks, task 1 has 1,
        // task 2 has 2 → successor sources: t0 ×2, t2 ×1.
        EventCore::new(3, 2, &[3, 1, 2])
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = core3();
        q.schedule_task_release(0, 5.0);
        q.schedule_task_release(1, 1.0);
        q.schedule_task_release(2, 3.0);
        let mut order = Vec::new();
        while let Some((t, _)) = q.pop() {
            order.push(t);
        }
        assert_eq!(order, vec![1.0, 3.0, 5.0]);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn simultaneous_events_pop_in_schedule_order() {
        let mut q = core3();
        for task in 0..3 {
            q.schedule_task_release(task, 2.0);
        }
        q.schedule_completion(1, 2.0);
        q.push_subtask(0, 1, 7, 2.0);
        let mut order = Vec::new();
        while let Some((_, e)) = q.pop() {
            order.push(e);
        }
        assert_eq!(
            order,
            vec![
                FiredEvent::TaskRelease { task: 0 },
                FiredEvent::TaskRelease { task: 1 },
                FiredEvent::TaskRelease { task: 2 },
                FiredEvent::Completion { processor: 1 },
                FiredEvent::SubtaskRelease {
                    task: 0,
                    index: 1,
                    instance: 7
                },
            ]
        );
    }

    #[test]
    fn reschedule_updates_in_place() {
        let mut q = core3();
        q.schedule_task_release(0, 10.0);
        q.schedule_task_release(1, 5.0);
        assert_eq!(q.len(), 2);
        // Move task 0 ahead of task 1: same source, no tombstone.
        q.schedule_task_release(0, 1.0);
        assert_eq!(q.len(), 2, "reschedule must not grow the queue");
        assert_eq!(q.reschedules(), 1);
        assert_eq!(q.pop().unwrap().1, FiredEvent::TaskRelease { task: 0 });
        assert_eq!(q.pop().unwrap().1, FiredEvent::TaskRelease { task: 1 });
    }

    #[test]
    fn reschedule_at_same_time_moves_behind_ties() {
        // The old queue invalidated + re-pushed, so a rescheduled event
        // fell behind other events at the same time.  The indexed core
        // must reproduce that order via the fresh sequence number.
        let mut q = core3();
        q.schedule_task_release(0, 2.0);
        q.schedule_task_release(1, 2.0);
        q.schedule_task_release(0, 2.0); // reschedule, same time
        assert_eq!(q.pop().unwrap().1, FiredEvent::TaskRelease { task: 1 });
        assert_eq!(q.pop().unwrap().1, FiredEvent::TaskRelease { task: 0 });
    }

    #[test]
    fn cancel_removes_without_tombstones() {
        let mut q = core3();
        q.schedule_task_release(0, 1.0);
        q.schedule_completion(0, 2.0);
        q.cancel_task_release(0);
        q.cancel_task_release(0); // idempotent
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, FiredEvent::Completion { processor: 0 });
        assert!(q.pop().is_none());
        q.cancel_completion(1); // absent: no-op
    }

    #[test]
    fn subtask_entries_sort_by_time_not_arrival() {
        let mut q = core3();
        // A guard-deferred instance at t=10 arrives before a completion-
        // driven instance at t=4: the earlier time must pop first.
        q.push_subtask(0, 1, 0, 10.0);
        q.push_subtask(0, 1, 1, 4.0);
        q.push_subtask(0, 2, 2, 6.0);
        let popped: Vec<(f64, FiredEvent)> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            popped,
            vec![
                (
                    4.0,
                    FiredEvent::SubtaskRelease {
                        task: 0,
                        index: 1,
                        instance: 1
                    }
                ),
                (
                    6.0,
                    FiredEvent::SubtaskRelease {
                        task: 0,
                        index: 2,
                        instance: 2
                    }
                ),
                (
                    10.0,
                    FiredEvent::SubtaskRelease {
                        task: 0,
                        index: 1,
                        instance: 0
                    }
                ),
            ]
        );
    }

    #[test]
    fn peek_matches_pop_and_peak_tracks_high_water() {
        let mut q = core3();
        assert_eq!(q.peek_time(), None);
        q.schedule_completion(0, 7.0);
        q.schedule_task_release(2, 9.0);
        assert_eq!(q.peek_time(), Some(7.0));
        assert_eq!(q.peak(), 2);
        let (t, e) = q.pop().unwrap();
        assert_eq!(t, 7.0);
        assert_eq!(e, FiredEvent::Completion { processor: 0 });
        assert_eq!(q.len(), 1);
        assert_eq!(q.peak(), 2, "peak is a high-water mark");
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_rejected() {
        let mut q = core3();
        q.schedule_completion(0, f64::NAN);
    }

    #[test]
    fn sub_sources_roundtrip_through_the_kind_table() {
        let q = EventCore::new(4, 3, &[2, 5, 1, 3]);
        for (task, len) in [(0usize, 2usize), (1, 5), (2, 1), (3, 3)] {
            for index in 1..len {
                let s = q.sub_source(task, index);
                match q.kind[s as usize] {
                    SourceKind::Sub { task: t, index: i } => {
                        assert_eq!((t as usize, i as usize), (task, index));
                    }
                    other => panic!("source {s} should be a subtask, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn added_task_gets_fresh_sources_and_pops_in_order() {
        let mut q = core3();
        q.schedule_task_release(0, 5.0);
        q.schedule_completion(1, 2.0);
        q.push_subtask(0, 1, 3, 4.0);
        // Admit a 3-subtask task at runtime; existing events are untouched.
        let t = q.add_task(3);
        assert_eq!(t, 3);
        q.schedule_task_release(t, 1.0);
        q.push_subtask(t, 1, 0, 3.0);
        q.push_subtask(t, 2, 0, 6.0);
        let popped: Vec<(f64, FiredEvent)> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            popped,
            vec![
                (1.0, FiredEvent::TaskRelease { task: 3 }),
                (2.0, FiredEvent::Completion { processor: 1 }),
                (
                    3.0,
                    FiredEvent::SubtaskRelease {
                        task: 3,
                        index: 1,
                        instance: 0
                    }
                ),
                (
                    4.0,
                    FiredEvent::SubtaskRelease {
                        task: 0,
                        index: 1,
                        instance: 3
                    }
                ),
                (5.0, FiredEvent::TaskRelease { task: 0 }),
                (
                    6.0,
                    FiredEvent::SubtaskRelease {
                        task: 3,
                        index: 2,
                        instance: 0
                    }
                ),
            ]
        );
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn added_single_subtask_task_works() {
        let mut q = EventCore::new(1, 1, &[1]);
        let t = q.add_task(1);
        q.schedule_task_release(t, 2.0);
        q.schedule_task_release(0, 1.0);
        q.schedule_completion(0, 3.0);
        assert_eq!(q.pop().unwrap().1, FiredEvent::TaskRelease { task: 0 });
        assert_eq!(q.pop().unwrap().1, FiredEvent::TaskRelease { task: 1 });
        assert_eq!(q.pop().unwrap().1, FiredEvent::Completion { processor: 0 });
    }

    #[test]
    fn randomish_schedule_pops_sorted() {
        // Deterministic pseudo-random churn over every source kind; the
        // popped sequence must be sorted by (time, seq).
        let mut q = EventCore::new(5, 3, &[2, 3, 1, 2, 4]);
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        for round in 0..200 {
            let t = rnd() * 100.0;
            match round % 4 {
                0 => q.schedule_task_release(round % 5, t),
                1 => q.schedule_completion(round % 3, t),
                2 => {
                    let task = [0usize, 1, 3, 4][round % 4];
                    let index = 1 + round
                        % (match task {
                            1 => 2,
                            4 => 3,
                            _ => 1,
                        });
                    q.push_subtask(task, index, round as u64, t);
                }
                _ => q.cancel_completion(round % 3),
            }
        }
        let mut last = f64::NEG_INFINITY;
        let mut n = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last, "out of order: {t} after {last}");
            last = t;
            n += 1;
        }
        assert!(n > 50);
        assert_eq!(q.len(), 0);
    }
}
