//! Discrete-event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Kinds of events processed by the simulation engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum EventKind {
    /// Periodic release of a task's head subtask.
    ///
    /// Carries a version so rate changes can invalidate stale releases.
    TaskRelease { task: usize, version: u64 },
    /// Release-guarded release of a successor subtask.
    SubtaskRelease {
        task: usize,
        index: usize,
        instance: u64,
    },
    /// Tentative completion of the job currently running on a processor.
    ///
    /// Carries a version; any change to the processor's ready queue bumps
    /// the version, invalidating in-flight completions.
    Completion { processor: usize, version: u64 },
}

/// An event with a total order: by time, then by insertion sequence
/// (guaranteeing deterministic FIFO processing of simultaneous events).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Event {
    pub time: f64,
    pub seq: u64,
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Earliest-first event queue with deterministic tie-breaking.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `kind` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN.
    pub fn push(&mut self, time: f64, kind: EventKind) {
        assert!(!time.is_nan(), "event time must not be NaN");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, kind });
    }

    /// Time of the next event, if any.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Number of pending events.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(
            5.0,
            EventKind::TaskRelease {
                task: 0,
                version: 0,
            },
        );
        q.push(
            1.0,
            EventKind::TaskRelease {
                task: 1,
                version: 0,
            },
        );
        q.push(
            3.0,
            EventKind::TaskRelease {
                task: 2,
                version: 0,
            },
        );
        let order: Vec<f64> = std::iter::from_fn(|| q.pop()).map(|e| e.time).collect();
        assert_eq!(order, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        for task in 0..5 {
            q.push(2.0, EventKind::TaskRelease { task, version: 0 });
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::TaskRelease { task, .. } => task,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(
            7.0,
            EventKind::Completion {
                processor: 0,
                version: 1,
            },
        );
        assert_eq!(q.peek_time(), Some(7.0));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().time, 7.0);
        assert!(q.pop().is_none());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_rejected() {
        let mut q = EventQueue::new();
        q.push(
            f64::NAN,
            EventKind::Completion {
                processor: 0,
                version: 0,
            },
        );
    }
}
