//! Indexed, per-source event core — the tombstone-free replacement for the
//! global `BinaryHeap` event queue.
//!
//! The engine's event set has fixed structure: each task has exactly one
//! live "next head release", each processor exactly one live tentative
//! completion, and each subtask a short list of release-guarded successor
//! instances.  Instead of pushing a fresh heap entry on every reschedule
//! and leaving the stale one to rot until pop (the version-tombstone
//! pattern), every *event source* owns one slot in an indexed binary
//! min-heap with a position table: rescheduling is a decrease/increase-key
//! sift, cancellation is a removal, and `pop` never discards anything.
//! Memory is `O(m + n + Σ subtasks)` and the steady state allocates
//! nothing.
//!
//! Determinism is inherited from the old queue: every (re)schedule stamps
//! a fresh monotone sequence number, and events are ordered by
//! `(time, seq)` — so simultaneous events fire in exactly the order the
//! tombstone engine fired them (live entries were always the most recently
//! pushed for their source there, too).

/// An event popped from the [`EventCore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FiredEvent {
    /// Periodic release of a task's head subtask.
    TaskRelease { task: usize },
    /// Release-guarded release of a successor subtask instance.
    SubtaskRelease {
        task: usize,
        index: usize,
        instance: u64,
    },
    /// Tentative completion of the job running on a processor.
    Completion { processor: usize },
}

/// A pending successor-subtask release: `(time, seq, instance)`.
///
/// Entries of one subtask source are kept sorted by `(time, seq)`.  They
/// are *not* a FIFO: a guard-deferred instance (future release time) can
/// coexist with a later-arriving instance whose release time is earlier.
#[derive(Debug, Clone, Copy)]
struct Pending {
    time: f64,
    seq: u64,
    instance: u64,
}

/// Sentinel for "source not in the heap".
const ABSENT: u32 = u32::MAX;

/// Heap branching factor.  `(time, seq)` is a strict total order (`seq`
/// is unique), so the pop sequence is independent of the heap's shape —
/// arity is purely a constant-factor knob.  Four halves the sift depth
/// relative to a binary heap and keeps each node's children in adjacent
/// cache lines.
const ARITY: usize = 4;

/// A heap slot: the key is stored inline so sift comparisons touch only
/// the heap array itself (indirecting through per-source key arrays costs
/// two extra cache misses per comparison, which dominates at scale).
#[derive(Debug, Clone, Copy)]
struct Slot {
    time: f64,
    seq: u64,
    src: u32,
}

impl Slot {
    #[inline]
    fn less(&self, other: &Slot) -> bool {
        match self.time.total_cmp(&other.time) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => self.seq < other.seq,
        }
    }
}

/// Indexed earliest-first event queue with one slot per event source.
///
/// Source ids are laid out as `[tasks | processors | subtasks]`:
/// task `t` → `t`, processor `p` → `m + p`, successor subtask `(t, i)`
/// (with `i ≥ 1`) → `sub_base[t] + (i − 1)`.
#[derive(Debug)]
pub(crate) struct EventCore {
    num_tasks: usize,
    /// First subtask-source id of each task (successors only).
    sub_base: Vec<u32>,
    /// Heap of sources with inline keys, ordered by `(time, seq)`.
    heap: Vec<Slot>,
    /// Position of each source in `heap`, or [`ABSENT`].
    pos: Vec<u32>,
    /// Per-subtask-source pending instances, sorted by `(time, seq)`;
    /// the front entry is the source's heap key.
    pending: Vec<Vec<Pending>>,
    next_seq: u64,
    /// Live events (heap singletons + queued pending entries).
    live: usize,
    /// Largest live-event count ever observed.
    peak: usize,
    /// In-place reschedules of an already-queued source (each of these
    /// would have been a tombstone in the old queue).
    reschedules: u64,
    /// `(time, seq)` of the last popped event, for the monotonicity
    /// invariant (debug builds only).
    #[cfg(debug_assertions)]
    last_popped: (f64, u64),
}

impl EventCore {
    /// Creates a core for `num_tasks` tasks on `num_procs` processors,
    /// where task `t` has `subtask_counts[t]` subtasks (so
    /// `subtask_counts[t] − 1` successor sources).
    pub fn new(num_tasks: usize, num_procs: usize, subtask_counts: &[usize]) -> Self {
        assert_eq!(subtask_counts.len(), num_tasks);
        let mut sub_base = Vec::with_capacity(num_tasks);
        let mut next = (num_tasks + num_procs) as u32;
        for &len in subtask_counts {
            sub_base.push(next);
            next += len.saturating_sub(1) as u32;
        }
        let total = next as usize;
        EventCore {
            num_tasks,
            sub_base,
            heap: Vec::with_capacity(total),
            pos: vec![ABSENT; total],
            pending: vec![Vec::new(); total - num_tasks - num_procs],
            next_seq: 0,
            live: 0,
            peak: 0,
            reschedules: 0,
            #[cfg(debug_assertions)]
            last_popped: (f64::NEG_INFINITY, 0),
        }
    }

    /// Number of live events.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Largest number of simultaneously live events so far.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// In-place reschedules performed so far (the old queue would have
    /// left one tombstone per reschedule).
    pub fn reschedules(&self) -> u64 {
        self.reschedules
    }

    /// Schedules (or reschedules) the next head release of `task`.
    pub fn schedule_task_release(&mut self, task: usize, time: f64) {
        self.upsert(task as u32, time);
    }

    /// Cancels the pending head release of `task`, if any.
    pub fn cancel_task_release(&mut self, task: usize) {
        self.cancel(task as u32);
    }

    /// Schedules (or reschedules) the tentative completion of the job
    /// running on processor `p`.
    pub fn schedule_completion(&mut self, p: usize, time: f64) {
        self.upsert(self.proc_source(p), time);
    }

    /// Cancels the pending completion of processor `p`, if any.
    pub fn cancel_completion(&mut self, p: usize) {
        self.cancel(self.proc_source(p));
    }

    /// Queues a successor-subtask release (`index ≥ 1`) of `instance` at
    /// `time`.
    pub fn push_subtask(&mut self, task: usize, index: usize, instance: u64, time: f64) {
        assert!(!time.is_nan(), "event time must not be NaN");
        let s = self.sub_source(task, index);
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = Pending {
            time,
            seq,
            instance,
        };
        let idx = self.pending_idx(s as usize);
        let list = &mut self.pending[idx];
        // Sorted insert by (time, seq); lists are a handful of entries at
        // worst (bounded by the release-guard backlog of one subtask).
        let at = list.partition_point(|e| (e.time, e.seq) < (entry.time, entry.seq));
        list.insert(at, entry);
        self.live += 1;
        self.peak = self.peak.max(self.live);
        if at == 0 {
            // New front: the source's heap key changes (counted as a plain
            // schedule, not a reschedule — nothing was invalidated).
            let front = (time, seq);
            self.set_key(s, front.0, front.1);
        }
    }

    /// Time of the earliest event, if any.
    #[cfg(test)]
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.first().map(|slot| slot.time)
    }

    /// Pops the earliest event if it fires no later than `t_end`
    /// (fused peek + pop for the engine's main loop).
    pub fn pop_before(&mut self, t_end: f64) -> Option<(f64, FiredEvent)> {
        if self.heap.first()?.time > t_end {
            return None;
        }
        self.pop()
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(f64, FiredEvent)> {
        let &slot = self.heap.first()?;
        let s = slot.src as usize;
        let at = (slot.time, slot.seq);
        #[cfg(debug_assertions)]
        {
            let (lt, lq) = self.last_popped;
            debug_assert!(
                at.0 > lt || (at.0 == lt && at.1 > lq),
                "event core must pop in (time, seq) order: {at:?} after {:?}",
                (lt, lq)
            );
            self.last_popped = at;
        }
        self.live -= 1;
        let fired = if s < self.num_tasks {
            self.remove_root();
            FiredEvent::TaskRelease { task: s }
        } else if s < self.sub0() + self.num_tasks {
            self.remove_root();
            FiredEvent::Completion {
                processor: s - self.num_tasks,
            }
        } else {
            let (task, index) = self.sub_owner(s as u32);
            let idx = self.pending_idx(s);
            let entry = self.pending[idx].remove(0);
            debug_assert_eq!((entry.time, entry.seq), at);
            match self.pending[idx].first().map(|e| (e.time, e.seq)) {
                Some((t, q)) => self.set_key(s as u32, t, q),
                None => self.remove_root(),
            }
            FiredEvent::SubtaskRelease {
                task,
                index,
                instance: entry.instance,
            }
        };
        Some((at.0, fired))
    }

    // ---- source-id arithmetic ----

    fn sub0(&self) -> usize {
        // Processor sources span [num_tasks, num_tasks + num_procs).
        self.sub_base.first().map_or(0, |&b| b as usize) - self.num_tasks
    }

    /// Index of a subtask source's pending list.
    fn pending_idx(&self, s: usize) -> usize {
        s - self.num_tasks - self.sub0()
    }

    fn proc_source(&self, p: usize) -> u32 {
        debug_assert!(p < self.sub0());
        (self.num_tasks + p) as u32
    }

    fn sub_source(&self, task: usize, index: usize) -> u32 {
        debug_assert!(index >= 1, "index 0 is the head release source");
        self.sub_base[task] + (index as u32 - 1)
    }

    /// Maps a subtask source id back to `(task, index)`.
    fn sub_owner(&self, s: u32) -> (usize, usize) {
        let task = self.sub_base.partition_point(|&b| b <= s) - 1;
        (task, (s - self.sub_base[task]) as usize + 1)
    }

    // ---- indexed-heap primitives ----

    /// Inserts or reschedules a single-slot source (task or processor)
    /// with a fresh sequence number.
    fn upsert(&mut self, s: u32, time: f64) {
        assert!(!time.is_nan(), "event time must not be NaN");
        if self.pos[s as usize] == ABSENT {
            self.live += 1;
            self.peak = self.peak.max(self.live);
        } else {
            self.reschedules += 1;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.set_key(s, time, seq);
    }

    /// Removes a single-slot source if present.
    fn cancel(&mut self, s: u32) {
        if self.pos[s as usize] != ABSENT {
            self.remove(s);
            self.live -= 1;
        }
    }

    /// Sets a source's key and restores the heap order (inserting the
    /// source if absent).
    fn set_key(&mut self, s: u32, time: f64, seq: u64) {
        let slot = Slot { time, seq, src: s };
        let i = self.pos[s as usize];
        if i == ABSENT {
            self.heap.push(slot);
            self.sift_up(self.heap.len() - 1, slot);
        } else {
            let i = i as usize;
            self.heap[i] = slot;
            // The key may have moved either way: try both directions (one
            // is a no-op).
            self.sift_up(i, slot);
            self.sift_down(self.pos[s as usize] as usize);
        }
    }

    /// Removes the heap root (cheaper than the general `remove`).
    fn remove_root(&mut self) {
        let removed = self.heap.swap_remove(0);
        self.pos[removed.src as usize] = ABSENT;
        if let Some(moved) = self.heap.first() {
            self.pos[moved.src as usize] = 0;
            self.sift_down(0);
        }
    }

    /// Removes an arbitrary source from the heap.
    fn remove(&mut self, s: u32) {
        let i = self.pos[s as usize] as usize;
        self.pos[s as usize] = ABSENT;
        let last = self.heap.len() - 1;
        self.heap.swap_remove(i);
        if i <= last && i < self.heap.len() {
            let moved = self.heap[i];
            self.pos[moved.src as usize] = i as u32;
            self.sift_up(i, moved);
            self.sift_down(self.pos[moved.src as usize] as usize);
        }
    }

    /// Moves the slot at `i` (already equal to `slot`) toward the root
    /// until its parent is no greater.  Hole-based: ancestors shift down
    /// and positions are written once per visited level.
    fn sift_up(&mut self, mut i: usize, slot: Slot) {
        while i > 0 {
            let parent = (i - 1) / ARITY;
            let p = self.heap[parent];
            if slot.less(&p) {
                self.heap[i] = p;
                self.pos[p.src as usize] = i as u32;
                i = parent;
            } else {
                break;
            }
        }
        self.heap[i] = slot;
        self.pos[slot.src as usize] = i as u32;
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        let slot = self.heap[i];
        loop {
            let first = ARITY * i + 1;
            if first >= n {
                break;
            }
            let last = (first + ARITY).min(n);
            let mut best = first;
            let mut b = self.heap[first];
            for c in first + 1..last {
                if self.heap[c].less(&b) {
                    best = c;
                    b = self.heap[c];
                }
            }
            if b.less(&slot) {
                self.heap[i] = b;
                self.pos[b.src as usize] = i as u32;
                i = best;
            } else {
                break;
            }
        }
        self.heap[i] = slot;
        self.pos[slot.src as usize] = i as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core3() -> EventCore {
        // 3 tasks on 2 processors; task 0 has 3 subtasks, task 1 has 1,
        // task 2 has 2 → successor sources: t0 ×2, t2 ×1.
        EventCore::new(3, 2, &[3, 1, 2])
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = core3();
        q.schedule_task_release(0, 5.0);
        q.schedule_task_release(1, 1.0);
        q.schedule_task_release(2, 3.0);
        let mut order = Vec::new();
        while let Some((t, _)) = q.pop() {
            order.push(t);
        }
        assert_eq!(order, vec![1.0, 3.0, 5.0]);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn simultaneous_events_pop_in_schedule_order() {
        let mut q = core3();
        for task in 0..3 {
            q.schedule_task_release(task, 2.0);
        }
        q.schedule_completion(1, 2.0);
        q.push_subtask(0, 1, 7, 2.0);
        let mut order = Vec::new();
        while let Some((_, e)) = q.pop() {
            order.push(e);
        }
        assert_eq!(
            order,
            vec![
                FiredEvent::TaskRelease { task: 0 },
                FiredEvent::TaskRelease { task: 1 },
                FiredEvent::TaskRelease { task: 2 },
                FiredEvent::Completion { processor: 1 },
                FiredEvent::SubtaskRelease {
                    task: 0,
                    index: 1,
                    instance: 7
                },
            ]
        );
    }

    #[test]
    fn reschedule_updates_in_place() {
        let mut q = core3();
        q.schedule_task_release(0, 10.0);
        q.schedule_task_release(1, 5.0);
        assert_eq!(q.len(), 2);
        // Move task 0 ahead of task 1: same source, no tombstone.
        q.schedule_task_release(0, 1.0);
        assert_eq!(q.len(), 2, "reschedule must not grow the queue");
        assert_eq!(q.reschedules(), 1);
        assert_eq!(q.pop().unwrap().1, FiredEvent::TaskRelease { task: 0 });
        assert_eq!(q.pop().unwrap().1, FiredEvent::TaskRelease { task: 1 });
    }

    #[test]
    fn reschedule_at_same_time_moves_behind_ties() {
        // The old queue invalidated + re-pushed, so a rescheduled event
        // fell behind other events at the same time.  The indexed core
        // must reproduce that order via the fresh sequence number.
        let mut q = core3();
        q.schedule_task_release(0, 2.0);
        q.schedule_task_release(1, 2.0);
        q.schedule_task_release(0, 2.0); // reschedule, same time
        assert_eq!(q.pop().unwrap().1, FiredEvent::TaskRelease { task: 1 });
        assert_eq!(q.pop().unwrap().1, FiredEvent::TaskRelease { task: 0 });
    }

    #[test]
    fn cancel_removes_without_tombstones() {
        let mut q = core3();
        q.schedule_task_release(0, 1.0);
        q.schedule_completion(0, 2.0);
        q.cancel_task_release(0);
        q.cancel_task_release(0); // idempotent
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, FiredEvent::Completion { processor: 0 });
        assert!(q.pop().is_none());
        q.cancel_completion(1); // absent: no-op
    }

    #[test]
    fn subtask_entries_sort_by_time_not_arrival() {
        let mut q = core3();
        // A guard-deferred instance at t=10 arrives before a completion-
        // driven instance at t=4: the earlier time must pop first.
        q.push_subtask(0, 1, 0, 10.0);
        q.push_subtask(0, 1, 1, 4.0);
        q.push_subtask(0, 2, 2, 6.0);
        let popped: Vec<(f64, FiredEvent)> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            popped,
            vec![
                (
                    4.0,
                    FiredEvent::SubtaskRelease {
                        task: 0,
                        index: 1,
                        instance: 1
                    }
                ),
                (
                    6.0,
                    FiredEvent::SubtaskRelease {
                        task: 0,
                        index: 2,
                        instance: 2
                    }
                ),
                (
                    10.0,
                    FiredEvent::SubtaskRelease {
                        task: 0,
                        index: 1,
                        instance: 0
                    }
                ),
            ]
        );
    }

    #[test]
    fn peek_matches_pop_and_peak_tracks_high_water() {
        let mut q = core3();
        assert_eq!(q.peek_time(), None);
        q.schedule_completion(0, 7.0);
        q.schedule_task_release(2, 9.0);
        assert_eq!(q.peek_time(), Some(7.0));
        assert_eq!(q.peak(), 2);
        let (t, e) = q.pop().unwrap();
        assert_eq!(t, 7.0);
        assert_eq!(e, FiredEvent::Completion { processor: 0 });
        assert_eq!(q.len(), 1);
        assert_eq!(q.peak(), 2, "peak is a high-water mark");
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_rejected() {
        let mut q = core3();
        q.schedule_completion(0, f64::NAN);
    }

    #[test]
    fn sub_owner_roundtrip() {
        let q = EventCore::new(4, 3, &[2, 5, 1, 3]);
        for (task, len) in [(0usize, 2usize), (1, 5), (2, 1), (3, 3)] {
            for index in 1..len {
                let s = q.sub_source(task, index);
                assert_eq!(q.sub_owner(s), (task, index));
            }
        }
    }

    #[test]
    fn randomish_schedule_pops_sorted() {
        // Deterministic pseudo-random churn over every source kind; the
        // popped sequence must be sorted by (time, seq).
        let mut q = EventCore::new(5, 3, &[2, 3, 1, 2, 4]);
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        for round in 0..200 {
            let t = rnd() * 100.0;
            match round % 4 {
                0 => q.schedule_task_release(round % 5, t),
                1 => q.schedule_completion(round % 3, t),
                2 => {
                    let task = [0usize, 1, 3, 4][round % 4];
                    let index = 1 + round
                        % (match task {
                            1 => 2,
                            4 => 3,
                            _ => 1,
                        });
                    q.push_subtask(task, index, round as u64, t);
                }
                _ => q.cancel_completion(round % 3),
            }
        }
        let mut last = f64::NEG_INFINITY;
        let mut n = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last, "out of order: {t} after {last}");
            last = t;
            n += 1;
        }
        assert!(n > 50);
        assert_eq!(q.len(), 0);
    }
}
