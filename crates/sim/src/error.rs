//! Validation errors for simulator-side configuration.

use std::error::Error;
use std::fmt;

/// A [`FaultPlan`](crate::FaultPlan) (or other simulator-side
/// configuration) failed validation.
///
/// Fault plans are built fluently without panicking; the loop builder
/// validates the assembled plan against the deployed processor count via
/// [`FaultPlan::validate`](crate::FaultPlan::validate) and surfaces these
/// errors instead of crashing mid-experiment.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A fault window names a processor outside the deployed set.
    ProcessorOutOfRange {
        /// Which kind of fault ("crash", "burst", "sensor", "partition").
        fault: &'static str,
        /// The offending processor id.
        processor: usize,
        /// Number of processors actually deployed.
        num_processors: usize,
    },
    /// A fault window is empty or inverted (`from ≥ until`).
    EmptyWindow {
        /// Which kind of fault the window belongs to.
        fault: &'static str,
        /// The processor the window targets.
        processor: usize,
        /// First period of the window.
        from: usize,
        /// One past the last period of the window.
        until: usize,
    },
    /// Two windows of the same fault kind overlap on one processor.
    ///
    /// Overlap is ambiguous for crashes, sensor faults and partitions
    /// (which window's semantics win?).  Execution-time bursts are exempt:
    /// overlapping bursts compound multiplicatively by design.
    OverlappingWindows {
        /// Which kind of fault overlaps.
        fault: &'static str,
        /// The processor both windows target.
        processor: usize,
        /// The `[from, until)` bounds of the earlier window.
        first: (usize, usize),
        /// The `[from, until)` bounds of the later, overlapping window.
        second: (usize, usize),
    },
    /// A burst execution-time factor is not positive and finite.
    InvalidFactor {
        /// The offending factor.
        value: f64,
    },
    /// A probability parameter is outside its documented range.
    InvalidProbability {
        /// Which parameter ("actuation loss", "crash", "recovery").
        what: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ProcessorOutOfRange {
                fault,
                processor,
                num_processors,
            } => write!(
                f,
                "{fault} window targets processor {processor}, but only \
                 {num_processors} processors are deployed"
            ),
            SimError::EmptyWindow {
                fault,
                processor,
                from,
                until,
            } => write!(
                f,
                "{fault} window [{from}, {until}) on processor {processor} \
                 is empty or inverted"
            ),
            SimError::OverlappingWindows {
                fault,
                processor,
                first,
                second,
            } => write!(
                f,
                "{fault} windows [{}, {}) and [{}, {}) overlap on processor \
                 {processor}",
                first.0, first.1, second.0, second.1
            ),
            SimError::InvalidFactor { value } => {
                write!(f, "burst factor must be positive and finite, got {value}")
            }
            SimError::InvalidProbability { what, value } => {
                write!(f, "{what} probability out of range: {value}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_offending_values() {
        let e = SimError::ProcessorOutOfRange {
            fault: "crash",
            processor: 7,
            num_processors: 3,
        };
        assert!(e.to_string().contains("processor 7"));
        assert!(e.to_string().contains("3 processors"));
        let e = SimError::EmptyWindow {
            fault: "sensor",
            processor: 0,
            from: 10,
            until: 10,
        };
        assert!(e.to_string().contains("[10, 10)"));
        let e = SimError::OverlappingWindows {
            fault: "partition",
            processor: 1,
            first: (0, 5),
            second: (3, 8),
        };
        assert!(e.to_string().contains("overlap"));
        let e = SimError::InvalidFactor { value: -1.0 };
        assert!(e.to_string().contains("-1"));
        let e = SimError::InvalidProbability {
            what: "actuation loss",
            value: 1.5,
        };
        assert!(e.to_string().contains("actuation loss"));
        assert!(Error::source(&e).is_none());
    }
}
