//! Canonical workloads: the paper's SIMPLE and MEDIUM configurations plus a
//! parameterized random-workload generator.
//!
//! # SIMPLE (paper Table 1)
//!
//! Three tasks on two processors, reproduced exactly as printed:
//!
//! | Tij | Proc | cij | 1/Rmax | 1/Rmin | 1/r(0) |
//! |-----|------|-----|--------|--------|--------|
//! | T11 | P1   | 35  | 35     | 700    | 60     |
//! | T21 | P1   | 35  | 35     | 700    | 90     |
//! | T22 | P2   | 35  | 35     | 700    | 90     |
//! | T31 | P2   | 45  | 45     | 900    | 100    |
//!
//! # MEDIUM (paper §7.1)
//!
//! The paper describes MEDIUM only by its invariants — 12 tasks with 25
//! subtasks on 4 processors, 8 end-to-end tasks plus 4 local tasks, and a
//! P1 set point of 0.729 (seven subtasks on P1, since
//! `7·(2^{1/7}−1) ≈ 0.7286`).  The exact parameter table is not printed, so
//! [`medium`] synthesizes a workload with *exactly* those invariants: the
//! chain topology is fixed (below) and execution-time estimates are derived
//! from a seeded deterministic generator such that the nominal rates
//! `r_nom` satisfy `F·r_nom = B` — which also makes the OPEN baseline exact
//! at `etf = 1`, as in the paper.

use eucon_math::Vector;

use crate::{liu_layland_bound, ProcessorId, Task, TaskError, TaskSet};

/// Deterministic SplitMix64 generator.
///
/// Used instead of an external RNG so the canonical MEDIUM workload can
/// never drift with dependency upgrades.
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`.
    fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + u * (hi - lo)
    }

    /// Uniform integer in `[0, n)`.
    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Builds the SIMPLE configuration from Table 1 of the paper.
///
/// # Example
///
/// ```
/// let simple = eucon_tasks::workloads::simple();
/// assert_eq!(simple.num_processors(), 2);
/// assert_eq!(simple.num_tasks(), 3);
/// assert_eq!(simple.num_subtasks(), 4);
/// ```
pub fn simple() -> TaskSet {
    try_simple().expect("SIMPLE workload is statically valid")
}

fn try_simple() -> Result<TaskSet, TaskError> {
    let mut set = TaskSet::new(2);
    // T1 = {T11 on P1}, c = 35, periods in [35, 700], initial 60.
    set.add_task(
        Task::builder(1.0 / 700.0, 1.0 / 35.0, 1.0 / 60.0)
            .subtask(ProcessorId(0), 35.0)
            .build()?,
    )?;
    // T2 = {T21 on P1, T22 on P2}, c = 35 each, periods [35, 700], initial 90.
    set.add_task(
        Task::builder(1.0 / 700.0, 1.0 / 35.0, 1.0 / 90.0)
            .subtask(ProcessorId(0), 35.0)
            .subtask(ProcessorId(1), 35.0)
            .build()?,
    )?;
    // T3 = {T31 on P2}, c = 45, periods [45, 900], initial 100.
    set.add_task(
        Task::builder(1.0 / 900.0, 1.0 / 45.0, 1.0 / 100.0)
            .subtask(ProcessorId(1), 45.0)
            .build()?,
    )?;
    Ok(set)
}

/// A SIMPLE variant with the per-task maximum rate multiplied by
/// `widen_factor`.
///
/// Used as a sensitivity configuration for the Figure 4 sweep: with Table 1
/// as printed, rates saturate at `Rmax` for execution-time factors below
/// ≈ 0.42, so the utilization cannot reach the set point there.  Widening
/// the rate range demonstrates set-point tracking across the whole sweep.
///
/// # Panics
///
/// Panics if `widen_factor < 1.0`.
pub fn simple_widened(widen_factor: f64) -> TaskSet {
    assert!(widen_factor >= 1.0, "widen_factor must be at least 1");
    let base = simple();
    let mut set = TaskSet::new(base.num_processors());
    for task in base.tasks() {
        let mut b = Task::builder(
            task.rate_min(),
            task.rate_max() * widen_factor,
            task.initial_rate(),
        );
        for s in task.subtasks() {
            b = b.subtask(s.processor, s.estimated_time);
        }
        set.add_task(b.build().expect("widened task remains valid"))
            .expect("processors unchanged");
    }
    set
}

/// Chain topology of the MEDIUM workload (processor indices, 0-based).
///
/// Tasks 1–8 are end-to-end; tasks 9–12 are local.  Subtask counts per
/// processor are P1 = 7, P2 = 6, P3 = 6, P4 = 6 (25 total), matching every
/// invariant the paper states for MEDIUM.
const MEDIUM_CHAINS: [&[usize]; 12] = [
    &[0, 1, 2, 3], // T1
    &[1, 2],       // T2
    &[2, 3, 0],    // T3
    &[3, 1],       // T4
    &[0, 1, 2],    // T5
    &[1, 0],       // T6
    &[2, 3],       // T7
    &[3, 0, 1],    // T8
    &[0],          // T9  (local)
    &[0],          // T10 (local)
    &[2],          // T11 (local)
    &[3],          // T12 (local)
];

/// Nominal periods (1/r_nom) of the MEDIUM tasks, in simulator time units.
const MEDIUM_PERIODS: [f64; 12] = [
    200.0, 180.0, 240.0, 160.0, 220.0, 140.0, 280.0, 260.0, 120.0, 320.0, 100.0, 300.0,
];

/// Factor by which a MEDIUM task's rate may exceed its nominal rate.
const MEDIUM_RATE_UP: f64 = 12.0;
/// Factor by which a MEDIUM task's rate may fall below its nominal rate.
const MEDIUM_RATE_DOWN: f64 = 10.0;

/// Builds the MEDIUM configuration (paper §7.1): 12 tasks, 25 subtasks,
/// 4 processors, 8 end-to-end + 4 local tasks.
///
/// Construction guarantees `F·r_nom = B` at the nominal rates, where `B`
/// follows the paper's eq. 13, so the OPEN baseline is exact at `etf = 1`
/// and the utilization-control problem is feasible for every
/// execution-time factor in `[1/12, 10]`.
///
/// # Example
///
/// ```
/// use eucon_tasks::{rms_set_points, workloads};
///
/// let medium = workloads::medium();
/// assert_eq!(medium.num_tasks(), 12);
/// assert_eq!(medium.num_subtasks(), 25);
/// // Paper: the set point on P1 is 0.729.
/// let b = rms_set_points(&medium);
/// assert!((b[0] - 0.729).abs() < 1e-3);
/// ```
pub fn medium() -> TaskSet {
    try_medium().expect("MEDIUM workload is statically valid")
}

fn try_medium() -> Result<TaskSet, TaskError> {
    let num_processors = 4;
    let mut rng = SplitMix64::new(0x0000_EC05_2004_D1C5);

    // Subtask share weights per processor; normalized so the estimated
    // utilizations at nominal rates hit the RMS set points exactly.
    let mut counts = [0usize; 4];
    for chain in MEDIUM_CHAINS {
        for &p in chain {
            counts[p] += 1;
        }
    }
    let set_points: Vec<f64> = counts.iter().map(|&m| liu_layland_bound(m)).collect();

    // Draw raw weights in subtask order (task-major), then normalize per
    // processor.
    let mut raw: Vec<Vec<f64>> = Vec::with_capacity(12);
    let mut totals = [0.0f64; 4];
    for chain in MEDIUM_CHAINS {
        let ws: Vec<f64> = chain.iter().map(|_| rng.uniform(0.5, 1.5)).collect();
        for (&p, &w) in chain.iter().zip(ws.iter()) {
            totals[p] += w;
        }
        raw.push(ws);
    }

    let mut set = TaskSet::new(num_processors);
    for (t, chain) in MEDIUM_CHAINS.iter().enumerate() {
        let r_nom = 1.0 / MEDIUM_PERIODS[t];
        let mut b = Task::builder(r_nom / MEDIUM_RATE_DOWN, r_nom * MEDIUM_RATE_UP, r_nom);
        for (j, &p) in chain.iter().enumerate() {
            // Share of processor p's set point assigned to this subtask.
            let share = raw[t][j] / totals[p] * set_points[p];
            let c = share / r_nom;
            b = b.subtask(ProcessorId(p), c);
        }
        set.add_task(b.build()?)?;
    }
    Ok(set)
}

/// Nominal rates of the MEDIUM workload (`r_nom`, the initial rates).
pub fn medium_nominal_rates() -> Vector {
    Vector::from_iter(MEDIUM_PERIODS.iter().map(|p| 1.0 / p))
}

/// Parameterized random end-to-end workload generator.
///
/// Generates task sets with the same feasibility guarantee as [`medium`]:
/// estimated execution times are derived from random per-processor shares
/// so that `F·r_nom = B` at the nominal rates.  Used by property tests and
/// the scaling benchmarks.
///
/// # Example
///
/// ```
/// use eucon_tasks::workloads::RandomWorkload;
///
/// let set = RandomWorkload::new(8, 24).seed(7).generate();
/// assert_eq!(set.num_processors(), 8);
/// assert_eq!(set.num_tasks(), 24);
/// ```
#[derive(Debug, Clone)]
pub struct RandomWorkload {
    num_processors: usize,
    num_tasks: usize,
    max_chain_len: usize,
    min_period: f64,
    max_period: f64,
    rate_up: f64,
    rate_down: f64,
    seed: u64,
    locality: Option<usize>,
}

impl RandomWorkload {
    /// Starts a generator for `num_tasks` tasks on `num_processors`
    /// processors.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn new(num_processors: usize, num_tasks: usize) -> Self {
        assert!(num_processors > 0, "need at least one processor");
        assert!(num_tasks > 0, "need at least one task");
        RandomWorkload {
            num_processors,
            num_tasks,
            max_chain_len: num_processors.min(4),
            min_period: 100.0,
            max_period: 400.0,
            rate_up: 8.0,
            rate_down: 8.0,
            seed: 0,
            locality: None,
        }
    }

    /// Sets the RNG seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the maximum subtask chain length (default `min(n, 4)`).
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn max_chain_len(mut self, len: usize) -> Self {
        assert!(len > 0, "chains must have at least one subtask");
        self.max_chain_len = len;
        self
    }

    /// Sets the nominal period range (default `[100, 400]`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or non-positive.
    pub fn period_range(mut self, min_period: f64, max_period: f64) -> Self {
        assert!(
            min_period > 0.0 && max_period >= min_period,
            "invalid period range"
        );
        self.min_period = min_period;
        self.max_period = max_period;
        self
    }

    /// Restricts chains to a processor neighborhood of radius `window`
    /// (default: unrestricted, the classic generator).
    ///
    /// In locality mode task `t` starts on processor
    /// `t · num_processors / num_tasks` (a monotone block assignment, so
    /// task index tracks physical position) and every chain step stays
    /// within `window` processors of the previous hop.  Tasks headed on
    /// nearby processors then couple only with near neighbors, which makes
    /// the allocation matrix — and with it every shard-local MPC Hessian —
    /// genuinely banded: the structure the banded Cholesky fast path and
    /// the shard planner's cut-minimizing merge are built for.  Cluster-
    /// scale platforms (racks, NUMA domains) have exactly this shape.
    ///
    /// Locality mode is a separate generator branch: the default
    /// (unrestricted) path consumes the RNG stream exactly as before, so
    /// existing seeds keep producing bit-identical workloads.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn locality(mut self, window: usize) -> Self {
        assert!(window > 0, "locality window must be at least 1");
        self.locality = Some(window);
        self
    }

    /// Sets how far rates may move above/below nominal (default 8× both
    /// ways).
    ///
    /// # Panics
    ///
    /// Panics if either factor is below 1.
    pub fn rate_span(mut self, up: f64, down: f64) -> Self {
        assert!(up >= 1.0 && down >= 1.0, "rate span factors must be >= 1");
        self.rate_up = up;
        self.rate_down = down;
        self
    }

    /// One candidate next hop from processor `p` — the whole machine by
    /// default, the clamped `±window` neighborhood in locality mode.  The
    /// default arm consumes exactly one `below(num_processors)` draw, the
    /// same stream the pre-locality generator used.
    fn next_hop(&self, rng: &mut SplitMix64, p: usize) -> usize {
        match self.locality {
            None => rng.below(self.num_processors),
            Some(w) => {
                let lo = p.saturating_sub(w);
                let hi = (p + w).min(self.num_processors - 1);
                lo + rng.below(hi - lo + 1)
            }
        }
    }

    /// Generates the task set.
    ///
    /// Every processor is guaranteed at least one subtask (so the
    /// allocation matrix has no zero rows and utilization control is
    /// meaningful on every processor).
    pub fn generate(&self) -> TaskSet {
        let mut rng = SplitMix64::new(self.seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));

        // Random chains: a walk that never repeats the previous processor.
        // In locality mode each step additionally stays within `window`
        // processors of the previous hop.
        let mut chains: Vec<Vec<usize>> = Vec::with_capacity(self.num_tasks);
        for t in 0..self.num_tasks {
            let len = 1 + rng.below(self.max_chain_len);
            let mut chain = Vec::with_capacity(len);
            let mut p = match self.locality {
                // Block assignment: monotone in `t`, covers every
                // processor when `num_tasks >= num_processors`.
                Some(_) => t * self.num_processors / self.num_tasks,
                // Seed coverage: the first `num_processors` tasks start
                // on distinct processors.
                None if t < self.num_processors => t,
                None => rng.below(self.num_processors),
            };
            chain.push(p);
            for _ in 1..len {
                if self.num_processors == 1 {
                    break;
                }
                let mut q = self.next_hop(&mut rng, p);
                while q == p {
                    q = self.next_hop(&mut rng, p);
                }
                chain.push(q);
                p = q;
            }
            chains.push(chain);
        }

        let mut counts = vec![0usize; self.num_processors];
        for chain in &chains {
            for &p in chain {
                counts[p] += 1;
            }
        }
        let set_points: Vec<f64> = counts.iter().map(|&m| liu_layland_bound(m)).collect();

        let periods: Vec<f64> = (0..self.num_tasks)
            .map(|_| rng.uniform(self.min_period, self.max_period))
            .collect();

        let mut raw: Vec<Vec<f64>> = Vec::with_capacity(self.num_tasks);
        let mut totals = vec![0.0f64; self.num_processors];
        for chain in &chains {
            let ws: Vec<f64> = chain.iter().map(|_| rng.uniform(0.5, 1.5)).collect();
            for (&p, &w) in chain.iter().zip(ws.iter()) {
                totals[p] += w;
            }
            raw.push(ws);
        }

        let mut set = TaskSet::new(self.num_processors);
        for (t, chain) in chains.iter().enumerate() {
            let r_nom = 1.0 / periods[t];
            let mut b = Task::builder(r_nom / self.rate_down, r_nom * self.rate_up, r_nom);
            for (j, &p) in chain.iter().enumerate() {
                let share = raw[t][j] / totals[p] * set_points[p];
                b = b.subtask(ProcessorId(p), share / r_nom);
            }
            set.add_task(b.build().expect("generated task is valid"))
                .expect("generated processors are in range");
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rms_set_points;

    #[test]
    fn simple_matches_table_1() {
        let s = simple();
        assert_eq!(s.num_processors(), 2);
        assert_eq!(s.num_tasks(), 3);
        assert_eq!(s.num_subtasks(), 4);
        assert_eq!(s.num_subtasks_on(ProcessorId(0)), 2);
        assert_eq!(s.num_subtasks_on(ProcessorId(1)), 2);

        let t2 = s.task(crate::TaskId(1));
        assert_eq!(t2.len(), 2);
        assert_eq!(t2.subtasks()[0].estimated_time, 35.0);
        assert!((t2.rate_max() - 1.0 / 35.0).abs() < 1e-12);
        assert!((t2.rate_min() - 1.0 / 700.0).abs() < 1e-12);
        assert!((t2.initial_rate() - 1.0 / 90.0).abs() < 1e-12);

        let t3 = s.task(crate::TaskId(2));
        assert_eq!(t3.subtasks()[0].estimated_time, 45.0);
        assert!((t3.rate_min() - 1.0 / 900.0).abs() < 1e-12);
    }

    #[test]
    fn simple_allocation_matrix_matches_section_5_example() {
        let f = simple().allocation_matrix();
        // F = [[c11, c21, 0], [0, c22, c31]].
        assert_eq!(f[(0, 0)], 35.0);
        assert_eq!(f[(0, 1)], 35.0);
        assert_eq!(f[(0, 2)], 0.0);
        assert_eq!(f[(1, 0)], 0.0);
        assert_eq!(f[(1, 1)], 35.0);
        assert_eq!(f[(1, 2)], 45.0);
    }

    #[test]
    fn simple_set_points_are_0_828() {
        let b = rms_set_points(&simple());
        assert!((b[0] - 0.8284).abs() < 1e-4);
        assert!((b[1] - 0.8284).abs() < 1e-4);
    }

    #[test]
    fn widened_simple_scales_rmax_only() {
        let base = simple();
        let wide = simple_widened(3.0);
        for (a, b) in base.tasks().iter().zip(wide.tasks().iter()) {
            assert_eq!(a.rate_min(), b.rate_min());
            assert!((b.rate_max() - 3.0 * a.rate_max()).abs() < 1e-12);
            assert_eq!(a.initial_rate(), b.initial_rate());
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn widen_factor_below_one_panics() {
        let _ = simple_widened(0.5);
    }

    #[test]
    fn medium_invariants_match_paper() {
        let m = medium();
        assert_eq!(m.num_processors(), 4);
        assert_eq!(m.num_tasks(), 12);
        assert_eq!(m.num_subtasks(), 25);
        // 8 end-to-end tasks + 4 local tasks.
        let local = m.tasks().iter().filter(|t| t.len() == 1).count();
        assert_eq!(local, 4);
        // Subtask distribution 7/6/6/6 so B1 ≈ 0.729 (the value in §7.2).
        assert_eq!(m.num_subtasks_on(ProcessorId(0)), 7);
        for p in 1..4 {
            assert_eq!(m.num_subtasks_on(ProcessorId(p)), 6);
        }
        let b = rms_set_points(&m);
        assert!((b[0] - 0.7286).abs() < 1e-3);
    }

    #[test]
    fn medium_nominal_rates_hit_set_points_exactly() {
        let m = medium();
        let u = m.estimated_utilization(&medium_nominal_rates());
        let b = rms_set_points(&m);
        assert!(
            u.approx_eq(&b, 1e-9),
            "F·r_nom must equal B, got {u} vs {b}"
        );
    }

    #[test]
    fn medium_is_deterministic() {
        assert_eq!(medium(), medium());
    }

    #[test]
    fn medium_rates_start_at_nominal() {
        let m = medium();
        let r0 = m.initial_rates();
        assert!(r0.approx_eq(&medium_nominal_rates(), 1e-15));
        // Bounds bracket the nominal rate with the documented span.
        for (t, task) in m.tasks().iter().enumerate() {
            let r_nom = 1.0 / MEDIUM_PERIODS[t];
            assert!((task.rate_max() / r_nom - MEDIUM_RATE_UP).abs() < 1e-9);
            assert!((r_nom / task.rate_min() - MEDIUM_RATE_DOWN).abs() < 1e-9);
        }
    }

    #[test]
    fn random_workload_feasible_at_nominal() {
        for seed in 0..5 {
            let set = RandomWorkload::new(5, 15).seed(seed).generate();
            let r_nom = set.initial_rates();
            let u = set.estimated_utilization(&r_nom);
            let b = rms_set_points(&set);
            assert!(u.approx_eq(&b, 1e-9), "seed {seed}: F·r_nom != B");
        }
    }

    #[test]
    fn random_workload_covers_every_processor() {
        let set = RandomWorkload::new(6, 10).seed(3).generate();
        for p in 0..6 {
            assert!(
                set.num_subtasks_on(ProcessorId(p)) > 0,
                "P{} has no subtasks",
                p + 1
            );
        }
    }

    #[test]
    fn random_workload_is_seed_deterministic() {
        let a = RandomWorkload::new(4, 9).seed(42).generate();
        let b = RandomWorkload::new(4, 9).seed(42).generate();
        assert_eq!(a, b);
        let c = RandomWorkload::new(4, 9).seed(43).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn locality_bounds_every_hop_and_stays_feasible() {
        let w = 2;
        let set = RandomWorkload::new(32, 96).seed(5).locality(w).generate();
        for task in set.tasks() {
            for pair in task.subtasks().windows(2) {
                let a = pair[0].processor.0;
                let b = pair[1].processor.0;
                assert!(a.abs_diff(b) <= w, "hop {a}->{b} exceeds window {w}");
                assert_ne!(a, b);
            }
        }
        // Block starts cover the machine and feasibility still holds.
        for p in 0..32 {
            assert!(set.num_subtasks_on(ProcessorId(p)) > 0);
        }
        let u = set.estimated_utilization(&set.initial_rates());
        let b = rms_set_points(&set);
        assert!(u.approx_eq(&b, 1e-9));
    }

    #[test]
    fn locality_makes_the_coupling_banded() {
        // Task-index distance bounds processor coupling: tasks whose
        // indices are far apart must not share a processor, which is what
        // makes shard-local Hessians banded.
        let set = RandomWorkload::new(64, 192)
            .seed(9)
            .locality(1)
            .max_chain_len(3)
            .generate();
        let f = set.allocation_matrix();
        let mut max_coupled_gap = 0usize;
        for p in 0..64 {
            let touching: Vec<usize> = (0..192).filter(|&t| f[(p, t)] != 0.0).collect();
            if let (Some(&first), Some(&last)) = (touching.first(), touching.last()) {
                max_coupled_gap = max_coupled_gap.max(last - first);
            }
        }
        // 3 tasks per processor block, chains reach ±2 procs: coupled
        // tasks stay within a small index neighborhood of each other.
        assert!(
            max_coupled_gap <= 24,
            "coupling gap {max_coupled_gap} — F is not banded"
        );
    }

    #[test]
    fn chains_never_repeat_adjacent_processors() {
        let set = RandomWorkload::new(4, 20).seed(11).generate();
        for task in set.tasks() {
            for pair in task.subtasks().windows(2) {
                assert_ne!(pair[0].processor, pair[1].processor);
            }
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn random_workloads_always_valid(
                seed in 0u64..1000,
                procs in 1usize..8,
                tasks in 1usize..20,
            ) {
                let set = RandomWorkload::new(procs, tasks).seed(seed).generate();
                prop_assert!(set.validate().is_ok());
                prop_assert_eq!(set.num_tasks(), tasks);
                // Feasibility invariant on every processor that hosts
                // at least one subtask (uncovered processors stay idle).
                let u = set.estimated_utilization(&set.initial_rates());
                let b = rms_set_points(&set);
                for p in 0..procs {
                    if set.num_subtasks_on(ProcessorId(p)) > 0 {
                        prop_assert!((u[p] - b[p]).abs() < 1e-8);
                    } else {
                        prop_assert_eq!(u[p], 0.0);
                    }
                }
            }
        }
    }
}
