//! Core task-model types: processors, subtasks and end-to-end tasks.

use std::fmt;

use crate::TaskError;

/// Identifier of a processor in the distributed platform (0-based).
///
/// # Example
///
/// ```
/// let p = eucon_tasks::ProcessorId(0);
/// assert_eq!(p.to_string(), "P1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessorId(pub usize);

impl fmt::Display for ProcessorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Displayed 1-based to match the paper's P1…Pn convention.
        write!(f, "P{}", self.0 + 1)
    }
}

/// Identifier of an end-to-end task (0-based).
///
/// # Example
///
/// ```
/// let t = eucon_tasks::TaskId(2);
/// assert_eq!(t.to_string(), "T3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub usize);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0 + 1)
    }
}

/// Identifies subtask `T_{ij}`: the `index`-th stage of task `task`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubtaskId {
    /// Owning task.
    pub task: TaskId,
    /// Position in the task's chain (0-based).
    pub index: usize,
}

impl fmt::Display for SubtaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}{}", self.task.0 + 1, self.index + 1)
    }
}

/// One stage of an end-to-end task, pinned to a processor.
///
/// `estimated_time` is the design-time execution-time estimate `c_ij` from
/// the paper; the *actual* execution time at run time is this estimate
/// scaled by the execution-time factor and any stochastic model (see
/// `eucon-sim`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Subtask {
    /// Processor this subtask executes on.
    pub processor: ProcessorId,
    /// Estimated execution time `c_ij` in simulator time units.
    pub estimated_time: f64,
}

impl Subtask {
    /// Creates a subtask on `processor` with estimate `estimated_time`.
    pub fn new(processor: ProcessorId, estimated_time: f64) -> Self {
        Subtask {
            processor,
            estimated_time,
        }
    }
}

/// A periodic end-to-end task: a chain of subtasks under precedence
/// constraints, sharing a single adjustable invocation rate.
///
/// Built with [`Task::builder`]; validation happens at
/// [`TaskBuilder::build`] so an existing `Task` is always well formed.
///
/// # Example
///
/// ```
/// use eucon_tasks::{ProcessorId, Task};
///
/// # fn main() -> Result<(), eucon_tasks::TaskError> {
/// let task = Task::builder(1.0 / 700.0, 1.0 / 35.0, 1.0 / 60.0)
///     .subtask(ProcessorId(0), 35.0)
///     .build()?;
/// assert_eq!(task.len(), 1);
/// assert!((task.initial_rate() - 1.0 / 60.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    subtasks: Vec<Subtask>,
    rate_min: f64,
    rate_max: f64,
    initial_rate: f64,
}

impl Task {
    /// Starts building a task with rate range `[rate_min, rate_max]` and
    /// the given initial rate.
    pub fn builder(rate_min: f64, rate_max: f64, initial_rate: f64) -> TaskBuilder {
        TaskBuilder {
            subtasks: Vec::new(),
            rate_min,
            rate_max,
            initial_rate,
        }
    }

    /// The subtask chain, in precedence order.
    pub fn subtasks(&self) -> &[Subtask] {
        &self.subtasks
    }

    /// Number of subtasks (`n_i` in the paper).
    pub fn len(&self) -> usize {
        self.subtasks.len()
    }

    /// Always `false`: validation rejects empty chains.
    pub fn is_empty(&self) -> bool {
        self.subtasks.is_empty()
    }

    /// Minimum acceptable invocation rate `Rmin_i`.
    pub fn rate_min(&self) -> f64 {
        self.rate_min
    }

    /// Maximum acceptable invocation rate `Rmax_i`.
    pub fn rate_max(&self) -> f64 {
        self.rate_max
    }

    /// The rate the task starts with at time zero.
    pub fn initial_rate(&self) -> f64 {
        self.initial_rate
    }

    /// Clamps a candidate rate into the task's acceptable range.
    pub fn clamp_rate(&self, rate: f64) -> f64 {
        rate.clamp(self.rate_min, self.rate_max)
    }

    /// Sum of estimated execution times across the chain.
    pub fn total_estimated_time(&self) -> f64 {
        self.subtasks.iter().map(|s| s.estimated_time).sum()
    }

    /// End-to-end relative deadline at the given rate.
    ///
    /// Following the paper's experimental setup (§7.1): `d_i = n_i / r_i`,
    /// i.e. each subtask gets a subdeadline equal to its period.
    pub fn deadline_at_rate(&self, rate: f64) -> f64 {
        self.subtasks.len() as f64 / rate
    }
}

/// Builder for [`Task`].
#[derive(Debug, Clone)]
pub struct TaskBuilder {
    subtasks: Vec<Subtask>,
    rate_min: f64,
    rate_max: f64,
    initial_rate: f64,
}

impl TaskBuilder {
    /// Appends a subtask at the end of the chain.
    pub fn subtask(mut self, processor: ProcessorId, estimated_time: f64) -> Self {
        self.subtasks.push(Subtask::new(processor, estimated_time));
        self
    }

    /// Validates and produces the task.
    ///
    /// # Errors
    ///
    /// * [`TaskError::NoSubtasks`] — empty chain.
    /// * [`TaskError::InvalidRateRange`] — `rate_min ≤ 0`, `rate_max <
    ///   rate_min`, or non-finite bounds.
    /// * [`TaskError::InitialRateOutOfRange`] — the initial rate violates
    ///   the range.
    /// * [`TaskError::NonPositiveExecutionTime`] — a subtask estimate is
    ///   not a positive finite number.
    pub fn build(self) -> Result<Task, TaskError> {
        if self.subtasks.is_empty() {
            return Err(TaskError::NoSubtasks);
        }
        let range_valid = self.rate_min > 0.0
            && self.rate_max >= self.rate_min
            && self.rate_min.is_finite()
            && self.rate_max.is_finite();
        if !range_valid {
            return Err(TaskError::InvalidRateRange {
                min: self.rate_min,
                max: self.rate_max,
            });
        }
        if !(self.initial_rate >= self.rate_min && self.initial_rate <= self.rate_max) {
            return Err(TaskError::InitialRateOutOfRange {
                rate: self.initial_rate,
            });
        }
        for s in &self.subtasks {
            let time_valid = s.estimated_time > 0.0 && s.estimated_time.is_finite();
            if !time_valid {
                return Err(TaskError::NonPositiveExecutionTime {
                    time: s.estimated_time,
                });
            }
        }
        Ok(Task {
            subtasks: self.subtasks,
            rate_min: self.rate_min,
            rate_max: self.rate_max,
            initial_rate: self.initial_rate,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_task() -> Task {
        Task::builder(0.001, 0.03, 0.01)
            .subtask(ProcessorId(0), 35.0)
            .subtask(ProcessorId(1), 45.0)
            .build()
            .unwrap()
    }

    #[test]
    fn display_ids_are_one_based() {
        assert_eq!(ProcessorId(0).to_string(), "P1");
        assert_eq!(TaskId(1).to_string(), "T2");
        assert_eq!(
            SubtaskId {
                task: TaskId(1),
                index: 0
            }
            .to_string(),
            "T21"
        );
    }

    #[test]
    fn builder_produces_valid_task() {
        let t = simple_task();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.subtasks()[1].processor, ProcessorId(1));
        assert_eq!(t.total_estimated_time(), 80.0);
    }

    #[test]
    fn empty_chain_rejected() {
        let r = Task::builder(0.1, 1.0, 0.5).build();
        assert_eq!(r.unwrap_err(), TaskError::NoSubtasks);
    }

    #[test]
    fn invalid_rate_ranges_rejected() {
        let r = Task::builder(0.0, 1.0, 0.5)
            .subtask(ProcessorId(0), 1.0)
            .build();
        assert!(matches!(r.unwrap_err(), TaskError::InvalidRateRange { .. }));

        let r = Task::builder(2.0, 1.0, 1.5)
            .subtask(ProcessorId(0), 1.0)
            .build();
        assert!(matches!(r.unwrap_err(), TaskError::InvalidRateRange { .. }));

        let r = Task::builder(0.1, f64::INFINITY, 0.5)
            .subtask(ProcessorId(0), 1.0)
            .build();
        assert!(matches!(r.unwrap_err(), TaskError::InvalidRateRange { .. }));
    }

    #[test]
    fn initial_rate_must_lie_inside_range() {
        let r = Task::builder(0.1, 1.0, 2.0)
            .subtask(ProcessorId(0), 1.0)
            .build();
        assert!(matches!(
            r.unwrap_err(),
            TaskError::InitialRateOutOfRange { .. }
        ));
    }

    #[test]
    fn non_positive_execution_time_rejected() {
        let r = Task::builder(0.1, 1.0, 0.5)
            .subtask(ProcessorId(0), 0.0)
            .build();
        assert!(matches!(
            r.unwrap_err(),
            TaskError::NonPositiveExecutionTime { .. }
        ));
        let r = Task::builder(0.1, 1.0, 0.5)
            .subtask(ProcessorId(0), f64::NAN)
            .build();
        assert!(matches!(
            r.unwrap_err(),
            TaskError::NonPositiveExecutionTime { .. }
        ));
    }

    #[test]
    fn clamp_rate_respects_bounds() {
        let t = simple_task();
        assert_eq!(t.clamp_rate(1.0), 0.03);
        assert_eq!(t.clamp_rate(0.0), 0.001);
        assert_eq!(t.clamp_rate(0.02), 0.02);
    }

    #[test]
    fn deadline_is_subtask_count_over_rate() {
        let t = simple_task();
        assert!((t.deadline_at_rate(0.01) - 200.0).abs() < 1e-12);
    }
}
