//! Error type for task-model validation.

use std::error::Error;
use std::fmt;

/// Errors detected while constructing or validating a task set.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TaskError {
    /// A task was declared without any subtasks.
    NoSubtasks,
    /// A rate range was empty or non-positive (`0 < Rmin ≤ Rmax` required).
    InvalidRateRange {
        /// The offending minimum rate.
        min: f64,
        /// The offending maximum rate.
        max: f64,
    },
    /// The initial rate lies outside `[Rmin, Rmax]`.
    InitialRateOutOfRange {
        /// The offending initial rate.
        rate: f64,
    },
    /// A subtask referenced a processor index beyond the platform size.
    ProcessorOutOfRange {
        /// The referenced processor index.
        processor: usize,
        /// The number of processors in the platform.
        num_processors: usize,
    },
    /// A subtask has a non-positive estimated execution time.
    NonPositiveExecutionTime {
        /// The offending estimated execution time.
        time: f64,
    },
    /// The task set contains no tasks.
    EmptyTaskSet,
}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskError::NoSubtasks => write!(f, "task has no subtasks"),
            TaskError::InvalidRateRange { min, max } => {
                write!(f, "invalid rate range [{min}, {max}]")
            }
            TaskError::InitialRateOutOfRange { rate } => {
                write!(f, "initial rate {rate} lies outside the allowed range")
            }
            TaskError::ProcessorOutOfRange {
                processor,
                num_processors,
            } => {
                write!(
                    f,
                    "processor index {processor} out of range for {num_processors} processors"
                )
            }
            TaskError::NonPositiveExecutionTime { time } => {
                write!(f, "estimated execution time {time} must be positive")
            }
            TaskError::EmptyTaskSet => write!(f, "task set contains no tasks"),
        }
    }
}

impl Error for TaskError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(TaskError::NoSubtasks.to_string().contains("no subtasks"));
        assert!(TaskError::InvalidRateRange { min: 1.0, max: 0.5 }
            .to_string()
            .contains("[1, 0.5]"));
        assert!(TaskError::ProcessorOutOfRange {
            processor: 9,
            num_processors: 4
        }
        .to_string()
        .contains("9"));
    }
}
