//! Task sets: a platform plus its end-to-end tasks.

use eucon_math::{Matrix, Vector};

use crate::{ProcessorId, SubtaskId, Task, TaskError, TaskId};

/// A complete workload: `m` end-to-end tasks deployed on `n` processors.
///
/// This is the object every other crate consumes — the simulator
/// instantiates it, the controller derives its subtask-allocation matrix
/// `F` from it, and the set-point policy reads per-processor subtask counts
/// off it.
///
/// # Example
///
/// ```
/// use eucon_tasks::{ProcessorId, Task, TaskSet};
///
/// # fn main() -> Result<(), eucon_tasks::TaskError> {
/// let mut set = TaskSet::new(2);
/// set.add_task(
///     Task::builder(0.001, 0.03, 0.01)
///         .subtask(ProcessorId(0), 35.0)
///         .subtask(ProcessorId(1), 35.0)
///         .build()?,
/// )?;
/// let f = set.allocation_matrix();
/// assert_eq!(f.rows(), 2); // processors
/// assert_eq!(f.cols(), 1); // tasks
/// assert_eq!(f[(0, 0)], 35.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSet {
    tasks: Vec<Task>,
    num_processors: usize,
}

impl TaskSet {
    /// Creates an empty task set on a platform of `num_processors`.
    pub fn new(num_processors: usize) -> Self {
        TaskSet {
            tasks: Vec::new(),
            num_processors,
        }
    }

    /// Adds a task, validating its processor references.
    ///
    /// Returns the id assigned to the task.
    ///
    /// # Errors
    ///
    /// [`TaskError::ProcessorOutOfRange`] when a subtask names a processor
    /// `≥ num_processors`.
    pub fn add_task(&mut self, task: Task) -> Result<TaskId, TaskError> {
        for s in task.subtasks() {
            if s.processor.0 >= self.num_processors {
                return Err(TaskError::ProcessorOutOfRange {
                    processor: s.processor.0,
                    num_processors: self.num_processors,
                });
            }
        }
        let id = TaskId(self.tasks.len());
        self.tasks.push(task);
        Ok(id)
    }

    /// Number of processors `n`.
    pub fn num_processors(&self) -> usize {
        self.num_processors
    }

    /// Number of tasks `m`.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Total number of subtasks across all tasks.
    pub fn num_subtasks(&self) -> usize {
        self.tasks.iter().map(Task::len).sum()
    }

    /// The tasks, indexable by [`TaskId`].
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Borrow a task by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.0]
    }

    /// Iterates over `(SubtaskId, &Subtask)` pairs located on `processor`.
    pub fn subtasks_on(
        &self,
        processor: ProcessorId,
    ) -> impl Iterator<Item = (SubtaskId, &crate::Subtask)> + '_ {
        self.tasks.iter().enumerate().flat_map(move |(t, task)| {
            task.subtasks()
                .iter()
                .enumerate()
                .filter_map(move |(j, s)| {
                    (s.processor == processor).then_some((
                        SubtaskId {
                            task: TaskId(t),
                            index: j,
                        },
                        s,
                    ))
                })
        })
    }

    /// Number of subtasks allocated to `processor` (`m_i` in the paper's
    /// eq. 13).
    pub fn num_subtasks_on(&self, processor: ProcessorId) -> usize {
        self.subtasks_on(processor).count()
    }

    /// The subtask-allocation matrix `F` (paper eq. 6): an `n × m` matrix
    /// with `f_ij = Σ c_jl` over the subtasks of task `j` placed on
    /// processor `i` (zero when task `j` has no subtask there).
    ///
    /// `F` captures the coupling between processors: a rate change of one
    /// task moves the utilization of every processor hosting one of its
    /// subtasks.
    pub fn allocation_matrix(&self) -> Matrix {
        let mut f = Matrix::zeros(self.num_processors, self.num_tasks());
        for (j, task) in self.tasks.iter().enumerate() {
            for s in task.subtasks() {
                f[(s.processor.0, j)] += s.estimated_time;
            }
        }
        f
    }

    /// Vector of initial task rates `r(0)`.
    pub fn initial_rates(&self) -> Vector {
        Vector::from_iter(self.tasks.iter().map(Task::initial_rate))
    }

    /// Per-task rate bounds as `(Rmin, Rmax)` vectors.
    pub fn rate_bounds(&self) -> (Vector, Vector) {
        (
            Vector::from_iter(self.tasks.iter().map(Task::rate_min)),
            Vector::from_iter(self.tasks.iter().map(Task::rate_max)),
        )
    }

    /// Estimated utilization of every processor at the given task rates:
    /// `F·r`.
    ///
    /// # Panics
    ///
    /// Panics if `rates.len() != num_tasks()`.
    pub fn estimated_utilization(&self, rates: &Vector) -> Vector {
        self.allocation_matrix().mul_vec(rates)
    }

    /// Validates the whole set (non-empty, all tasks well-formed relative
    /// to the platform).
    ///
    /// # Errors
    ///
    /// [`TaskError::EmptyTaskSet`] when no tasks have been added.
    pub fn validate(&self) -> Result<(), TaskError> {
        if self.tasks.is_empty() {
            return Err(TaskError::EmptyTaskSet);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The example from the end of the paper's §5: three tasks on two
    /// processors.
    fn paper_example() -> TaskSet {
        let mut set = TaskSet::new(2);
        // T1: one subtask T11 on P1.
        set.add_task(
            Task::builder(0.001, 0.1, 0.01)
                .subtask(ProcessorId(0), 1.0)
                .build()
                .unwrap(),
        )
        .unwrap();
        // T2: subtasks on P1 and P2.
        set.add_task(
            Task::builder(0.001, 0.1, 0.01)
                .subtask(ProcessorId(0), 2.0)
                .subtask(ProcessorId(1), 3.0)
                .build()
                .unwrap(),
        )
        .unwrap();
        // T3: one subtask on P2.
        set.add_task(
            Task::builder(0.001, 0.1, 0.01)
                .subtask(ProcessorId(1), 4.0)
                .build()
                .unwrap(),
        )
        .unwrap();
        set
    }

    #[test]
    fn allocation_matrix_matches_paper_structure() {
        let set = paper_example();
        let f = set.allocation_matrix();
        // F = [[c11, c21, 0], [0, c22, c31]].
        assert_eq!(f.rows(), 2);
        assert_eq!(f.cols(), 3);
        assert_eq!(f[(0, 0)], 1.0);
        assert_eq!(f[(0, 1)], 2.0);
        assert_eq!(f[(0, 2)], 0.0);
        assert_eq!(f[(1, 0)], 0.0);
        assert_eq!(f[(1, 1)], 3.0);
        assert_eq!(f[(1, 2)], 4.0);
    }

    #[test]
    fn multiple_subtasks_on_same_processor_sum() {
        let mut set = TaskSet::new(1);
        set.add_task(
            Task::builder(0.001, 0.1, 0.01)
                .subtask(ProcessorId(0), 2.0)
                .subtask(ProcessorId(0), 3.0)
                .build()
                .unwrap(),
        )
        .unwrap();
        assert_eq!(set.allocation_matrix()[(0, 0)], 5.0);
    }

    #[test]
    fn subtask_queries() {
        let set = paper_example();
        assert_eq!(set.num_tasks(), 3);
        assert_eq!(set.num_subtasks(), 4);
        assert_eq!(set.num_subtasks_on(ProcessorId(0)), 2);
        assert_eq!(set.num_subtasks_on(ProcessorId(1)), 2);
        let on_p2: Vec<String> = set
            .subtasks_on(ProcessorId(1))
            .map(|(id, _)| id.to_string())
            .collect();
        assert_eq!(on_p2, vec!["T22", "T31"]);
    }

    #[test]
    fn rejects_out_of_range_processor() {
        let mut set = TaskSet::new(1);
        let r = set.add_task(
            Task::builder(0.001, 0.1, 0.01)
                .subtask(ProcessorId(1), 1.0)
                .build()
                .unwrap(),
        );
        assert!(matches!(
            r.unwrap_err(),
            TaskError::ProcessorOutOfRange { .. }
        ));
    }

    #[test]
    fn estimated_utilization_is_f_times_r() {
        let set = paper_example();
        let r = Vector::from_slice(&[0.1, 0.2, 0.05]);
        let u = set.estimated_utilization(&r);
        assert!((u[0] - (1.0 * 0.1 + 2.0 * 0.2)).abs() < 1e-12);
        assert!((u[1] - (3.0 * 0.2 + 4.0 * 0.05)).abs() < 1e-12);
    }

    #[test]
    fn initial_rates_and_bounds() {
        let set = paper_example();
        assert_eq!(set.initial_rates().as_slice(), &[0.01, 0.01, 0.01]);
        let (lo, hi) = set.rate_bounds();
        assert!(lo.iter().all(|&v| v == 0.001));
        assert!(hi.iter().all(|&v| v == 0.1));
    }

    #[test]
    fn validate_empty() {
        let set = TaskSet::new(2);
        assert_eq!(set.validate(), Err(TaskError::EmptyTaskSet));
        assert!(paper_example().validate().is_ok());
    }
}
