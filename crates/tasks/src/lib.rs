//! End-to-end task model for the EUCON reproduction.
//!
//! Implements the flexible end-to-end task model of the paper's §3.1: a
//! system of `m` periodic tasks on `n` processors, where each task is a
//! chain of subtasks under precedence constraints, all sharing the task's
//! dynamically adjustable invocation rate.
//!
//! Provided here:
//!
//! * [`Task`], [`Subtask`], [`TaskSet`] — the model types, with validating
//!   builders.
//! * [`TaskSet::allocation_matrix`] — the subtask-allocation matrix `F`
//!   (paper eq. 6) that couples processors through shared tasks.
//! * [`liu_layland_bound`] / [`rms_set_points`] — the RMS schedulable
//!   utilization bound used as the per-processor set point (paper eq. 13).
//! * [`workloads`] — the paper's SIMPLE (Table 1) and MEDIUM (§7.1)
//!   configurations plus a seeded random workload generator.
//! * [`balance`] — design-time subtask reallocation (the paper's third
//!   adaptation mechanism), a greedy load-ratio balancer.
//!
//! # Example
//!
//! ```
//! use eucon_tasks::{rms_set_points, workloads};
//!
//! let simple = workloads::simple();
//! let b = rms_set_points(&simple);
//! // Two subtasks per processor → B = 2(√2 − 1) ≈ 0.828 on both.
//! assert!((b[0] - 0.828).abs() < 1e-3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balance;
mod bounds;
mod error;
mod model;
mod set;
pub mod workloads;

pub use bounds::{even_subdeadlines, liu_layland_bound, proportional_subdeadlines, rms_set_points};
pub use error::TaskError;
pub use model::{ProcessorId, Subtask, SubtaskId, Task, TaskBuilder, TaskId};
pub use set::TaskSet;
