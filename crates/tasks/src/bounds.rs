//! Schedulable utilization bounds and set-point policies.

use eucon_math::Vector;

use crate::{ProcessorId, TaskSet};

/// The Liu–Layland rate-monotonic schedulable utilization bound for `m`
/// tasks: `m·(2^{1/m} − 1)`.
///
/// Any set of `m` independent periodic tasks with deadlines equal to their
/// periods meets all deadlines under RMS if their total utilization stays
/// below this bound (Liu & Layland, JACM 1973).  The paper uses it as the
/// utilization set point (eq. 13) so that enforcing the set point enforces
/// every subdeadline.
///
/// Returns `1.0` for `m = 0` (an idle processor can be fully utilized) and
/// converges to `ln 2 ≈ 0.693` as `m → ∞`.
///
/// # Example
///
/// ```
/// let b = eucon_tasks::liu_layland_bound(2);
/// assert!((b - 0.828).abs() < 1e-3);
/// ```
pub fn liu_layland_bound(m: usize) -> f64 {
    if m == 0 {
        return 1.0;
    }
    let mf = m as f64;
    mf * (2f64.powf(1.0 / mf) - 1.0)
}

/// Computes the utilization set point of every processor per the paper's
/// eq. 13: `B_i = m_i (2^{1/m_i} − 1)` where `m_i` counts the subtasks on
/// `P_i`.
///
/// # Example
///
/// ```
/// use eucon_tasks::{rms_set_points, workloads};
///
/// let simple = workloads::simple();
/// let b = rms_set_points(&simple);
/// assert!((b[0] - 0.828).abs() < 1e-3); // two subtasks on each processor
/// assert!((b[1] - 0.828).abs() < 1e-3);
/// ```
pub fn rms_set_points(set: &TaskSet) -> Vector {
    Vector::from_iter(
        (0..set.num_processors()).map(|i| liu_layland_bound(set.num_subtasks_on(ProcessorId(i)))),
    )
}

/// Evenly divides each task's end-to-end deadline into per-subtask
/// subdeadlines (paper §7.1): with `d_i = n_i / r_i`, every subtask of
/// task `i` receives subdeadline `1 / r_i`, i.e. its period.
///
/// Returns, for each task, the subdeadline shared by its subtasks at the
/// given rates.
///
/// # Panics
///
/// Panics if `rates.len() != set.num_tasks()` or a rate is non-positive.
pub fn even_subdeadlines(set: &TaskSet, rates: &Vector) -> Vec<f64> {
    assert_eq!(rates.len(), set.num_tasks(), "one rate per task required");
    rates
        .iter()
        .map(|&r| {
            assert!(r > 0.0, "rates must be positive");
            1.0 / r
        })
        .collect()
}

/// Divides each task's end-to-end deadline into subdeadlines proportional
/// to the subtasks' estimated execution times (the "proportional deadline
/// assignment" of Kao & Garcia-Molina, cited by the paper's §7.1 as an
/// alternative to even division).
///
/// Returns, for each task, a vector of per-subtask subdeadlines summing to
/// the end-to-end deadline `n_i / r_i`.
///
/// # Panics
///
/// Panics if `rates.len() != set.num_tasks()` or a rate is non-positive.
///
/// # Example
///
/// ```
/// use eucon_math::Vector;
/// use eucon_tasks::{proportional_subdeadlines, workloads};
///
/// let simple = workloads::simple();
/// let d = proportional_subdeadlines(&simple, &simple.initial_rates());
/// // T2's two subtasks have equal estimates → equal subdeadlines of 90.
/// assert!((d[1][0] - 90.0).abs() < 1e-9);
/// assert!((d[1][1] - 90.0).abs() < 1e-9);
/// ```
pub fn proportional_subdeadlines(set: &TaskSet, rates: &Vector) -> Vec<Vec<f64>> {
    assert_eq!(rates.len(), set.num_tasks(), "one rate per task required");
    set.tasks()
        .iter()
        .zip(rates.iter())
        .map(|(task, &r)| {
            assert!(r > 0.0, "rates must be positive");
            let deadline = task.len() as f64 / r;
            let total: f64 = task.total_estimated_time();
            task.subtasks()
                .iter()
                .map(|s| deadline * s.estimated_time / total)
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProcessorId, Task};

    #[test]
    fn liu_layland_known_values() {
        assert_eq!(liu_layland_bound(0), 1.0);
        assert_eq!(liu_layland_bound(1), 1.0);
        assert!((liu_layland_bound(2) - 0.8284).abs() < 1e-4);
        assert!((liu_layland_bound(7) - 0.7286).abs() < 1e-4);
        // Asymptote ln 2.
        assert!((liu_layland_bound(100_000) - std::f64::consts::LN_2).abs() < 1e-4);
    }

    #[test]
    fn bound_is_monotonically_decreasing() {
        for m in 1..50 {
            assert!(
                liu_layland_bound(m) >= liu_layland_bound(m + 1),
                "bound must decrease with task count (m = {m})"
            );
        }
    }

    #[test]
    fn set_points_count_subtasks_per_processor() {
        let mut set = TaskSet::new(2);
        // Three subtasks on P1, one on P2.
        set.add_task(
            Task::builder(0.001, 0.1, 0.01)
                .subtask(ProcessorId(0), 1.0)
                .subtask(ProcessorId(0), 1.0)
                .subtask(ProcessorId(0), 1.0)
                .build()
                .unwrap(),
        )
        .unwrap();
        set.add_task(
            Task::builder(0.001, 0.1, 0.01)
                .subtask(ProcessorId(1), 1.0)
                .build()
                .unwrap(),
        )
        .unwrap();
        let b = rms_set_points(&set);
        assert!((b[0] - liu_layland_bound(3)).abs() < 1e-12);
        assert!((b[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn subdeadlines_equal_periods() {
        let mut set = TaskSet::new(1);
        set.add_task(
            Task::builder(0.001, 0.1, 0.01)
                .subtask(ProcessorId(0), 1.0)
                .subtask(ProcessorId(0), 1.0)
                .build()
                .unwrap(),
        )
        .unwrap();
        let d = even_subdeadlines(&set, &Vector::from_slice(&[0.02]));
        assert_eq!(d, vec![50.0]);
    }

    #[test]
    fn proportional_subdeadlines_sum_to_deadline() {
        let mut set = TaskSet::new(2);
        set.add_task(
            Task::builder(0.001, 0.1, 0.01)
                .subtask(ProcessorId(0), 30.0)
                .subtask(ProcessorId(1), 10.0)
                .build()
                .unwrap(),
        )
        .unwrap();
        let d = proportional_subdeadlines(&set, &Vector::from_slice(&[0.01]));
        // End-to-end deadline 2/0.01 = 200, split 3:1.
        assert!((d[0][0] - 150.0).abs() < 1e-9);
        assert!((d[0][1] - 50.0).abs() < 1e-9);
        assert!((d[0].iter().sum::<f64>() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn proportional_equals_even_for_equal_estimates() {
        let set = crate::workloads::simple();
        let rates = set.initial_rates();
        let prop = proportional_subdeadlines(&set, &rates);
        let even = even_subdeadlines(&set, &rates);
        // T2's subtasks have equal estimates, so proportional = even.
        assert!((prop[1][0] - even[1]).abs() < 1e-9);
        assert!((prop[1][1] - even[1]).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "one rate per task")]
    fn subdeadline_rate_count_checked() {
        let set = TaskSet::new(1);
        let _ = even_subdeadlines(&set, &Vector::from_slice(&[0.02]));
    }
}
