//! Design-time subtask reallocation.
//!
//! The paper names task reallocation, alongside admission control, as the
//! adaptation mechanism of last resort when rate adaptation cannot make
//! the utilization-control problem feasible (§3.1, §6.2).  Migrating a
//! running subtask is outside the paper's scope; what *is* actionable is
//! reallocating at (re)deployment time: choosing which processor runs
//! each subtask so that no processor is structurally overloaded relative
//! to its schedulable bound.
//!
//! [`balance`] implements a greedy hill-climbing reallocator: repeatedly
//! move one subtask from the processor with the highest *load ratio*
//! (estimated utilization at initial rates divided by its RMS set point —
//! which itself depends on the subtask count, so moves change both sides)
//! to the processor where the system-wide worst ratio improves the most.
//! It terminates when no single move helps.

use crate::{rms_set_points, ProcessorId, Task, TaskSet};

/// One accepted reallocation step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Move {
    /// Task whose subtask moved.
    pub task: usize,
    /// Index of the moved subtask within the task's chain.
    pub subtask: usize,
    /// Processor the subtask left.
    pub from: ProcessorId,
    /// Processor the subtask now runs on.
    pub to: ProcessorId,
}

/// Outcome of a [`balance`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct BalanceReport {
    /// Worst processor load ratio before balancing.
    pub before: f64,
    /// Worst processor load ratio after balancing.
    pub after: f64,
    /// Accepted moves, in order.
    pub moves: Vec<Move>,
}

/// Worst processor load ratio of a task set: `max_i (F·r₀)_i / B_i`,
/// with `B` the RMS set points.  A ratio above 1 means the processor
/// cannot meet its schedulable bound even at the initial rates.
pub fn worst_load_ratio(set: &TaskSet) -> f64 {
    let u = set.estimated_utilization(&set.initial_rates());
    let b = rms_set_points(set);
    (0..set.num_processors())
        .map(|p| u[p] / b[p])
        .fold(0.0, f64::max)
}

/// Greedily reallocates subtasks until no single move lowers the worst
/// load ratio; returns the balanced set and a report.
///
/// The rebuilt tasks keep their chains (order, estimates, rate ranges)
/// verbatim except for the processor assignments.  At most `max_moves`
/// moves are attempted (a safety bound; the greedy search terminates on
/// its own long before any sensible limit).
///
/// # Panics
///
/// Panics if the set is empty or `max_moves` is zero.
pub fn balance(set: &TaskSet, max_moves: usize) -> (TaskSet, BalanceReport) {
    assert!(max_moves > 0, "need a positive move budget");
    set.validate().expect("cannot balance an empty task set");

    let n = set.num_processors();
    let mut placement: Vec<Vec<usize>> = set
        .tasks()
        .iter()
        .map(|t| t.subtasks().iter().map(|s| s.processor.0).collect())
        .collect();

    let before = worst_load_ratio(set);
    let mut best = before;
    let mut moves = Vec::new();

    for _ in 0..max_moves {
        // Identify the worst processor under the current placement.
        let current = rebuild(set, &placement);
        let u = current.estimated_utilization(&current.initial_rates());
        let b = rms_set_points(&current);
        let worst_proc = (0..n)
            .max_by(|&a, &c| (u[a] / b[a]).total_cmp(&(u[c] / b[c])))
            .expect("at least one processor");

        // Try every (subtask on worst_proc) × (destination) move and keep
        // the one with the lowest resulting worst ratio.
        let mut candidate: Option<(usize, usize, usize, f64)> = None;
        for (t, chain) in placement.iter().enumerate() {
            for (j, &p) in chain.iter().enumerate() {
                if p != worst_proc {
                    continue;
                }
                for dest in 0..n {
                    if dest == worst_proc {
                        continue;
                    }
                    let mut trial = placement.clone();
                    trial[t][j] = dest;
                    let ratio = worst_load_ratio(&rebuild(set, &trial));
                    if ratio < candidate.map_or(best, |(.., r)| r) - 1e-12 {
                        candidate = Some((t, j, dest, ratio));
                    }
                }
            }
        }
        let Some((t, j, dest, ratio)) = candidate else {
            break; // local optimum
        };
        moves.push(Move {
            task: t,
            subtask: j,
            from: ProcessorId(placement[t][j]),
            to: ProcessorId(dest),
        });
        placement[t][j] = dest;
        best = ratio;
    }

    (
        rebuild(set, &placement),
        BalanceReport {
            before,
            after: best,
            moves,
        },
    )
}

/// Rebuilds a task set with the same tasks but new processor assignments.
fn rebuild(set: &TaskSet, placement: &[Vec<usize>]) -> TaskSet {
    let mut out = TaskSet::new(set.num_processors());
    for (task, chain) in set.tasks().iter().zip(placement.iter()) {
        let mut b = Task::builder(task.rate_min(), task.rate_max(), task.initial_rate());
        for (s, &p) in task.subtasks().iter().zip(chain.iter()) {
            b = b.subtask(ProcessorId(p), s.estimated_time);
        }
        out.add_task(b.build().expect("chain parameters unchanged"))
            .expect("processor indices stay in range");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deliberately skewed system: all load piled on P1 of 3 processors.
    fn skewed() -> TaskSet {
        let mut set = TaskSet::new(3);
        for i in 0..6 {
            let r = 1.0 / (100.0 + 10.0 * i as f64);
            set.add_task(
                Task::builder(r / 10.0, r * 10.0, r)
                    .subtask(ProcessorId(0), 20.0)
                    .build()
                    .unwrap(),
            )
            .unwrap();
        }
        set
    }

    #[test]
    fn balancing_reduces_worst_ratio() {
        let set = skewed();
        let (balanced, report) = balance(&set, 50);
        assert!(report.after < report.before * 0.6, "{report:?}");
        assert!(worst_load_ratio(&balanced) <= report.after + 1e-12);
        assert!(!report.moves.is_empty());
        // Load now spread over all three processors.
        for p in 0..3 {
            assert!(
                balanced.num_subtasks_on(ProcessorId(p)) >= 1,
                "P{} left empty",
                p + 1
            );
        }
    }

    #[test]
    fn chains_survive_reallocation_intact() {
        let set = crate::workloads::medium();
        let (balanced, _) = balance(&set, 50);
        assert_eq!(balanced.num_tasks(), set.num_tasks());
        for (a, b) in set.tasks().iter().zip(balanced.tasks().iter()) {
            assert_eq!(a.len(), b.len());
            assert_eq!(a.rate_min(), b.rate_min());
            assert_eq!(a.rate_max(), b.rate_max());
            assert_eq!(a.initial_rate(), b.initial_rate());
            for (sa, sb) in a.subtasks().iter().zip(b.subtasks().iter()) {
                assert_eq!(sa.estimated_time, sb.estimated_time);
            }
        }
    }

    #[test]
    fn balanced_input_is_a_fixed_point() {
        // MEDIUM is constructed with F·r₀ = B exactly: every processor's
        // ratio is 1, so no move can improve the worst ratio.
        let set = crate::workloads::medium();
        let before = worst_load_ratio(&set);
        let (_, report) = balance(&set, 50);
        assert!((report.before - before).abs() < 1e-12);
        assert!(
            report.after >= report.before - 1e-9,
            "cannot beat a perfectly balanced set"
        );
        assert!(
            report.moves.is_empty(),
            "no moves expected: {:?}",
            report.moves
        );
    }

    #[test]
    fn deterministic() {
        let set = skewed();
        let (a, ra) = balance(&set, 50);
        let (b, rb) = balance(&set, 50);
        assert_eq!(a, b);
        assert_eq!(ra, rb);
    }

    #[test]
    fn single_processor_is_noop() {
        let mut set = TaskSet::new(1);
        let r = 1.0 / 100.0;
        set.add_task(
            Task::builder(r / 2.0, r * 2.0, r)
                .subtask(ProcessorId(0), 50.0)
                .build()
                .unwrap(),
        )
        .unwrap();
        let (_, report) = balance(&set, 10);
        assert!(report.moves.is_empty());
        assert_eq!(report.before, report.after);
    }

    #[test]
    #[should_panic(expected = "positive move budget")]
    fn zero_budget_rejected() {
        let _ = balance(&skewed(), 0);
    }
}
