//! Vendored stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the API subset the workspace's benches use — benchmark
//! groups, [`BenchmarkId`], `bench_function` / `bench_with_input`,
//! `sample_size` and `Bencher::iter` — on top of a real timing loop:
//! an automatic warm-up, batched iterations calibrated to a per-sample
//! time budget, and robust statistics (median and median absolute
//! deviation over samples).
//!
//! Output is one human-readable line *and* one machine-readable JSON
//! line per benchmark, so baselines can be captured by redirecting
//! stdout (see `BENCH_PR1.json` at the repository root).
//!
//! Environment knobs:
//!
//! * `CRITERION_SAMPLE_MS` — per-sample time budget in milliseconds
//!   (default 20).
//! * `CRITERION_WARMUP_MS` — warm-up budget in milliseconds (default 100).
//!
//! Positional command-line arguments act as substring filters on the
//! full `group/bench` name, mirroring `cargo bench -- <filter>`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
pub struct Criterion {
    filters: Vec<String>,
    sample_count: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filters: Vec::new(),
            sample_count: 30,
        }
    }
}

impl Criterion {
    /// Reads benchmark filters from the command line (mirrors
    /// `configure_from_args`); flags (`--bench`, `--profile-time`, …) are
    /// ignored.
    pub fn configure_from_args(mut self) -> Self {
        self.filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_count: None,
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        let name = id.to_string();
        run_benchmark("", &name, self.sample_count, &self.filters, |b| f(b));
    }
}

/// A named set of related benchmarks (stand-in for `BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_count: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = Some(n.max(5));
        self
    }

    /// Benchmarks a closure under `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        let samples = self.sample_count.unwrap_or(self.criterion.sample_count);
        run_benchmark(
            &self.name,
            &id.to_string(),
            samples,
            &self.criterion.filters,
            |b| f(b),
        );
    }

    /// Benchmarks a closure that receives a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let samples = self.sample_count.unwrap_or(self.criterion.sample_count);
        run_benchmark(
            &self.name,
            &id.to_string(),
            samples,
            &self.criterion.filters,
            |b| f(b, input),
        );
    }

    /// Ends the group (kept for API compatibility; no-op).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{function}/{parameter}"),
        }
    }

    /// An id made of a parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Per-iteration nanoseconds, one entry per sample.
    results: Vec<f64>,
}

fn env_ms(var: &str, default_ms: u64) -> Duration {
    Duration::from_millis(
        std::env::var(var)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default_ms),
    )
}

impl Bencher {
    /// Times the closure: warm-up, then `samples` batched measurements.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warmup = env_ms("CRITERION_WARMUP_MS", 100);
        let sample_budget = env_ms("CRITERION_SAMPLE_MS", 20);

        // Warm-up while estimating the cost of one iteration.
        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < warmup || iters == 0 {
            std::hint::black_box(f());
            iters += 1;
        }
        let est_ns = (start.elapsed().as_nanos() as f64 / iters as f64).max(1.0);

        // Batch size targeting the per-sample budget.
        let batch = ((sample_budget.as_nanos() as f64 / est_ns).ceil() as u64).clamp(1, 1 << 24);

        self.results.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            self.results
                .push(t0.elapsed().as_nanos() as f64 / batch as f64);
        }
    }
}

/// Median of a sample set (empty → 0).
fn median(sorted: &[f64]) -> f64 {
    match sorted.len() {
        0 => 0.0,
        n if n % 2 == 1 => sorted[n / 2],
        n => 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]),
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    group: &str,
    name: &str,
    samples: usize,
    filters: &[String],
    mut f: F,
) {
    let full = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };
    if !filters.is_empty() && !filters.iter().any(|flt| full.contains(flt.as_str())) {
        return;
    }
    let mut bencher = Bencher {
        samples,
        results: Vec::new(),
    };
    f(&mut bencher);

    let mut sorted = bencher.results.clone();
    sorted.sort_by(f64::total_cmp);
    let med = median(&sorted);
    let mut devs: Vec<f64> = sorted.iter().map(|x| (x - med).abs()).collect();
    devs.sort_by(f64::total_cmp);
    let mad = median(&devs);
    let mean = if sorted.is_empty() {
        0.0
    } else {
        sorted.iter().sum::<f64>() / sorted.len() as f64
    };

    println!(
        "{full:<50} time: {} ± {} (median ± MAD, {} samples)",
        fmt_ns(med),
        fmt_ns(mad),
        sorted.len()
    );
    println!(
        "{{\"group\":\"{group}\",\"bench\":\"{name}\",\"median_ns\":{med:.2},\"mean_ns\":{mean:.2},\"mad_ns\":{mad:.2},\"samples\":{}}}",
        sorted.len()
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a group of benchmark functions (mirrors `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary entry point (mirrors `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_handles_odd_even_empty() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[3.0]), 3.0);
        assert_eq!(median(&[1.0, 3.0]), 2.0);
        assert_eq!(median(&[1.0, 2.0, 9.0]), 2.0);
    }

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("CRITERION_WARMUP_MS", "1");
        std::env::set_var("CRITERION_SAMPLE_MS", "1");
        let mut b = Bencher {
            samples: 5,
            results: Vec::new(),
        };
        b.iter(|| std::hint::black_box(1 + 1));
        assert_eq!(b.results.len(), 5);
        assert!(b.results.iter().all(|&ns| ns > 0.0));
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
    }
}
