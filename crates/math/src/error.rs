//! Error type shared by the decompositions and solvers in this crate.

use std::error::Error;
use std::fmt;

/// Errors produced by the linear-algebra routines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MathError {
    /// Two operands had incompatible dimensions.
    ///
    /// Carries a human-readable description of the mismatch.
    DimensionMismatch(String),
    /// A matrix that must be square was not.
    NotSquare {
        /// Number of rows of the offending matrix.
        rows: usize,
        /// Number of columns of the offending matrix.
        cols: usize,
    },
    /// The matrix is singular (or numerically singular) and the requested
    /// operation is undefined.
    Singular,
    /// The matrix is not positive definite (Cholesky only).
    NotPositiveDefinite,
    /// An iterative algorithm failed to converge within its iteration budget.
    NoConvergence {
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// An input contained NaN or infinite entries.
    NonFinite,
}

impl fmt::Display for MathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MathError::DimensionMismatch(msg) => write!(f, "dimension mismatch: {msg}"),
            MathError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, got {rows}x{cols}")
            }
            MathError::Singular => write!(f, "matrix is singular"),
            MathError::NotPositiveDefinite => write!(f, "matrix is not positive definite"),
            MathError::NoConvergence { iterations } => {
                write!(
                    f,
                    "iteration failed to converge after {iterations} iterations"
                )
            }
            MathError::NonFinite => write!(f, "input contains non-finite values"),
        }
    }
}

impl Error for MathError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<(MathError, &str)> = vec![
            (
                MathError::DimensionMismatch("2x2 * 3x1".into()),
                "dimension mismatch: 2x2 * 3x1",
            ),
            (
                MathError::NotSquare { rows: 2, cols: 3 },
                "matrix must be square, got 2x3",
            ),
            (MathError::Singular, "matrix is singular"),
            (
                MathError::NotPositiveDefinite,
                "matrix is not positive definite",
            ),
            (
                MathError::NoConvergence { iterations: 30 },
                "iteration failed to converge after 30 iterations",
            ),
            (MathError::NonFinite, "input contains non-finite values"),
        ];
        for (err, want) in cases {
            assert_eq!(err.to_string(), want);
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MathError>();
    }
}
