//! Eigenvalues of general real matrices.
//!
//! The EUCON stability analysis (paper §6.2) reduces to a spectral-radius
//! test on the closed-loop system matrix `A(g)`: the distributed system is
//! stable iff every eigenvalue of `A` lies strictly inside the unit circle.
//! `A` is a general (non-symmetric) real matrix, so complex eigenvalues must
//! be handled.  The pipeline here is the classical dense one:
//!
//! 1. *balance* the matrix with diagonal similarity transforms,
//! 2. reduce to upper *Hessenberg* form with Householder reflections,
//! 3. run the implicitly-shifted *Francis QR* iteration with deflation,
//!    reading eigenvalues off the converged 1×1 and 2×2 diagonal blocks.

use crate::{MathError, Matrix};

/// A complex number, used only to report eigenvalues.
///
/// # Example
///
/// ```
/// let z = eucon_math::Complex::new(3.0, 4.0);
/// assert_eq!(z.abs(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number from its real and imaginary parts.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    pub fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Modulus `|z|`.
    pub fn abs(&self) -> f64 {
        f64::hypot(self.re, self.im)
    }

    /// Returns `true` when the imaginary part is exactly zero.
    pub fn is_real(&self) -> bool {
        self.im == 0.0
    }
}

impl std::fmt::Display for Complex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im == 0.0 {
            write!(f, "{:.6}", self.re)
        } else if self.im > 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

/// Maximum QR iterations per eigenvalue before giving up.
const MAX_ITER_PER_EIG: usize = 60;

/// Computes all eigenvalues of a general real square matrix.
///
/// Eigenvalues are returned in no particular order; complex eigenvalues come
/// in conjugate pairs.
///
/// # Errors
///
/// Returns [`MathError::NotSquare`] for non-square input,
/// [`MathError::NonFinite`] for NaN/infinite entries, and
/// [`MathError::NoConvergence`] if the QR iteration stalls (essentially
/// never happens for the small matrices in this repository).
///
/// # Example
///
/// ```
/// use eucon_math::{eig, Matrix};
///
/// # fn main() -> Result<(), eucon_math::MathError> {
/// // Rotation by 90°: eigenvalues ±i.
/// let a = Matrix::from_rows(&[&[0.0, -1.0], &[1.0, 0.0]]);
/// let mut eigs = eig(&a)?;
/// eigs.sort_by(|x, y| x.im.partial_cmp(&y.im).unwrap());
/// assert!((eigs[0].im + 1.0).abs() < 1e-9);
/// assert!((eigs[1].im - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn eig(a: &Matrix) -> Result<Vec<Complex>, MathError> {
    if !a.is_square() {
        return Err(MathError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    if !a.is_finite() {
        return Err(MathError::NonFinite);
    }
    let n = a.rows();
    if n == 0 {
        return Ok(Vec::new());
    }
    let mut h = a.clone();
    balance(&mut h);
    hessenberg(&mut h);
    hqr(&mut h)
}

/// Spectral radius: the largest eigenvalue modulus of a square matrix.
///
/// This is the quantity the EUCON stability analysis thresholds against 1.
///
/// # Errors
///
/// Propagates the errors of [`eig`](fn@eig).
///
/// # Example
///
/// ```
/// use eucon_math::{spectral_radius, Matrix};
///
/// # fn main() -> Result<(), eucon_math::MathError> {
/// let a = Matrix::from_diag(&[0.5, -0.9]);
/// assert!((spectral_radius(&a)? - 0.9).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn spectral_radius(a: &Matrix) -> Result<f64, MathError> {
    Ok(eig(a)?.iter().map(Complex::abs).fold(0.0, f64::max))
}

/// Balances a matrix in place using diagonal similarity transforms so that
/// row and column norms are comparable (improves eigenvalue accuracy).
fn balance(a: &mut Matrix) {
    const RADIX: f64 = 2.0;
    let n = a.rows();
    let sqrdx = RADIX * RADIX;
    loop {
        let mut done = true;
        for i in 0..n {
            let mut r = 0.0;
            let mut c = 0.0;
            for j in 0..n {
                if j != i {
                    c += a[(j, i)].abs();
                    r += a[(i, j)].abs();
                }
            }
            if c != 0.0 && r != 0.0 {
                let mut g = r / RADIX;
                let mut f = 1.0;
                let s = c + r;
                let mut c_acc = c;
                while c_acc < g {
                    f *= RADIX;
                    c_acc *= sqrdx;
                }
                g = r * RADIX;
                while c_acc > g {
                    f /= RADIX;
                    c_acc /= sqrdx;
                }
                if (c_acc + r) / f < 0.95 * s {
                    done = false;
                    let g = 1.0 / f;
                    for j in 0..n {
                        a[(i, j)] *= g;
                    }
                    for j in 0..n {
                        a[(j, i)] *= f;
                    }
                }
            }
        }
        if done {
            break;
        }
    }
}

/// Reduces a matrix to upper Hessenberg form in place using stabilized
/// elementary (Gaussian) similarity transforms with pivoting.
fn hessenberg(a: &mut Matrix) {
    let n = a.rows();
    if n < 3 {
        return;
    }
    for m in 1..(n - 1) {
        // Find the pivot in column m-1, rows m..n.
        let mut x: f64 = 0.0;
        let mut pivot = m;
        for j in m..n {
            if a[(j, m - 1)].abs() > x.abs() {
                x = a[(j, m - 1)];
                pivot = j;
            }
        }
        if pivot != m {
            // Swap rows and columns to bring the pivot to position m.
            for j in (m - 1)..n {
                let tmp = a[(pivot, j)];
                a[(pivot, j)] = a[(m, j)];
                a[(m, j)] = tmp;
            }
            for j in 0..n {
                let tmp = a[(j, pivot)];
                a[(j, pivot)] = a[(j, m)];
                a[(j, m)] = tmp;
            }
        }
        if x != 0.0 {
            for i in (m + 1)..n {
                let mut y = a[(i, m - 1)];
                if y != 0.0 {
                    y /= x;
                    a[(i, m - 1)] = y;
                    for j in m..n {
                        let delta = y * a[(m, j)];
                        a[(i, j)] -= delta;
                    }
                    for j in 0..n {
                        let delta = y * a[(j, i)];
                        a[(j, m)] += delta;
                    }
                }
            }
        }
    }
    // Zero the sub-Hessenberg entries left behind as multipliers.
    for i in 2..n {
        for j in 0..(i - 1) {
            a[(i, j)] = 0.0;
        }
    }
}

/// Francis QR iteration on an upper Hessenberg matrix; consumes the matrix
/// and returns all eigenvalues.
fn hqr(h: &mut Matrix) -> Result<Vec<Complex>, MathError> {
    let n = h.rows();
    let mut eigs = Vec::with_capacity(n);
    let mut anorm = 0.0;
    for i in 0..n {
        for j in i.saturating_sub(1)..n {
            anorm += h[(i, j)].abs();
        }
    }
    if anorm == 0.0 {
        // Zero matrix: all eigenvalues are zero.
        return Ok(vec![Complex::real(0.0); n]);
    }

    let mut nn = n as isize - 1; // index of the active trailing block
    let mut t = 0.0; // accumulated exceptional shifts
    while nn >= 0 {
        let mut its = 0;
        loop {
            // Look for a single small subdiagonal element.
            let mut l = nn;
            while l > 0 {
                let s =
                    h[(l as usize - 1, l as usize - 1)].abs() + h[(l as usize, l as usize)].abs();
                let s = if s == 0.0 { anorm } else { s };
                if h[(l as usize, l as usize - 1)].abs() <= f64::EPSILON * s {
                    h[(l as usize, l as usize - 1)] = 0.0;
                    break;
                }
                l -= 1;
            }
            let x = h[(nn as usize, nn as usize)];
            if l == nn {
                // One root found.
                eigs.push(Complex::real(x + t));
                nn -= 1;
                break;
            }
            let y = h[(nn as usize - 1, nn as usize - 1)];
            let w = h[(nn as usize, nn as usize - 1)] * h[(nn as usize - 1, nn as usize)];
            if l == nn - 1 {
                // Two roots found from the trailing 2x2 block.
                let p = 0.5 * (y - x);
                let q = p * p + w;
                let z = q.abs().sqrt();
                let x_shift = x + t;
                if q >= 0.0 {
                    // Real pair.
                    let z = p + z.copysign(p);
                    eigs.push(Complex::real(x_shift + z));
                    if z != 0.0 {
                        eigs.push(Complex::real(x_shift - w / z));
                    } else {
                        eigs.push(Complex::real(x_shift));
                    }
                } else {
                    // Complex conjugate pair.
                    eigs.push(Complex::new(x_shift + p, z));
                    eigs.push(Complex::new(x_shift + p, -z));
                }
                nn -= 2;
                break;
            }
            // No root yet: perform a Francis double-shift QR step.
            if its == MAX_ITER_PER_EIG {
                return Err(MathError::NoConvergence { iterations: its });
            }
            let (mut x, mut y, mut w) = (x, y, w);
            if its == 10 || its == 20 || its == 30 || its == 40 || its == 50 {
                // Exceptional shift to break symmetry-induced stalls.
                t += x;
                for i in 0..=(nn as usize) {
                    h[(i, i)] -= x;
                }
                let s = h[(nn as usize, nn as usize - 1)].abs()
                    + h[(nn as usize - 1, nn as usize - 2)].abs();
                x = 0.75 * s;
                y = x;
                w = -0.4375 * s * s;
            }
            its += 1;

            // Find two consecutive small subdiagonal elements to start the
            // implicit double shift at row m.
            let mut m = nn - 2;
            let (mut p, mut q, mut r) = (0.0, 0.0, 0.0);
            while m >= l {
                let mu = m as usize;
                let z = h[(mu, mu)];
                let rr = x - z;
                let ss = y - z;
                p = (rr * ss - w) / h[(mu + 1, mu)] + h[(mu, mu + 1)];
                q = h[(mu + 1, mu + 1)] - z - rr - ss;
                r = h[(mu + 2, mu + 1)];
                let s = p.abs() + q.abs() + r.abs();
                p /= s;
                q /= s;
                r /= s;
                if m == l {
                    break;
                }
                let u = h[(mu, mu - 1)].abs() * (q.abs() + r.abs());
                let v = p.abs() * (h[(mu - 1, mu - 1)].abs() + z.abs() + h[(mu + 1, mu + 1)].abs());
                if u <= f64::EPSILON * v {
                    break;
                }
                m -= 1;
            }
            let m = m.max(l) as usize;
            for i in (m + 2)..=(nn as usize) {
                h[(i, i - 2)] = 0.0;
                if i > m + 2 {
                    h[(i, i - 3)] = 0.0;
                }
            }

            // Double QR step on rows l..=nn and columns l..=nn.
            for k in m..(nn as usize) {
                if k != m {
                    p = h[(k, k - 1)];
                    q = h[(k + 1, k - 1)];
                    r = if k != nn as usize - 1 {
                        h[(k + 2, k - 1)]
                    } else {
                        0.0
                    };
                    x = p.abs() + q.abs() + r.abs();
                    if x != 0.0 {
                        p /= x;
                        q /= x;
                        r /= x;
                    }
                }
                let s = (p * p + q * q + r * r).sqrt().copysign(p);
                if s == 0.0 {
                    continue;
                }
                if k == m {
                    if l != m as isize {
                        h[(k, k - 1)] = -h[(k, k - 1)];
                    }
                } else {
                    h[(k, k - 1)] = -s * x;
                }
                p += s;
                let px = p / s;
                let py = q / s;
                let pz = r / s;
                let qq = q / p;
                let rr = r / p;
                // Row modification.
                for j in k..=(nn as usize) {
                    let mut pp = h[(k, j)] + qq * h[(k + 1, j)];
                    if k != nn as usize - 1 {
                        pp += rr * h[(k + 2, j)];
                        h[(k + 2, j)] -= pp * pz;
                    }
                    h[(k + 1, j)] -= pp * py;
                    h[(k, j)] -= pp * px;
                }
                // Column modification.
                let mmin = if (nn as usize) < k + 3 {
                    nn as usize
                } else {
                    k + 3
                };
                for i in (l as usize)..=mmin {
                    let mut pp = px * h[(i, k)] + py * h[(i, k + 1)];
                    if k != nn as usize - 1 {
                        pp += pz * h[(i, k + 2)];
                        h[(i, k + 2)] -= pp * rr;
                    }
                    h[(i, k + 1)] -= pp * qq;
                    h[(i, k)] -= pp;
                }
            }
        }
    }
    Ok(eigs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_real(mut eigs: Vec<Complex>) -> Vec<f64> {
        assert!(
            eigs.iter().all(|e| e.im.abs() < 1e-8),
            "expected real eigenvalues: {eigs:?}"
        );
        eigs.sort_by(|a, b| a.re.partial_cmp(&b.re).unwrap());
        eigs.iter().map(|e| e.re).collect()
    }

    #[test]
    fn diagonal_matrix() {
        let a = Matrix::from_diag(&[3.0, -1.0, 0.5]);
        let eigs = sorted_real(eig(&a).unwrap());
        assert!((eigs[0] + 1.0).abs() < 1e-10);
        assert!((eigs[1] - 0.5).abs() < 1e-10);
        assert!((eigs[2] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn symmetric_2x2_known_eigenvalues() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let eigs = sorted_real(eig(&a).unwrap());
        assert!((eigs[0] - 1.0).abs() < 1e-10);
        assert!((eigs[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn complex_pair_from_rotation() {
        // Rotation-scaling: eigenvalues 0.8·e^{±iθ}, |λ| = 0.8.
        let theta = std::f64::consts::FRAC_PI_4;
        let (s, c) = theta.sin_cos();
        let a = Matrix::from_rows(&[&[0.8 * c, -0.8 * s], &[0.8 * s, 0.8 * c]]);
        let rho = spectral_radius(&a).unwrap();
        assert!((rho - 0.8).abs() < 1e-9);
    }

    #[test]
    fn companion_matrix_roots() {
        // Companion matrix of x^3 - 6x^2 + 11x - 6 = (x-1)(x-2)(x-3).
        let a = Matrix::from_rows(&[&[6.0, -11.0, 6.0], &[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]]);
        let eigs = sorted_real(eig(&a).unwrap());
        assert!((eigs[0] - 1.0).abs() < 1e-8);
        assert!((eigs[1] - 2.0).abs() < 1e-8);
        assert!((eigs[2] - 3.0).abs() < 1e-8);
    }

    #[test]
    fn upper_triangular_eigs_are_diagonal() {
        let a = Matrix::from_rows(&[
            &[1.0, 5.0, -3.0, 2.0],
            &[0.0, 2.0, 9.0, 1.0],
            &[0.0, 0.0, -4.0, 7.0],
            &[0.0, 0.0, 0.0, 0.25],
        ]);
        let eigs = sorted_real(eig(&a).unwrap());
        let expected = [-4.0, 0.25, 1.0, 2.0];
        for (got, want) in eigs.iter().zip(expected.iter()) {
            assert!((got - want).abs() < 1e-8, "got {got}, want {want}");
        }
    }

    #[test]
    fn zero_and_empty_matrices() {
        assert!(eig(&Matrix::zeros(0, 0)).unwrap().is_empty());
        let eigs = eig(&Matrix::zeros(3, 3)).unwrap();
        assert_eq!(eigs.len(), 3);
        assert!(eigs.iter().all(|e| e.abs() == 0.0));
    }

    #[test]
    fn spectral_radius_of_stable_and_unstable() {
        let stable = Matrix::from_rows(&[&[0.5, 0.2], &[0.1, 0.4]]);
        assert!(spectral_radius(&stable).unwrap() < 1.0);
        let unstable = Matrix::from_rows(&[&[1.5, 0.0], &[0.0, 0.2]]);
        assert!((spectral_radius(&unstable).unwrap() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(matches!(
            eig(&Matrix::zeros(2, 3)),
            Err(MathError::NotSquare { .. })
        ));
        let mut a = Matrix::identity(2);
        a[(0, 1)] = f64::NAN;
        assert!(matches!(eig(&a), Err(MathError::NonFinite)));
    }

    #[test]
    fn conjugate_pairs_come_together() {
        let a = Matrix::from_rows(&[&[0.0, -2.0, 0.0], &[2.0, 0.0, 0.0], &[0.0, 0.0, 5.0]]);
        let eigs = eig(&a).unwrap();
        let n_complex = eigs.iter().filter(|e| !e.is_real()).count();
        assert_eq!(n_complex, 2);
        let sum_im: f64 = eigs.iter().map(|e| e.im).sum();
        assert!(sum_im.abs() < 1e-10, "conjugates should cancel");
    }

    #[test]
    fn large_defective_like_matrix_converges() {
        // Jordan-ish block (defective): eigenvalue 2 with multiplicity 4.
        let mut a = Matrix::identity(4).scale(2.0);
        for i in 0..3 {
            a[(i, i + 1)] = 1.0;
        }
        let eigs = eig(&a).unwrap();
        for e in &eigs {
            assert!(
                (e.abs() - 2.0).abs() < 1e-3,
                "defective eigenvalue accuracy: {e}"
            );
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn square(n: usize) -> impl Strategy<Value = Matrix> {
            proptest::collection::vec(-5.0..5.0f64, n * n)
                .prop_map(move |data| Matrix::from_vec(n, n, data))
        }

        proptest! {
            #[test]
            fn eigenvalue_sum_matches_trace(a in square(5)) {
                let eigs = eig(&a).unwrap();
                let sum_re: f64 = eigs.iter().map(|e| e.re).sum();
                let sum_im: f64 = eigs.iter().map(|e| e.im).sum();
                let scale = a.max_abs().max(1.0) * 5.0;
                prop_assert!((sum_re - a.trace()).abs() < 1e-6 * scale);
                prop_assert!(sum_im.abs() < 1e-6 * scale);
            }

            #[test]
            fn eigenvalue_product_matches_determinant(a in square(4)) {
                let eigs = eig(&a).unwrap();
                // Multiply complex eigenvalues; imaginary part must vanish.
                let (mut pre, mut pim) = (1.0, 0.0);
                for e in &eigs {
                    let (nre, nim) = (pre * e.re - pim * e.im, pre * e.im + pim * e.re);
                    pre = nre;
                    pim = nim;
                }
                let det = crate::Lu::decompose(&a).unwrap().det();
                let scale = det.abs().max(1.0);
                prop_assert!((pre - det).abs() < 1e-5 * scale.max(a.max_abs().powi(4)));
                prop_assert!(pim.abs() < 1e-5 * scale.max(a.max_abs().powi(4)));
            }

            #[test]
            fn similarity_preserves_spectral_radius(a in square(3)) {
                // T A T⁻¹ has the same eigenvalues; use a fixed well-
                // conditioned T.
                let t = Matrix::from_rows(&[&[1.0, 0.5, 0.0], &[0.0, 1.0, 0.25], &[0.0, 0.0, 1.0]]);
                let tinv = t.inverse().unwrap();
                let sim = &(&t * &a) * &tinv;
                let r1 = spectral_radius(&a).unwrap();
                let r2 = spectral_radius(&sim).unwrap();
                prop_assert!((r1 - r2).abs() < 1e-5 * r1.max(1.0));
            }
        }
    }
}
