//! Dense linear-algebra substrate for the EUCON reproduction.
//!
//! The EUCON controller (ICDCS 2004) relies on MATLAB for two numerical
//! services: the `lsqlin` constrained least-squares solver and the eigenvalue
//! computations used by the closed-loop stability analysis.  This crate
//! provides the dense linear algebra both of those need, written from scratch
//! so the reproduction has no external numerical dependencies:
//!
//! * [`Matrix`] and [`Vector`] — simple row-major dense containers with the
//!   usual arithmetic.
//! * [`Lu`] — LU decomposition with partial pivoting (solves, determinant,
//!   inverse).
//! * [`Qr`] — Householder QR (least squares, orthonormal bases).
//! * [`Cholesky`] — for symmetric positive-definite systems.
//! * [`eig`](fn@eig) — eigenvalues of a general real matrix via balancing,
//!   Hessenberg reduction and the Francis implicit double-shift QR iteration;
//!   [`spectral_radius`] is the helper the stability analysis actually uses.
//!
//! All problems in this repository are small (tens of rows), so the textbook
//! algorithms here are entirely adequate and are validated by unit and
//! property tests against algebraic identities.
//!
//! # Example
//!
//! ```
//! use eucon_math::{Matrix, Vector};
//!
//! # fn main() -> Result<(), eucon_math::MathError> {
//! let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
//! let b = Vector::from_slice(&[3.0, 5.0]);
//! let x = a.solve(&b)?;
//! assert!((x[0] - 0.8).abs() < 1e-12);
//! assert!((x[1] - 1.4).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cholesky;
mod eig;
mod error;
pub mod kernel;
mod lu;
mod matrix;
mod qr;
mod vector;

pub use cholesky::Cholesky;
pub use eig::{eig, spectral_radius, Complex};
pub use error::MathError;
pub use lu::Lu;
pub use matrix::Matrix;
pub use qr::Qr;
pub use vector::Vector;

/// Default absolute tolerance used by the comparison helpers in this crate.
pub const DEFAULT_TOL: f64 = 1e-9;

/// Returns `true` when `a` and `b` are within `tol` of each other.
///
/// Non-finite inputs are never approximately equal.
///
/// # Example
///
/// ```
/// assert!(eucon_math::approx_eq(1.0, 1.0 + 1e-12, 1e-9));
/// assert!(!eucon_math::approx_eq(1.0, 1.1, 1e-9));
/// ```
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    a.is_finite() && b.is_finite() && (a - b).abs() <= tol
}
