//! LU decomposition with partial pivoting.

use crate::{MathError, Matrix, Vector};

/// LU decomposition of a square matrix with partial (row) pivoting.
///
/// Factors `P·A = L·U` where `P` is a permutation, `L` is unit lower
/// triangular and `U` is upper triangular.  This is the solver behind
/// [`Matrix::solve`] and [`Matrix::inverse`], and the KKT-system solver of
/// the `eucon-qp` active-set method.
///
/// # Example
///
/// ```
/// use eucon_math::{Lu, Matrix, Vector};
///
/// # fn main() -> Result<(), eucon_math::MathError> {
/// let a = Matrix::from_rows(&[&[0.0, 2.0], &[1.0, 1.0]]); // needs pivoting
/// let lu = Lu::decompose(&a)?;
/// let x = lu.solve(&Vector::from_slice(&[2.0, 2.0]))?;
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Packed LU factors: strictly-lower part stores L (unit diagonal
    /// implicit), upper part stores U.
    lu: Matrix,
    /// Row permutation: row `i` of the factored matrix came from row
    /// `perm[i]` of the input.
    perm: Vec<usize>,
    /// Sign of the permutation (+1.0 or -1.0), used for the determinant.
    perm_sign: f64,
    /// True when a pivot fell below the singularity threshold.
    singular: bool,
}

/// Relative threshold below which a pivot is considered zero.
const PIVOT_RTOL: f64 = 1e-13;

impl Lu {
    /// Factors a square matrix.
    ///
    /// Singularity is detected lazily: `decompose` succeeds even for
    /// singular inputs so callers can still read [`Lu::det`] (which will be
    /// ~0), but [`Lu::solve`] and [`Lu::inverse`] will return
    /// [`MathError::Singular`].
    ///
    /// # Errors
    ///
    /// Returns [`MathError::NotSquare`] for non-square input and
    /// [`MathError::NonFinite`] when the input contains NaN or infinities.
    pub fn decompose(a: &Matrix) -> Result<Lu, MathError> {
        if !a.is_square() {
            return Err(MathError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        if !a.is_finite() {
            return Err(MathError::NonFinite);
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;
        let mut singular = n == 0;
        let scale = a.max_abs().max(1.0);

        for k in 0..n {
            // Partial pivoting: pick the largest magnitude in column k.
            let mut pivot_row = k;
            let mut pivot_mag = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let mag = lu[(i, k)].abs();
                if mag > pivot_mag {
                    pivot_mag = mag;
                    pivot_row = i;
                }
            }
            if pivot_mag <= PIVOT_RTOL * scale {
                singular = true;
                continue;
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
                perm.swap(k, pivot_row);
                perm_sign = -perm_sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    let delta = factor * lu[(k, j)];
                    lu[(i, j)] -= delta;
                }
            }
        }
        Ok(Lu {
            lu,
            perm,
            perm_sign,
            singular,
        })
    }

    /// Returns `true` when the factored matrix is (numerically) singular.
    pub fn is_singular(&self) -> bool {
        self.singular
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        if self.singular {
            return 0.0;
        }
        self.perm_sign * self.lu.diag().iter().product::<f64>()
    }

    /// Solves `A·x = b` using the stored factorization.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::Singular`] when the matrix was singular and
    /// [`MathError::DimensionMismatch`] when `b` has the wrong length.
    pub fn solve(&self, b: &Vector) -> Result<Vector, MathError> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(MathError::DimensionMismatch(format!(
                "rhs has length {}, expected {n}",
                b.len()
            )));
        }
        if self.singular {
            return Err(MathError::Singular);
        }
        // Forward substitution with permuted rhs: L·y = P·b.
        let mut x = Vector::from_iter(self.perm.iter().map(|&p| b[p]));
        for i in 1..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc;
        }
        // Back substitution: U·x = y.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Computes the inverse of the original matrix column by column.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::Singular`] when the matrix was singular.
    pub fn inverse(&self) -> Result<Matrix, MathError> {
        let n = self.lu.rows();
        let mut inv = Matrix::zeros(n, n);
        for j in 0..n {
            let mut e = Vector::zeros(n);
            e[j] = 1.0;
            let col = self.solve(&e)?;
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
        }
        Ok(inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &Matrix, x: &Vector, b: &Vector) -> f64 {
        (&a.mul_vec(x) - b).max_abs()
    }

    #[test]
    fn solves_well_conditioned_system() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 2.0]]);
        let b = Vector::from_slice(&[1.0, 2.0, 3.0]);
        let x = Lu::decompose(&a).unwrap().solve(&b).unwrap();
        assert!(residual(&a, &x, &b) < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let b = Vector::from_slice(&[2.0, 3.0]);
        let x = a.solve(&b).unwrap();
        assert_eq!(x.as_slice(), &[3.0, 2.0]);
    }

    #[test]
    fn detects_singular_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let lu = Lu::decompose(&a).unwrap();
        assert!(lu.is_singular());
        assert_eq!(lu.det(), 0.0);
        assert!(matches!(
            lu.solve(&Vector::zeros(2)),
            Err(MathError::Singular)
        ));
        assert!(matches!(lu.inverse(), Err(MathError::Singular)));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Lu::decompose(&a),
            Err(MathError::NotSquare { rows: 2, cols: 3 })
        ));
    }

    #[test]
    fn rejects_non_finite() {
        let mut a = Matrix::identity(2);
        a[(0, 0)] = f64::NAN;
        assert!(matches!(Lu::decompose(&a), Err(MathError::NonFinite)));
    }

    #[test]
    fn rhs_length_mismatch() {
        let lu = Lu::decompose(&Matrix::identity(2)).unwrap();
        assert!(matches!(
            lu.solve(&Vector::zeros(3)),
            Err(MathError::DimensionMismatch(_))
        ));
    }

    #[test]
    fn determinant_signs() {
        // det of [[0,1],[1,0]] = -1 (one row swap).
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        assert!((Lu::decompose(&a).unwrap().det() + 1.0).abs() < 1e-12);
        // det of diag(2,3) = 6.
        let d = Matrix::from_diag(&[2.0, 3.0]);
        assert!((Lu::decompose(&d).unwrap().det() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, 1.0], &[1.0, 3.0, 2.0], &[1.0, 0.0, 0.0]]);
        let inv = a.inverse().unwrap();
        assert!((&a * &inv).approx_eq(&Matrix::identity(3), 1e-12));
        assert!((&inv * &a).approx_eq(&Matrix::identity(3), 1e-12));
    }

    #[test]
    fn empty_matrix_is_singular() {
        let lu = Lu::decompose(&Matrix::zeros(0, 0)).unwrap();
        assert!(lu.is_singular());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Strategy for small well-scaled square matrices.
        fn square_matrix(n: usize) -> impl Strategy<Value = Matrix> {
            proptest::collection::vec(-10.0..10.0f64, n * n)
                .prop_map(move |data| Matrix::from_vec(n, n, data))
        }

        proptest! {
            #[test]
            fn solve_residual_is_small(a in square_matrix(4),
                                       b in proptest::collection::vec(-10.0..10.0f64, 4)) {
                let b = Vector::from_slice(&b);
                if let Ok(x) = a.solve(&b) {
                    // Residual scaled by the matrix magnitude stays tiny.
                    let scale = a.max_abs().max(1.0);
                    prop_assert!(residual(&a, &x, &b) / scale < 1e-6);
                }
            }

            #[test]
            fn det_of_product_is_product_of_dets(a in square_matrix(3), b in square_matrix(3)) {
                let da = Lu::decompose(&a).unwrap().det();
                let db = Lu::decompose(&b).unwrap().det();
                let dab = Lu::decompose(&(&a * &b)).unwrap().det();
                let scale = da.abs().max(db.abs()).max(1.0);
                prop_assert!((dab - da * db).abs() < 1e-6 * scale * scale);
            }
        }
    }
}
