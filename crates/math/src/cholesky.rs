//! Cholesky decomposition for symmetric positive-definite matrices.

use crate::{MathError, Matrix, Vector};

/// Cholesky decomposition `A = L·Lᵀ` of a symmetric positive-definite matrix.
///
/// The MPC cost Hessian `ΦᵀQΦ + ΔᵀRΔ` is symmetric positive definite by
/// construction, so the QP solver uses Cholesky both to solve its equality-
/// constrained subproblems and to certify convexity.
///
/// # Example
///
/// ```
/// use eucon_math::{Cholesky, Matrix, Vector};
///
/// # fn main() -> Result<(), eucon_math::MathError> {
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
/// let chol = Cholesky::decompose(&a)?;
/// let x = chol.solve(&Vector::from_slice(&[2.0, 1.0]))?;
/// assert!((&a.mul_vec(&x) - &Vector::from_slice(&[2.0, 1.0])).max_abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor.
    l: Matrix,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry of the input is the
    /// caller's responsibility (as with LAPACK's `dpotrf`).
    ///
    /// # Errors
    ///
    /// Returns [`MathError::NotSquare`] for non-square input,
    /// [`MathError::NonFinite`] for NaN/infinite entries, and
    /// [`MathError::NotPositiveDefinite`] when a pivot is non-positive.
    pub fn decompose(a: &Matrix) -> Result<Cholesky, MathError> {
        if !a.is_square() {
            return Err(MathError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        if !a.is_finite() {
            return Err(MathError::NonFinite);
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(MathError::NotPositiveDefinite);
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Returns the lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A·x = b` via forward/back substitution on the factor.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] when `b` has the wrong
    /// length.
    pub fn solve(&self, b: &Vector) -> Result<Vector, MathError> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(MathError::DimensionMismatch(format!(
                "rhs has length {}, expected {n}",
                b.len()
            )));
        }
        // L·y = b
        let mut y = b.clone();
        for i in 0..n {
            let mut acc = y[i];
            for j in 0..i {
                acc -= self.l[(i, j)] * y[j];
            }
            y[i] = acc / self.l[(i, i)];
        }
        // Lᵀ·x = y
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= self.l[(j, i)] * y[j];
            }
            y[i] = acc / self.l[(i, i)];
        }
        Ok(y)
    }

    /// Determinant of the original matrix (product of squared diagonals).
    pub fn det(&self) -> f64 {
        let d: f64 = self.l.diag().iter().product();
        d * d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_reconstructs() {
        let a = Matrix::from_rows(&[&[25.0, 15.0, -5.0], &[15.0, 18.0, 0.0], &[-5.0, 0.0, 11.0]]);
        let l = Cholesky::decompose(&a).unwrap().l().clone();
        assert!((&l * &l.transpose()).approx_eq(&a, 1e-12));
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::decompose(&a),
            Err(MathError::NotPositiveDefinite)
        ));
    }

    #[test]
    fn rejects_non_square_and_non_finite() {
        assert!(matches!(
            Cholesky::decompose(&Matrix::zeros(2, 3)),
            Err(MathError::NotSquare { .. })
        ));
        let mut a = Matrix::identity(2);
        a[(1, 1)] = f64::INFINITY;
        assert!(matches!(Cholesky::decompose(&a), Err(MathError::NonFinite)));
    }

    #[test]
    fn solve_matches_lu() {
        let a = Matrix::from_rows(&[&[6.0, 2.0], &[2.0, 5.0]]);
        let b = Vector::from_slice(&[1.0, -3.0]);
        let x_chol = Cholesky::decompose(&a).unwrap().solve(&b).unwrap();
        let x_lu = a.solve(&b).unwrap();
        assert!(x_chol.approx_eq(&x_lu, 1e-12));
    }

    #[test]
    fn det_positive() {
        let a = Matrix::from_diag(&[4.0, 9.0]);
        let chol = Cholesky::decompose(&a).unwrap();
        assert!((chol.det() - 36.0).abs() < 1e-12);
    }

    #[test]
    fn rhs_length_checked() {
        let chol = Cholesky::decompose(&Matrix::identity(2)).unwrap();
        assert!(matches!(
            chol.solve(&Vector::zeros(1)),
            Err(MathError::DimensionMismatch(_))
        ));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// SPD matrices built as MᵀM + n·I.
        fn spd(n: usize) -> impl Strategy<Value = Matrix> {
            proptest::collection::vec(-3.0..3.0f64, n * n).prop_map(move |data| {
                let m = Matrix::from_vec(n, n, data);
                &(&m.transpose() * &m) + &Matrix::identity(n).scale(n as f64)
            })
        }

        proptest! {
            #[test]
            fn solve_residual_small(a in spd(4), b in proptest::collection::vec(-5.0..5.0f64, 4)) {
                let b = Vector::from_slice(&b);
                let x = Cholesky::decompose(&a).unwrap().solve(&b).unwrap();
                let scale = a.max_abs().max(1.0);
                prop_assert!((&a.mul_vec(&x) - &b).max_abs() / scale < 1e-8);
            }

            #[test]
            fn factor_is_lower_triangular(a in spd(3)) {
                let l = Cholesky::decompose(&a).unwrap().l().clone();
                for i in 0..3 {
                    for j in (i + 1)..3 {
                        prop_assert_eq!(l[(i, j)], 0.0);
                    }
                }
            }
        }
    }
}
