//! Cholesky decomposition for symmetric positive-definite matrices.

use crate::{MathError, Matrix, Vector};

/// Cholesky decomposition `A = L·Lᵀ` of a symmetric positive-definite matrix.
///
/// The MPC cost Hessian `ΦᵀQΦ + ΔᵀRΔ` is symmetric positive definite by
/// construction, so the QP solver uses Cholesky both to solve its equality-
/// constrained subproblems and to certify convexity.
///
/// # Example
///
/// ```
/// use eucon_math::{Cholesky, Matrix, Vector};
///
/// # fn main() -> Result<(), eucon_math::MathError> {
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
/// let chol = Cholesky::decompose(&a)?;
/// let x = chol.solve(&Vector::from_slice(&[2.0, 1.0]))?;
/// assert!((&a.mul_vec(&x) - &Vector::from_slice(&[2.0, 1.0])).max_abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor.
    l: Matrix,
    /// Detected lower bandwidth of the input (and hence of `L`).
    band: usize,
}

/// Largest `i - j` with `a[(i, j)] != 0` in the lower triangle.
///
/// A matrix with lower bandwidth `b` has a Cholesky factor with the same
/// bandwidth, so the factorization below can skip all out-of-band terms.
fn lower_bandwidth(a: &Matrix) -> usize {
    let n = a.rows();
    let mut band = 0;
    for i in 0..n {
        let row = a.row(i);
        // The first nonzero gives this row's widest reach below the diagonal.
        for (j, &v) in row.iter().enumerate().take(i) {
            if v != 0.0 {
                band = band.max(i - j);
                break;
            }
        }
    }
    band
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry of the input is the
    /// caller's responsibility (as with LAPACK's `dpotrf`).
    ///
    /// The lower bandwidth of `a` is detected up front and the factorization
    /// loops are restricted to the band, taking the cost from `O(n³)` to
    /// `O(n·b²)`.  Because the factor of a banded matrix is banded, the
    /// skipped terms are all exactly zero: the banded path returns the same
    /// values as the dense one (a full-bandwidth input simply falls back to
    /// the classic dense loop).
    ///
    /// # Errors
    ///
    /// Returns [`MathError::NotSquare`] for non-square input,
    /// [`MathError::NonFinite`] for NaN/infinite entries, and
    /// [`MathError::NotPositiveDefinite`] when a pivot is non-positive.
    pub fn decompose(a: &Matrix) -> Result<Cholesky, MathError> {
        Cholesky::factor(a, lower_bandwidth(a))
    }

    /// Factors `a` assuming lower bandwidth `band` (the dense path is
    /// `band = n - 1`; the public entry point detects the true band).
    fn factor(a: &Matrix, band: usize) -> Result<Cholesky, MathError> {
        if !a.is_square() {
            return Err(MathError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        if !a.is_finite() {
            return Err(MathError::NonFinite);
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            let lo = i.saturating_sub(band);
            for j in lo..=i {
                let mut sum = a[(i, j)];
                {
                    let row_i = l.row(i);
                    let row_j = l.row(j);
                    // k < lo would multiply an out-of-band (exactly zero)
                    // entry of row i.
                    for k in lo..j {
                        sum -= row_i[k] * row_j[k];
                    }
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(MathError::NotPositiveDefinite);
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l, band })
    }

    /// Factors `a` assuming the given lower bandwidth instead of detecting
    /// it — the forced-bandwidth probe used by regression tests and
    /// benchmarks to pin the banded path against the dense reference
    /// (`band >= n - 1` runs the full dense loops).
    ///
    /// `band` must be an upper bound on the true lower bandwidth of `a`:
    /// entries below the assumed band are treated as exactly zero, so an
    /// understated bound silently factors a different matrix.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::NotPositiveDefinite`] as [`Cholesky::decompose`]
    /// does.
    pub fn decompose_with_bandwidth(a: &Matrix, band: usize) -> Result<Cholesky, MathError> {
        Cholesky::factor(a, band.min(a.rows().saturating_sub(1)))
    }

    /// Returns the lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Detected lower bandwidth of the factored matrix.
    ///
    /// `n - 1` means the dense fallback; anything smaller means the banded
    /// `O(n·b²)` factor/solve loops were in effect.
    pub fn bandwidth(&self) -> usize {
        self.band
    }

    /// Solves `A·x = b` via forward/back substitution on the factor.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] when `b` has the wrong
    /// length.
    pub fn solve(&self, b: &Vector) -> Result<Vector, MathError> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(MathError::DimensionMismatch(format!(
                "rhs has length {}, expected {n}",
                b.len()
            )));
        }
        // Both sweeps only visit the band of `L`; out-of-band entries are
        // exactly zero, so the skipped terms contribute nothing.
        // L·y = b
        let mut y = b.clone();
        for i in 0..n {
            let row = self.l.row(i);
            let mut acc = y[i];
            for j in i.saturating_sub(self.band)..i {
                acc -= row[j] * y[j];
            }
            y[i] = acc / row[i];
        }
        // Lᵀ·x = y
        for i in (0..n).rev() {
            let mut acc = y[i];
            let hi = (i + self.band).min(n - 1);
            for j in (i + 1)..=hi {
                acc -= self.l[(j, i)] * y[j];
            }
            y[i] = acc / self.l[(i, i)];
        }
        Ok(y)
    }

    /// Determinant of the original matrix (product of squared diagonals).
    pub fn det(&self) -> f64 {
        let d: f64 = self.l.diag().iter().product();
        d * d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_reconstructs() {
        let a = Matrix::from_rows(&[&[25.0, 15.0, -5.0], &[15.0, 18.0, 0.0], &[-5.0, 0.0, 11.0]]);
        let l = Cholesky::decompose(&a).unwrap().l().clone();
        assert!((&l * &l.transpose()).approx_eq(&a, 1e-12));
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::decompose(&a),
            Err(MathError::NotPositiveDefinite)
        ));
    }

    #[test]
    fn rejects_non_square_and_non_finite() {
        assert!(matches!(
            Cholesky::decompose(&Matrix::zeros(2, 3)),
            Err(MathError::NotSquare { .. })
        ));
        let mut a = Matrix::identity(2);
        a[(1, 1)] = f64::INFINITY;
        assert!(matches!(Cholesky::decompose(&a), Err(MathError::NonFinite)));
    }

    #[test]
    fn solve_matches_lu() {
        let a = Matrix::from_rows(&[&[6.0, 2.0], &[2.0, 5.0]]);
        let b = Vector::from_slice(&[1.0, -3.0]);
        let x_chol = Cholesky::decompose(&a).unwrap().solve(&b).unwrap();
        let x_lu = a.solve(&b).unwrap();
        assert!(x_chol.approx_eq(&x_lu, 1e-12));
    }

    #[test]
    fn det_positive() {
        let a = Matrix::from_diag(&[4.0, 9.0]);
        let chol = Cholesky::decompose(&a).unwrap();
        assert!((chol.det() - 36.0).abs() < 1e-12);
    }

    #[test]
    fn rhs_length_checked() {
        let chol = Cholesky::decompose(&Matrix::identity(2)).unwrap();
        assert!(matches!(
            chol.solve(&Vector::zeros(1)),
            Err(MathError::DimensionMismatch(_))
        ));
    }

    #[test]
    fn bandwidth_detection() {
        // Tridiagonal: band 1.
        let tri = Matrix::from_rows(&[
            &[4.0, 1.0, 0.0, 0.0],
            &[1.0, 4.0, 1.0, 0.0],
            &[0.0, 1.0, 4.0, 1.0],
            &[0.0, 0.0, 1.0, 4.0],
        ]);
        assert_eq!(Cholesky::decompose(&tri).unwrap().bandwidth(), 1);
        // Diagonal: band 0.
        assert_eq!(
            Cholesky::decompose(&Matrix::identity(3))
                .unwrap()
                .bandwidth(),
            0
        );
        // A corner entry forces the dense fallback.
        let mut dense = tri.clone();
        dense[(3, 0)] = 0.5;
        dense[(0, 3)] = 0.5;
        assert_eq!(Cholesky::decompose(&dense).unwrap().bandwidth(), 3);
    }

    #[test]
    fn banded_factor_matches_dense_fallback_exactly() {
        let tri = Matrix::from_rows(&[
            &[4.0, 1.2, 0.0, 0.0],
            &[1.2, 5.0, -0.7, 0.0],
            &[0.0, -0.7, 4.5, 0.3],
            &[0.0, 0.0, 0.3, 6.0],
        ]);
        let banded = Cholesky::decompose(&tri).unwrap();
        let dense = Cholesky::factor(&tri, 3).unwrap();
        assert_eq!(banded.l().as_slice(), dense.l().as_slice());
        let b = Vector::from_slice(&[1.0, -2.0, 0.5, 3.0]);
        assert_eq!(
            banded.solve(&b).unwrap().as_slice(),
            dense.solve(&b).unwrap().as_slice()
        );
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// SPD matrices built as MᵀM + n·I.
        fn spd(n: usize) -> impl Strategy<Value = Matrix> {
            proptest::collection::vec(-3.0..3.0f64, n * n).prop_map(move |data| {
                let m = Matrix::from_vec(n, n, data);
                &(&m.transpose() * &m) + &Matrix::identity(n).scale(n as f64)
            })
        }

        proptest! {
            #[test]
            fn solve_residual_small(a in spd(4), b in proptest::collection::vec(-5.0..5.0f64, 4)) {
                let b = Vector::from_slice(&b);
                let x = Cholesky::decompose(&a).unwrap().solve(&b).unwrap();
                let scale = a.max_abs().max(1.0);
                prop_assert!((&a.mul_vec(&x) - &b).max_abs() / scale < 1e-8);
            }

            #[test]
            fn factor_is_lower_triangular(a in spd(3)) {
                let l = Cholesky::decompose(&a).unwrap().l().clone();
                for i in 0..3 {
                    for j in (i + 1)..3 {
                        prop_assert_eq!(l[(i, j)], 0.0);
                    }
                }
            }
        }

        /// Random SPD matrices with lower bandwidth `<= band`: a banded
        /// random symmetric matrix made diagonally dominant.
        fn spd_banded(n: usize, band: usize) -> impl Strategy<Value = Matrix> {
            proptest::collection::vec(-2.0..2.0f64, n * n).prop_map(move |data| {
                let mut a = Matrix::zeros(n, n);
                for i in 0..n {
                    for j in 0..=i {
                        if i - j <= band {
                            let v = data[i * n + j];
                            a[(i, j)] = v;
                            a[(j, i)] = v;
                        }
                    }
                }
                // Diagonal dominance makes the matrix positive definite.
                for i in 0..n {
                    let row_sum: f64 = (0..n).map(|j| a[(i, j)].abs()).sum();
                    a[(i, i)] = row_sum + 1.0;
                }
                a
            })
        }

        proptest! {
            #[test]
            fn banded_solve_matches_dense_cholesky(
                a in spd_banded(8, 2),
                b in proptest::collection::vec(-5.0..5.0f64, 8),
            ) {
                let b = Vector::from_slice(&b);
                let banded = Cholesky::decompose(&a).unwrap();
                prop_assert!(banded.bandwidth() <= 2);
                // Dense reference: same input factored with the full-band
                // (classic O(n³)) loops.
                let dense = Cholesky::factor(&a, 7).unwrap();
                let xb = banded.solve(&b).unwrap();
                let xd = dense.solve(&b).unwrap();
                for i in 0..8 {
                    prop_assert!((xb[i] - xd[i]).abs() <= 1e-12);
                    prop_assert_eq!(xb[i], xd[i]); // in fact identical
                }
                for (p, q) in banded.l().as_slice().iter().zip(dense.l().as_slice()) {
                    prop_assert_eq!(p, q);
                }
            }
        }
    }
}
