//! Dense row-major matrix type.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

use crate::{Lu, MathError, Qr, Vector};

/// A dense, row-major matrix of `f64` values.
///
/// `Matrix` is the workhorse container of the EUCON reproduction: the
/// subtask-allocation matrix `F`, the MPC prediction matrices, the QP
/// constraint matrices and the closed-loop system matrix are all `Matrix`
/// values.  The type favours clarity over raw speed — every problem in this
/// repository is tiny by linear-algebra standards.
///
/// # Example
///
/// ```
/// use eucon_math::Matrix;
///
/// let f = Matrix::from_rows(&[&[35.0, 35.0, 0.0], &[0.0, 35.0, 45.0]]);
/// assert_eq!(f.rows(), 2);
/// assert_eq!(f.cols(), 3);
/// assert_eq!(f[(0, 1)], 35.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    ///
    /// # Example
    ///
    /// ```
    /// let z = eucon_math::Matrix::zeros(2, 3);
    /// assert_eq!(z[(1, 2)], 0.0);
    /// ```
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    ///
    /// # Example
    ///
    /// ```
    /// let i = eucon_math::Matrix::identity(3);
    /// assert_eq!(i[(0, 0)], 1.0);
    /// assert_eq!(i[(0, 1)], 0.0);
    /// ```
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a slice of rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not all have the same length.
    ///
    /// # Example
    ///
    /// ```
    /// let m = eucon_math::Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
    /// assert_eq!(m[(1, 0)], 3.0);
    /// ```
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        assert!(
            rows.iter().all(|row| row.len() == c),
            "all rows must have the same length"
        );
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        Matrix { rows, cols, data }
    }

    /// Creates a matrix by evaluating `f(row, col)` for every entry.
    ///
    /// # Example
    ///
    /// ```
    /// let m = eucon_math::Matrix::from_fn(2, 2, |i, j| (i + j) as f64);
    /// assert_eq!(m[(1, 1)], 2.0);
    /// ```
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    ///
    /// # Example
    ///
    /// ```
    /// let g = eucon_math::Matrix::from_diag(&[2.0, 0.5]);
    /// assert_eq!(g[(0, 0)], 2.0);
    /// assert_eq!(g[(0, 1)], 0.0);
    /// ```
    pub fn from_diag(diag: &[f64]) -> Self {
        let mut m = Matrix::zeros(diag.len(), diag.len());
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` when the matrix has the same number of rows and columns.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Returns `true` when every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Borrows the underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(
            i < self.rows,
            "row index {i} out of bounds for {} rows",
            self.rows
        );
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns column `j` as an owned [`Vector`].
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn col(&self, j: usize) -> Vector {
        assert!(
            j < self.cols,
            "column index {j} out of bounds for {} cols",
            self.cols
        );
        Vector::from_iter((0..self.rows).map(|i| self[(i, j)]))
    }

    /// Returns the main diagonal as a [`Vector`].
    pub fn diag(&self) -> Vector {
        let n = self.rows.min(self.cols);
        Vector::from_iter((0..n).map(|i| self[(i, i)]))
    }

    /// Returns the transpose.
    ///
    /// # Example
    ///
    /// ```
    /// let m = eucon_math::Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
    /// let t = m.transpose();
    /// assert_eq!(t.rows(), 3);
    /// assert_eq!(t[(2, 0)], 3.0);
    /// ```
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Sum of the diagonal entries.
    pub fn trace(&self) -> f64 {
        self.diag().iter().sum()
    }

    /// Returns a new matrix with `f` applied to every entry.
    pub fn map<F: FnMut(f64) -> f64>(&self, mut f: F) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Multiplies every entry by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|v| v * s)
    }

    /// Matrix–vector product `self * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    ///
    /// # Example
    ///
    /// ```
    /// use eucon_math::{Matrix, Vector};
    /// let a = Matrix::identity(2);
    /// let x = Vector::from_slice(&[3.0, 4.0]);
    /// assert_eq!(a.mul_vec(&x).as_slice(), &[3.0, 4.0]);
    /// ```
    pub fn mul_vec(&self, x: &Vector) -> Vector {
        assert_eq!(
            x.len(),
            self.cols,
            "mul_vec: vector length {} does not match {} columns",
            x.len(),
            self.cols
        );
        let x = x.as_slice();
        Vector::from_iter(
            (0..self.rows).map(|i| crate::kernel::dot(&self.data[i * self.cols..][..self.cols], x)),
        )
    }

    /// Writes `self · x` into `out` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()` or `out.len() != self.rows()`.
    pub fn mul_vec_into(&self, x: &Vector, out: &mut Vector) {
        assert_eq!(
            x.len(),
            self.cols,
            "mul_vec_into: vector length {} does not match {} columns",
            x.len(),
            self.cols
        );
        assert_eq!(
            out.len(),
            self.rows,
            "mul_vec_into: output length {} does not match {} rows",
            out.len(),
            self.rows
        );
        let xs = x.as_slice();
        let out = out.as_mut_slice();
        for (i, o) in out.iter_mut().enumerate() {
            *o = crate::kernel::dot(&self.data[i * self.cols..][..self.cols], xs);
        }
    }

    /// Accumulates `self · x` onto `out` (i.e. `out += self · x`) without
    /// allocating.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()` or `out.len() != self.rows()`.
    pub fn mul_vec_acc(&self, x: &Vector, out: &mut Vector) {
        assert_eq!(
            x.len(),
            self.cols,
            "mul_vec_acc: vector length {} does not match {} columns",
            x.len(),
            self.cols
        );
        assert_eq!(
            out.len(),
            self.rows,
            "mul_vec_acc: output length {} does not match {} rows",
            out.len(),
            self.rows
        );
        let xs = x.as_slice();
        let out = out.as_mut_slice();
        for (i, o) in out.iter_mut().enumerate() {
            *o += crate::kernel::dot(&self.data[i * self.cols..][..self.cols], xs);
        }
    }

    /// Extracts the sub-matrix with rows `r0..r1` and columns `c0..c1`
    /// (half-open ranges).
    ///
    /// # Panics
    ///
    /// Panics if the ranges are out of bounds or reversed.
    pub fn submatrix(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Matrix {
        assert!(r0 <= r1 && r1 <= self.rows, "invalid row range {r0}..{r1}");
        assert!(
            c0 <= c1 && c1 <= self.cols,
            "invalid column range {c0}..{c1}"
        );
        Matrix::from_fn(r1 - r0, c1 - c0, |i, j| self[(r0 + i, c0 + j)])
    }

    /// Copies `block` into `self` with its upper-left corner at `(r0, c0)`.
    ///
    /// # Panics
    ///
    /// Panics if the block does not fit.
    pub fn set_block(&mut self, r0: usize, c0: usize, block: &Matrix) {
        assert!(
            r0 + block.rows <= self.rows && c0 + block.cols <= self.cols,
            "block of size {}x{} does not fit at ({r0}, {c0}) in {}x{} matrix",
            block.rows,
            block.cols,
            self.rows,
            self.cols
        );
        for i in 0..block.rows {
            for j in 0..block.cols {
                self[(r0 + i, c0 + j)] = block[(i, j)];
            }
        }
    }

    /// Stacks `self` on top of `other`.
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vstack requires equal column counts");
        let mut out = Matrix::zeros(self.rows + other.rows, self.cols);
        out.set_block(0, 0, self);
        out.set_block(self.rows, 0, other);
        out
    }

    /// Places `self` to the left of `other`.
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ.
    pub fn hstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hstack requires equal row counts");
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        out.set_block(0, 0, self);
        out.set_block(0, self.cols, other);
        out
    }

    /// Frobenius norm (square root of the sum of squared entries).
    pub fn norm_fro(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Infinity norm (maximum absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows)
            .map(|i| self.row(i).iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Largest absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |acc, v| acc.max(v.abs()))
    }

    /// Entry-wise approximate equality within `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| crate::approx_eq(*a, *b, tol))
    }

    /// Solves `self * x = b` for square `self` via LU decomposition.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::NotSquare`] for non-square matrices,
    /// [`MathError::Singular`] for singular ones, and
    /// [`MathError::DimensionMismatch`] when `b` has the wrong length.
    pub fn solve(&self, b: &Vector) -> Result<Vector, MathError> {
        Lu::decompose(self)?.solve(b)
    }

    /// Computes the inverse of a square matrix.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::NotSquare`] or [`MathError::Singular`].
    pub fn inverse(&self) -> Result<Matrix, MathError> {
        Lu::decompose(self)?.inverse()
    }

    /// Solves the (possibly overdetermined) least-squares problem
    /// `min ‖self·x − b‖₂` via Householder QR.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] when `b` has the wrong
    /// length, or [`MathError::Singular`] when the matrix is rank deficient.
    pub fn least_squares(&self, b: &Vector) -> Result<Vector, MathError> {
        Qr::decompose(self).solve_least_squares(b)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  [")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:>10.4}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i}, {j}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i}, {j}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "matrix addition requires equal shapes"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "matrix subtraction requires equal shapes"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self.scale(-1.0)
    }
}

impl Mul for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matrix product requires inner dimensions to match ({}x{} * {}x{})",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        // Cache-blocked i–l–j loop over column tiles of `rhs`.  For every
        // output entry the l terms still accumulate in increasing order and
        // exactly-zero lhs entries are still skipped, so the result is
        // bit-identical to the untiled triple loop (the property tests and
        // the golden closed-loop hashes both pin this).
        const TILE: usize = 64;
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        let rc = rhs.cols;
        for jb in (0..rc).step_by(TILE) {
            let je = (jb + TILE).min(rc);
            for i in 0..self.rows {
                let lhs_row = &self.data[i * self.cols..][..self.cols];
                let out_row = &mut out.data[i * rc..][..rc];
                for (l, &a) in lhs_row.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let rhs_row = &rhs.data[l * rc..][..rc];
                    for (o, &r) in out_row[jb..je].iter_mut().zip(&rhs_row[jb..je]) {
                        *o += a * r;
                    }
                }
            }
        }
        out
    }
}

impl Mul<&Vector> for &Matrix {
    type Output = Vector;

    fn mul(self, rhs: &Vector) -> Vector {
        self.mul_vec(rhs)
    }
}

impl Default for Matrix {
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));

        let i = Matrix::identity(3);
        assert!(i.is_square());
        assert_eq!(i.trace(), 3.0);
    }

    #[test]
    fn from_rows_and_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 1)], 4.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0).as_slice(), &[1.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn from_rows_rejects_ragged_input() {
        let _ = Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let m = Matrix::zeros(2, 2);
        let _ = m[(2, 0)];
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_against_hand_computed() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = &a * &b;
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, -2.5, 3.0], &[0.0, 4.0, 5.5]]);
        let i = Matrix::identity(3);
        assert!((&a * &i).approx_eq(&a, 0.0));
    }

    #[test]
    fn mul_vec_matches_matmul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let x = Vector::from_slice(&[5.0, 6.0]);
        let y = a.mul_vec(&x);
        assert_eq!(y.as_slice(), &[17.0, 39.0]);
    }

    #[test]
    fn mul_vec_into_and_acc_match_mul_vec() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[-1.0, 0.5]]);
        let x = Vector::from_slice(&[5.0, 6.0]);
        let expected = a.mul_vec(&x);

        let mut out = Vector::filled(3, 7.0); // stale contents must be overwritten
        a.mul_vec_into(&x, &mut out);
        assert_eq!(out.as_slice(), expected.as_slice());

        a.mul_vec_acc(&x, &mut out);
        let doubled = expected.scale(2.0);
        assert_eq!(out.as_slice(), doubled.as_slice());
    }

    #[test]
    #[should_panic(expected = "mul_vec_into")]
    fn mul_vec_into_checks_output_length() {
        let a = Matrix::identity(2);
        let x = Vector::zeros(2);
        let mut out = Vector::zeros(3);
        a.mul_vec_into(&x, &mut out);
    }

    #[test]
    fn add_sub_neg() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 5.0]]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 7.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 3.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
    }

    #[test]
    fn stacking() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        let v = a.vstack(&b);
        assert_eq!(v.rows(), 2);
        assert_eq!(v[(1, 1)], 4.0);
        let h = a.hstack(&b);
        assert_eq!(h.cols(), 4);
        assert_eq!(h[(0, 3)], 4.0);
    }

    #[test]
    fn submatrix_and_set_block() {
        let m = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let s = m.submatrix(1, 3, 2, 4);
        assert_eq!(s, Matrix::from_rows(&[&[6.0, 7.0], &[10.0, 11.0]]));

        let mut z = Matrix::zeros(3, 3);
        z.set_block(1, 1, &Matrix::identity(2));
        assert_eq!(z[(1, 1)], 1.0);
        assert_eq!(z[(2, 2)], 1.0);
        assert_eq!(z[(0, 0)], 0.0);
    }

    #[test]
    fn norms() {
        let m = Matrix::from_rows(&[&[3.0, 4.0], &[0.0, 0.0]]);
        assert!((m.norm_fro() - 5.0).abs() < 1e-12);
        assert_eq!(m.norm_inf(), 7.0);
        assert_eq!(m.max_abs(), 4.0);
    }

    #[test]
    fn diag_helpers() {
        let g = Matrix::from_diag(&[2.0, 3.0]);
        assert_eq!(g.diag().as_slice(), &[2.0, 3.0]);
        assert_eq!(g[(0, 1)], 0.0);
        assert_eq!(g.trace(), 5.0);
    }

    #[test]
    fn debug_output_is_nonempty() {
        let repr = format!("{:?}", Matrix::zeros(1, 1));
        assert!(repr.contains("Matrix 1x1"));
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut m = Matrix::zeros(2, 2);
        assert!(m.is_finite());
        m[(0, 1)] = f64::NAN;
        assert!(!m.is_finite());
    }

    /// The untiled i–l–j triple loop the blocked `Mul` impl replaced.
    fn reference_mul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows, b.cols);
        for i in 0..a.rows {
            for l in 0..a.cols {
                let v = a[(i, l)];
                if v == 0.0 {
                    continue;
                }
                for j in 0..b.cols {
                    out[(i, j)] += v * b[(l, j)];
                }
            }
        }
        out
    }

    #[test]
    fn mul_vec_tail_lengths_match_naive() {
        // Columns 1..=9 cover every tail size of the unrolled row kernel.
        for cols in 1..=9usize {
            let a = Matrix::from_fn(3, cols, |i, j| 0.7 * i as f64 - 0.3 * j as f64 + 0.1);
            let x = Vector::from_iter((0..cols).map(|j| 1.0 - 0.25 * j as f64));
            let naive = Vector::from_iter((0..3).map(|i| {
                a.row(i)
                    .iter()
                    .zip(x.iter())
                    .map(|(p, q)| p * q)
                    .sum::<f64>()
            }));
            assert_eq!(a.mul_vec(&x).as_slice(), naive.as_slice(), "cols {cols}");

            let mut out = Vector::filled(3, 9.0);
            a.mul_vec_into(&x, &mut out);
            assert_eq!(out.as_slice(), naive.as_slice(), "into, cols {cols}");

            a.mul_vec_acc(&x, &mut out);
            assert_eq!(
                out.as_slice(),
                naive.scale(2.0).as_slice(),
                "acc, cols {cols}"
            );
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Shapes up to and across the 64-column tile boundary.
        fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
            (1usize..8, 1usize..8, 1usize..70)
        }

        proptest! {
            #[test]
            fn tiled_mul_is_bit_identical_to_triple_loop(
                dims in dims(),
                seed in 0u64..1024,
            ) {
                let (m, k, n) = dims;
                // Deterministic pseudo-random entries with some exact zeros
                // so the zero-skip path is exercised.
                let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                let mut next = move || {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let v = ((state >> 33) as f64) / ((1u64 << 31) as f64) - 1.0;
                    if v.abs() < 0.1 { 0.0 } else { v }
                };
                let a = Matrix::from_fn(m, k, |_, _| next());
                let b = Matrix::from_fn(k, n, |_, _| next());
                let tiled = &a * &b;
                let reference = reference_mul(&a, &b);
                for (x, y) in tiled.as_slice().iter().zip(reference.as_slice()) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }
}
