//! Householder QR decomposition and least-squares solves.

use crate::{MathError, Matrix, Vector};

/// Householder QR decomposition of an `m × n` matrix with `m ≥ n`.
///
/// Factors `A = Q·R` with orthogonal `Q` and upper-triangular `R`.  Used for
/// numerically-stable least-squares solves inside the MPC controller (the
/// unconstrained solution of the tracking problem) and as a cross-check for
/// the active-set QP solver.
///
/// # Example
///
/// ```
/// use eucon_math::{Matrix, Qr, Vector};
///
/// # fn main() -> Result<(), eucon_math::MathError> {
/// // Overdetermined fit: best x for [[1],[1],[1]]·x ≈ [1,2,3] is the mean.
/// let a = Matrix::from_rows(&[&[1.0], &[1.0], &[1.0]]);
/// let x = Qr::decompose(&a).solve_least_squares(&Vector::from_slice(&[1.0, 2.0, 3.0]))?;
/// assert!((x[0] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Qr {
    /// Packed factors: R in the upper triangle, Householder vectors below.
    qr: Matrix,
    /// Scaling coefficients of the Householder reflectors.
    tau: Vec<f64>,
}

/// Relative threshold below which a diagonal of `R` marks rank deficiency.
const RANK_RTOL: f64 = 1e-12;

impl Qr {
    /// Factors a matrix using Householder reflections.
    ///
    /// Works for any shape; least-squares solving additionally requires
    /// `rows ≥ cols`.
    pub fn decompose(a: &Matrix) -> Qr {
        let m = a.rows();
        let n = a.cols();
        let mut qr = a.clone();
        let steps = m.min(n);
        let mut tau = vec![0.0; steps];

        for k in 0..steps {
            // Build the Householder reflector annihilating column k below
            // the diagonal.
            let mut norm = 0.0;
            for i in k..m {
                norm = f64::hypot(norm, qr[(i, k)]);
            }
            if norm == 0.0 {
                tau[k] = 0.0;
                continue;
            }
            let alpha = if qr[(k, k)] >= 0.0 { -norm } else { norm };
            let v0 = qr[(k, k)] - alpha;
            // v = [v0, A[k+1..m, k]]; normalize so v[0] = 1 (stored implicitly).
            for i in (k + 1)..m {
                qr[(i, k)] /= v0;
            }
            tau[k] = -v0 / alpha;
            qr[(k, k)] = alpha;

            // Apply the reflector to the remaining columns.
            for j in (k + 1)..n {
                let mut dot = qr[(k, j)];
                for i in (k + 1)..m {
                    dot += qr[(i, k)] * qr[(i, j)];
                }
                let coef = tau[k] * dot;
                qr[(k, j)] -= coef;
                for i in (k + 1)..m {
                    let delta = coef * qr[(i, k)];
                    qr[(i, j)] -= delta;
                }
            }
        }
        Qr { qr, tau }
    }

    /// Returns the upper-triangular factor `R` (size `min(m,n)+ × n`, full
    /// `m × n` with zeros below the diagonal).
    pub fn r(&self) -> Matrix {
        let m = self.qr.rows();
        let n = self.qr.cols();
        Matrix::from_fn(m, n, |i, j| if j >= i { self.qr[(i, j)] } else { 0.0 })
    }

    /// Returns the full orthogonal factor `Q` (size `m × m`).
    pub fn q(&self) -> Matrix {
        let m = self.qr.rows();
        let mut q = Matrix::identity(m);
        // Accumulate reflectors in reverse order: Q = H_0 · H_1 ⋯ H_{k-1}.
        for k in (0..self.tau.len()).rev() {
            if self.tau[k] == 0.0 {
                continue;
            }
            for j in 0..m {
                let mut dot = q[(k, j)];
                for i in (k + 1)..m {
                    dot += self.qr[(i, k)] * q[(i, j)];
                }
                let coef = self.tau[k] * dot;
                q[(k, j)] -= coef;
                for i in (k + 1)..m {
                    let delta = coef * self.qr[(i, k)];
                    q[(i, j)] -= delta;
                }
            }
        }
        q
    }

    /// Applies `Qᵀ` to a vector in place (without forming `Q`).
    fn apply_qt(&self, b: &Vector) -> Vector {
        let m = self.qr.rows();
        let mut y = b.clone();
        for k in 0..self.tau.len() {
            if self.tau[k] == 0.0 {
                continue;
            }
            let mut dot = y[k];
            for i in (k + 1)..m {
                dot += self.qr[(i, k)] * y[i];
            }
            let coef = self.tau[k] * dot;
            y[k] -= coef;
            for i in (k + 1)..m {
                let delta = coef * self.qr[(i, k)];
                y[i] -= delta;
            }
        }
        y
    }

    /// Computes the Moore–Penrose pseudo-inverse `A⁺ = (AᵀA)⁻¹Aᵀ` of a
    /// full-column-rank matrix (`m ≥ n`), column by column via the QR
    /// least-squares solve.
    ///
    /// Used by the stability analysis to derive the unconstrained MPC
    /// control law.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::Singular`] for rank-deficient input and
    /// [`MathError::DimensionMismatch`] when `m < n`.
    pub fn pseudo_inverse(&self) -> Result<Matrix, MathError> {
        let m = self.qr.rows();
        let n = self.qr.cols();
        let mut pinv = Matrix::zeros(n, m);
        for j in 0..m {
            let mut e = Vector::zeros(m);
            e[j] = 1.0;
            let col = self.solve_least_squares(&e)?;
            for i in 0..n {
                pinv[(i, j)] = col[i];
            }
        }
        Ok(pinv)
    }

    /// Solves `min ‖A·x − b‖₂` for the factored `A`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] when `b.len() != m` or when
    /// the system is underdetermined (`m < n`), and [`MathError::Singular`]
    /// when `A` is rank deficient.
    pub fn solve_least_squares(&self, b: &Vector) -> Result<Vector, MathError> {
        let m = self.qr.rows();
        let n = self.qr.cols();
        if b.len() != m {
            return Err(MathError::DimensionMismatch(format!(
                "rhs has length {}, expected {m}",
                b.len()
            )));
        }
        if m < n {
            return Err(MathError::DimensionMismatch(format!(
                "least squares requires rows >= cols, got {m}x{n}"
            )));
        }
        let scale = self.qr.max_abs().max(1.0);
        let y = self.apply_qt(b);
        // Back substitution on the top n×n block of R.
        let mut x = Vector::zeros(n);
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= self.qr[(i, j)] * x[j];
            }
            let d = self.qr[(i, i)];
            if d.abs() <= RANK_RTOL * scale {
                return Err(MathError::Singular);
            }
            x[i] = acc / d;
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qr_reconstructs_input() {
        let a = Matrix::from_rows(&[
            &[12.0, -51.0, 4.0],
            &[6.0, 167.0, -68.0],
            &[-4.0, 24.0, -41.0],
        ]);
        let qr = Qr::decompose(&a);
        let recon = &qr.q() * &qr.r();
        assert!(recon.approx_eq(&a, 1e-9));
    }

    #[test]
    fn q_is_orthogonal() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let q = Qr::decompose(&a).q();
        let qtq = &q.transpose() * &q;
        assert!(qtq.approx_eq(&Matrix::identity(3), 1e-12));
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let r = Qr::decompose(&a).r();
        for i in 0..r.rows() {
            for j in 0..i.min(r.cols()) {
                assert_eq!(r[(i, j)], 0.0, "R[{i},{j}] should be zero");
            }
        }
    }

    #[test]
    fn least_squares_matches_normal_equations() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]);
        let b = Vector::from_slice(&[1.0, 2.9, 5.1, 7.0]);
        let x = Qr::decompose(&a).solve_least_squares(&b).unwrap();
        // Solve (AᵀA)x = Aᵀb directly as the oracle.
        let at = a.transpose();
        let oracle = (&at * &a).solve(&at.mul_vec(&b)).unwrap();
        assert!(x.approx_eq(&oracle, 1e-9));
    }

    #[test]
    fn square_exact_solve() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let b = Vector::from_slice(&[3.0, 5.0]);
        let x = Qr::decompose(&a).solve_least_squares(&b).unwrap();
        assert!((&a.mul_vec(&x) - &b).max_abs() < 1e-12);
    }

    #[test]
    fn rank_deficient_is_reported() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let r = Qr::decompose(&a).solve_least_squares(&Vector::zeros(3));
        assert_eq!(r, Err(MathError::Singular));
    }

    #[test]
    fn underdetermined_is_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let r = Qr::decompose(&a).solve_least_squares(&Vector::zeros(1));
        assert!(matches!(r, Err(MathError::DimensionMismatch(_))));
    }

    #[test]
    fn rhs_length_checked() {
        let a = Matrix::identity(2);
        let r = Qr::decompose(&a).solve_least_squares(&Vector::zeros(3));
        assert!(matches!(r, Err(MathError::DimensionMismatch(_))));
    }

    #[test]
    fn pseudo_inverse_left_inverts() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 7.0]]);
        let pinv = Qr::decompose(&a).pseudo_inverse().unwrap();
        assert_eq!((pinv.rows(), pinv.cols()), (2, 3));
        assert!((&pinv * &a).approx_eq(&Matrix::identity(2), 1e-9));
    }

    #[test]
    fn pseudo_inverse_square_equals_inverse() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let pinv = Qr::decompose(&a).pseudo_inverse().unwrap();
        assert!(pinv.approx_eq(&a.inverse().unwrap(), 1e-10));
    }

    #[test]
    fn pseudo_inverse_rejects_rank_deficient() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        assert!(matches!(
            Qr::decompose(&a).pseudo_inverse(),
            Err(MathError::Singular)
        ));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn matrix(m: usize, n: usize) -> impl Strategy<Value = Matrix> {
            proptest::collection::vec(-10.0..10.0f64, m * n)
                .prop_map(move |data| Matrix::from_vec(m, n, data))
        }

        proptest! {
            #[test]
            fn reconstruction_property(a in matrix(5, 3)) {
                let qr = Qr::decompose(&a);
                prop_assert!((&qr.q() * &qr.r()).approx_eq(&a, 1e-8));
            }

            #[test]
            fn orthogonality_property(a in matrix(4, 4)) {
                let q = Qr::decompose(&a).q();
                prop_assert!((&q.transpose() * &q).approx_eq(&Matrix::identity(4), 1e-9));
            }

            #[test]
            fn residual_is_orthogonal_to_columns(a in matrix(6, 2),
                                                 b in proptest::collection::vec(-5.0..5.0f64, 6)) {
                let b = Vector::from_slice(&b);
                if let Ok(x) = Qr::decompose(&a).solve_least_squares(&b) {
                    // Optimality: Aᵀ(Ax − b) = 0.
                    let resid = &a.mul_vec(&x) - &b;
                    let grad = a.transpose().mul_vec(&resid);
                    let scale = a.max_abs().max(1.0) * b.max_abs().max(1.0);
                    prop_assert!(grad.max_abs() < 1e-7 * scale.max(1.0));
                }
            }
        }
    }
}
