//! Unrolled scalar kernels shared by the dense containers.
//!
//! These are the innermost loops of the closed-loop hot path: every MPC
//! step funnels through `dot` (matrix–vector products, constraint
//! violation scans) and `axpy` (active-set updates).  Each kernel is
//! written with `chunks_exact` so the compiler can keep the unrolled
//! body in registers, but accumulates with a **single** accumulator in
//! the exact left-to-right order of the textbook loop it replaces.
//! That makes the substitution bit-exact — no reassociation — which the
//! golden closed-loop trace hashes in `eucon-core` pin down.

/// Unroll width for the kernels below.
///
/// Four doubles is one cache line half; wide enough to hide the loop
/// overhead, small enough that tails stay cheap for this repo's tiny
/// operands (tens of entries).
const UNROLL: usize = 4;

/// Dot product `Σ a[i]·b[i]` over two equal-length slices.
///
/// Accumulation order is strictly left to right with one accumulator,
/// so the result is bit-identical to the naive loop.
///
/// # Panics
///
/// Panics if the lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot requires equal lengths");
    let mut acc = 0.0;
    let mut ca = a.chunks_exact(UNROLL);
    let mut cb = b.chunks_exact(UNROLL);
    for (x, y) in ca.by_ref().zip(cb.by_ref()) {
        acc += x[0] * y[0];
        acc += x[1] * y[1];
        acc += x[2] * y[2];
        acc += x[3] * y[3];
    }
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        acc += x * y;
    }
    acc
}

/// Fused in-place update `y[i] += alpha · x[i]`.
///
/// Each entry is updated as `y[i] + (alpha · x[i])`, the same expression
/// as the allocating form `&y + &x.scale(alpha)`, so replacing that
/// pattern with `axpy` is bit-exact while eliminating two temporaries.
///
/// # Panics
///
/// Panics if the lengths differ.
#[inline]
pub fn axpy(y: &mut [f64], alpha: f64, x: &[f64]) {
    assert_eq!(y.len(), x.len(), "axpy requires equal lengths");
    let mut cy = y.chunks_exact_mut(UNROLL);
    let mut cx = x.chunks_exact(UNROLL);
    for (ys, xs) in cy.by_ref().zip(cx.by_ref()) {
        ys[0] += alpha * xs[0];
        ys[1] += alpha * xs[1];
        ys[2] += alpha * xs[2];
        ys[3] += alpha * xs[3];
    }
    for (yv, xv) in cy.into_remainder().iter_mut().zip(cx.remainder()) {
        *yv += alpha * xv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dot(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
    }

    #[test]
    fn dot_matches_naive_for_all_tail_lengths() {
        // Lengths straddling the unroll width, including every tail size.
        for n in 0..=9 {
            let a: Vec<f64> = (0..n).map(|i| 0.3 * i as f64 - 1.0).collect();
            let b: Vec<f64> = (0..n).map(|i| 1.7 - 0.9 * i as f64).collect();
            let expected = naive_dot(&a, &b);
            assert_eq!(dot(&a, &b), expected, "length {n}");
        }
    }

    #[test]
    fn dot_is_bit_exact_against_sequential_sum() {
        // Values chosen so reassociation would visibly change the result.
        let a = [1e16, 1.0, -1e16, 1.0, 0.5, 2.0, -0.25, 8.0, 3.0];
        let b = [1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        assert_eq!(dot(&a, &b).to_bits(), naive_dot(&a, &b).to_bits());
    }

    #[test]
    fn axpy_matches_scale_add_for_all_tail_lengths() {
        for n in 0..=9 {
            let x: Vec<f64> = (0..n).map(|i| 0.1 * i as f64 + 0.7).collect();
            let mut y: Vec<f64> = (0..n).map(|i| 2.0 - 0.4 * i as f64).collect();
            let expected: Vec<f64> = y.iter().zip(&x).map(|(yv, xv)| yv + 1.3 * xv).collect();
            axpy(&mut y, 1.3, &x);
            assert_eq!(y, expected, "length {n}");
        }
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn axpy_length_mismatch_panics() {
        axpy(&mut [1.0, 2.0], 1.0, &[1.0]);
    }
}
