//! Dense vector type.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense vector of `f64` values.
///
/// Used throughout the reproduction for utilization vectors `u(k)`, rate
/// vectors `r(k)`, set points `B` and QP unknowns.
///
/// # Example
///
/// ```
/// use eucon_math::Vector;
///
/// let u = Vector::from_slice(&[0.8, 0.7]);
/// let b = Vector::from_slice(&[0.828, 0.828]);
/// let err = &b - &u;
/// assert!((err[0] - 0.028).abs() < 1e-12);
/// ```
#[derive(PartialEq, Default)]
pub struct Vector {
    data: Vec<f64>,
}

// Not derived: the derived impl would not override `clone_from`, and the
// closed-loop hot path clones into long-lived scratch vectors every
// sampling period — `clone_from` reuses their allocations.
impl Clone for Vector {
    fn clone(&self) -> Self {
        Vector {
            data: self.data.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.data.clone_from(&source.data);
    }
}

impl Vector {
    /// Creates a vector of `n` zeros.
    pub fn zeros(n: usize) -> Self {
        Vector { data: vec![0.0; n] }
    }

    /// Creates a vector filled with `value`.
    pub fn filled(n: usize, value: f64) -> Self {
        Vector {
            data: vec![value; n],
        }
    }

    /// Creates a vector from a slice.
    pub fn from_slice(values: &[f64]) -> Self {
        Vector {
            data: values.to_vec(),
        }
    }

    /// Creates a vector by collecting an iterator of values.
    ///
    /// Also available through the `FromIterator` impl (`collect()`); the
    /// inherent method reads better at call sites that build vectors from
    /// expressions.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = f64>>(values: I) -> Self {
        Vector {
            data: values.into_iter().collect(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the vector has no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns `true` when every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Borrows the entries as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the entries as a slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Appends one entry, growing the vector by one.
    ///
    /// Used by runtime-membership code (admitting a task grows every
    /// per-task vector); the steady-state control path never calls it.
    pub fn push(&mut self, value: f64) {
        self.data.push(value);
    }

    /// Copies the entries of `source` into `self` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ (use [`Clone::clone_from`] to also
    /// resize).
    pub fn copy_from(&mut self, source: &Vector) {
        assert_eq!(self.len(), source.len(), "copy_from requires equal lengths");
        self.data.copy_from_slice(&source.data);
    }

    /// Copies the entries of `source` into `self` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn copy_from_slice(&mut self, source: &[f64]) {
        assert_eq!(
            self.len(),
            source.len(),
            "copy_from_slice requires equal lengths"
        );
        self.data.copy_from_slice(source);
    }

    /// Consumes the vector, returning the underlying `Vec`.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Iterates over the entries.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.data.iter()
    }

    /// Dot product with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn dot(&self, other: &Vector) -> f64 {
        assert_eq!(
            self.len(),
            other.len(),
            "dot product requires equal lengths"
        );
        crate::kernel::dot(&self.data, &other.data)
    }

    /// Fused in-place update `self += alpha · x` (BLAS `axpy`).
    ///
    /// Each entry becomes `self[i] + (alpha · x[i])`, the same expression
    /// the allocating form `&self + &x.scale(alpha)` evaluates, so hot
    /// paths can switch to this without changing results by a single ULP.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn axpy(&mut self, alpha: f64, x: &Vector) {
        crate::kernel::axpy(&mut self.data, alpha, &x.data);
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Largest absolute entry (0 for the empty vector).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |acc, v| acc.max(v.abs()))
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Returns a new vector with `f` applied to every entry.
    pub fn map<F: FnMut(f64) -> f64>(&self, f: F) -> Vector {
        Vector {
            data: self.data.iter().copied().map(f).collect(),
        }
    }

    /// Multiplies every entry by `s`.
    pub fn scale(&self, s: f64) -> Vector {
        self.map(|v| v * s)
    }

    /// Entry-wise approximate equality within `tol`.
    pub fn approx_eq(&self, other: &Vector, tol: f64) -> bool {
        self.len() == other.len()
            && self
                .iter()
                .zip(other.iter())
                .all(|(a, b)| crate::approx_eq(*a, *b, tol))
    }

    /// Concatenates `self` with `other`.
    pub fn concat(&self, other: &Vector) -> Vector {
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Vector { data }
    }

    /// Returns the sub-vector with indices `i0..i1` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or reversed.
    pub fn subvector(&self, i0: usize, i1: usize) -> Vector {
        assert!(i0 <= i1 && i1 <= self.len(), "invalid range {i0}..{i1}");
        Vector::from_slice(&self.data[i0..i1])
    }
}

impl fmt::Debug for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Vector{:?}", self.data)
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        write!(f, "]")
    }
}

impl Index<usize> for Vector {
    type Output = f64;

    fn index(&self, i: usize) -> &f64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.data[i]
    }
}

impl Add for &Vector {
    type Output = Vector;

    fn add(self, rhs: &Vector) -> Vector {
        assert_eq!(
            self.len(),
            rhs.len(),
            "vector addition requires equal lengths"
        );
        Vector::from_iter(self.iter().zip(rhs.iter()).map(|(a, b)| a + b))
    }
}

impl Sub for &Vector {
    type Output = Vector;

    fn sub(self, rhs: &Vector) -> Vector {
        assert_eq!(
            self.len(),
            rhs.len(),
            "vector subtraction requires equal lengths"
        );
        Vector::from_iter(self.iter().zip(rhs.iter()).map(|(a, b)| a - b))
    }
}

impl Neg for &Vector {
    type Output = Vector;

    fn neg(self) -> Vector {
        self.scale(-1.0)
    }
}

impl Mul<f64> for &Vector {
    type Output = Vector;

    fn mul(self, s: f64) -> Vector {
        self.scale(s)
    }
}

impl From<Vec<f64>> for Vector {
    fn from(data: Vec<f64>) -> Self {
        Vector { data }
    }
}

impl FromIterator<f64> for Vector {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Vector {
            data: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a Vector {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;

    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        assert_eq!(Vector::zeros(3).len(), 3);
        assert_eq!(Vector::filled(2, 7.0).as_slice(), &[7.0, 7.0]);
        assert_eq!(Vector::from_slice(&[1.0]).len(), 1);
        assert!(Vector::default().is_empty());
    }

    #[test]
    fn dot_and_norm() {
        let a = Vector::from_slice(&[3.0, 4.0]);
        assert_eq!(a.dot(&a), 25.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.max_abs(), 4.0);
        assert_eq!(a.sum(), 7.0);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn dot_length_mismatch_panics() {
        let _ = Vector::zeros(2).dot(&Vector::zeros(3));
    }

    #[test]
    fn arithmetic() {
        let a = Vector::from_slice(&[1.0, 2.0]);
        let b = Vector::from_slice(&[10.0, 20.0]);
        assert_eq!((&a + &b).as_slice(), &[11.0, 22.0]);
        assert_eq!((&b - &a).as_slice(), &[9.0, 18.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
        assert_eq!((&a * 3.0).as_slice(), &[3.0, 6.0]);
    }

    #[test]
    fn concat_and_subvector() {
        let a = Vector::from_slice(&[1.0, 2.0]);
        let b = Vector::from_slice(&[3.0]);
        let c = a.concat(&b);
        assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0]);
        assert_eq!(c.subvector(1, 3).as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn map_and_scale() {
        let a = Vector::from_slice(&[1.0, -2.0]);
        assert_eq!(a.map(f64::abs).as_slice(), &[1.0, 2.0]);
        assert_eq!(a.scale(0.5).as_slice(), &[0.5, -1.0]);
    }

    #[test]
    fn display_and_debug_nonempty() {
        let a = Vector::from_slice(&[1.0]);
        assert_eq!(format!("{a}"), "[1.0000]");
        assert!(format!("{a:?}").contains("Vector"));
        assert_eq!(format!("{}", Vector::default()), "[]");
    }

    #[test]
    fn from_iterator_collects() {
        let v: Vector = (0..3).map(|i| i as f64).collect();
        assert_eq!(v.as_slice(), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn is_finite_detects_infinity() {
        let mut v = Vector::zeros(2);
        assert!(v.is_finite());
        v[1] = f64::INFINITY;
        assert!(!v.is_finite());
    }
}
