//! Scaling study: centralized vs decentralized control cost as the
//! system grows (the paper's §6.1 notes the controller's polynomial
//! complexity and its conclusion calls for decentralization at scale).
//!
//! For each generated system size, measures the wall-clock cost of one
//! control invocation for the centralized EUCON controller and the
//! decentralized team, plus the largest local problem size — and verifies
//! both still converge on the plant.

use std::time::Instant;

use eucon_control::{
    DecentralizedController, MpcConfig, MpcController, RateController, ShardedController,
};
use eucon_core::{metrics, render, BoundaryMode, ClosedLoop, ControllerSpec};
use eucon_math::Vector;
use eucon_sim::{ExecModel, SimConfig, Simulator};
use eucon_tasks::{rms_set_points, workloads::RandomWorkload, TaskSet};

/// Median wall time of one `update` call, in microseconds.
fn step_cost(ctrl: &mut dyn RateController, u: &Vector, reps: usize) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            ctrl.update(u).expect("controller step");
            t0.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    println!("== Scaling: centralized vs decentralized control ==\n");
    let mut rows = Vec::new();
    let mut telemetry_lines = String::new();
    for (procs, tasks) in [(4usize, 12usize), (8, 24), (16, 48), (24, 72), (32, 96)] {
        let set = RandomWorkload::new(procs, tasks).seed(11).generate();
        let b = rms_set_points(&set);
        let u = Vector::from_iter((0..procs).map(|p| 0.5 + 0.01 * (p % 7) as f64));

        let mut central = MpcController::new(&set, b.clone(), MpcConfig::medium())
            .expect("centralized controller");
        let central_us = step_cost(&mut central, &u, 21);

        let mut team = DecentralizedController::new(&set, b.clone(), MpcConfig::medium())
            .expect("decentralized team");
        let team_us = step_cost(&mut team, &u, 21);
        // Per-node cost: the team runs sequentially here, but each node
        // would run its own local problem in a real deployment.
        let per_node_us = team_us / team.num_controllers() as f64;

        // Convergence check (quality must not silently degrade at scale).
        let mut cl = ClosedLoop::builder(set.clone())
            .sim_config(SimConfig::constant_etf(0.5).seed(1))
            .controller(ControllerSpec::Decentralized(MpcConfig::medium()))
            .build()
            .expect("loop");
        let result = cl.run(120);
        let mut worst = 0.0f64;
        for p in 0..procs {
            let s = metrics::window(&result.trace.utilization_series(p), 80, 120);
            worst = worst.max((s.mean - b[p]).abs());
        }
        // Per-run telemetry: QP totals, tracking error and engine
        // pressure for each DEUCON convergence run, one JSONL row each.
        telemetry_lines.push_str(&eucon_bench::telemetry_jsonl_line(
            &format!("deucon {procs}x{tasks}"),
            &result.telemetry,
        ));
        telemetry_lines.push('\n');

        rows.push(vec![
            format!("{procs}x{tasks}"),
            format!("{central_us:.0}"),
            format!("{team_us:.0}"),
            format!("{per_node_us:.0}"),
            team.max_local_tasks().to_string(),
            render::f4(worst),
        ]);
    }
    println!(
        "{}",
        render::table(
            &[
                "procs x tasks",
                "central us/step",
                "team total us/step",
                "team us/node",
                "max local tasks",
                "DEUCON worst |mean-B|",
            ],
            &rows
        )
    );
    eucon_bench::write_result(
        "scaling.csv",
        &render::csv(
            &[
                "size",
                "central_us",
                "team_us",
                "per_node_us",
                "max_local_tasks",
                "worst_err",
            ],
            &rows,
        ),
    );
    eucon_bench::write_result("scaling_telemetry.jsonl", &telemetry_lines);
    println!("\nExpected shape: centralized cost grows superlinearly with system size;");
    println!("per-node decentralized cost stays roughly flat (bounded local problems).");

    event_throughput();
    fleet_throughput();
    shard_scaling();
}

/// The cluster-scale workload family: chains confined to a ±2-processor
/// neighborhood, three tasks per processor — the rack/NUMA shape whose
/// banded coupling the shard planner and banded Cholesky exploit.
fn cluster_set(procs: usize) -> TaskSet {
    RandomWorkload::new(procs, procs * 3)
        .seed(21)
        .locality(2)
        .max_chain_len(3)
        .generate()
}

/// Cluster tier: sharded control at 256–1024 processors.
///
/// Reports the control-step cost of the sharded scheme against the
/// centralized controller (interleaved rounds at 256 processors, the
/// ISSUE 8 ≥10× gate) and convergence-vs-shard-size curves — every
/// configuration must still settle within ±0.03 of its set points.
/// `EUCON_SHARD_SMOKE=1` skips the centralized reference (its one-time
/// model preparation dominates the run) and the 512/1024 tiers.
fn shard_scaling() {
    println!("\n== Cluster scale: sharded control at 256-1024 processors ==\n");
    let cores = eucon_bench::detected_cores();
    println!("  [detected cores: {cores}]");
    let smoke = std::env::var("EUCON_SHARD_SMOKE").is_ok_and(|v| v != "0");

    // (procs, shard sizes to sweep, closed-loop periods, centralized ref)
    let tiers: Vec<(usize, Vec<usize>, usize, bool)> = if smoke {
        vec![(256, vec![16], 150, false)]
    } else {
        vec![
            (256, vec![4, 8, 16, 32, 64], 150, true),
            (512, vec![16, 32], 150, false),
            (1024, vec![32], 200, false),
        ]
    };

    let mut rows = Vec::new();
    for (procs, shard_sizes, periods, with_central) in tiers {
        let set = cluster_set(procs);
        let tasks = set.num_tasks();
        let b = rms_set_points(&set);
        let u = Vector::from_iter((0..procs).map(|p| 0.5 + 0.01 * (p % 7) as f64));

        // The centralized reference pays its one-time model preparation
        // (dense 2m×2m Hessian + constraint cache) here; per-step cost is
        // what the table compares.
        let mut central = with_central.then(|| {
            let t0 = Instant::now();
            let c = MpcController::new(&set, b.clone(), MpcConfig::medium())
                .expect("centralized controller");
            println!(
                "  [{procs}p centralized model prepared in {:.1}s]",
                t0.elapsed().as_secs_f64()
            );
            c
        });

        let mut central_ref_us: Option<f64> = None;
        for &shard_size in &shard_sizes {
            let mut team = ShardedController::with_shard_size(
                &set,
                b.clone(),
                MpcConfig::medium(),
                shard_size,
            )
            .expect("sharded team");
            let shards = team.num_controllers();
            let max_local = team.max_shard_tasks();
            let max_band = team.hessian_bandwidths().into_iter().max().unwrap_or(0);

            // Interleaved rounds (the BENCH_PR6 methodology): alternate
            // centralized and sharded timing within the same session and
            // take the minimum of the per-round medians for each side.
            // The centralized reference is timed once per tier, during the
            // first shard row: stepping it dozens of further times against
            // the same synthetic utilization drives its rate state into
            // actuator saturation, where active-set churn inflates a step
            // by orders of magnitude and the comparison stops measuring
            // the steady-state path.
            let mut shard_us = f64::INFINITY;
            match central.as_mut() {
                Some(c) if central_ref_us.is_none() => {
                    let mut central_us = f64::INFINITY;
                    for _ in 0..3 {
                        central_us = central_us.min(step_cost(c, &u, 11));
                        shard_us = shard_us.min(step_cost(&mut team, &u, 11));
                    }
                    central_ref_us = Some(central_us);
                }
                _ => {
                    for _ in 0..3 {
                        shard_us = shard_us.min(step_cost(&mut team, &u, 11));
                    }
                }
            }

            // Convergence under the stochastic execution model: windowed
            // mean over the settled tail, worst processor.
            let mut cl = ClosedLoop::builder(set.clone())
                .sim_config(
                    SimConfig::constant_etf(0.9)
                        .exec_model(ExecModel::Uniform { half_width: 0.2 })
                        .seed(5),
                )
                .controller(ControllerSpec::Sharded {
                    mpc: MpcConfig::medium(),
                    shard_size,
                    boundary: BoundaryMode::InProcess,
                })
                .build()
                .expect("loop");
            let result = cl.run(periods);
            let mut worst = 0.0f64;
            for p in 0..procs {
                let s = metrics::window(&result.trace.utilization_series(p), periods - 30, periods);
                worst = worst.max((s.mean - b[p]).abs());
            }
            assert!(
                worst <= 0.03,
                "{procs}p shard_size {shard_size}: worst tail error {worst:.4} exceeds 0.03"
            );
            assert_eq!(result.control_errors, 0, "controller errors at {procs}p");

            let (central_cell, speedup_cell) = match central_ref_us {
                Some(c_us) => (format!("{c_us:.0}"), format!("{:.1}", c_us / shard_us)),
                None => (String::new(), String::new()),
            };
            rows.push(vec![
                format!("{procs}x{tasks}"),
                shard_size.to_string(),
                shards.to_string(),
                max_local.to_string(),
                max_band.to_string(),
                format!("{shard_us:.0}"),
                central_cell,
                speedup_cell,
                render::f4(worst),
                periods.to_string(),
                cores.to_string(),
            ]);
        }
    }
    println!(
        "{}",
        render::table(
            &[
                "procs x tasks",
                "shard size",
                "shards",
                "max local tasks",
                "max band",
                "shard us/step",
                "central us/step",
                "speedup",
                "worst |mean-B|",
                "periods",
                "cores",
            ],
            &rows
        )
    );
    eucon_bench::write_result(
        "shard_scaling.csv",
        &render::csv(
            &[
                "size",
                "shard_size",
                "shards",
                "max_local_tasks",
                "max_band",
                "shard_us",
                "central_us",
                "speedup",
                "worst_err",
                "periods",
                "cores",
            ],
            &rows,
        ),
    );
    println!("\nExpected shape: sharded step cost scales with the largest local problem,");
    println!("not the platform; the 256-proc speedup over centralized clears 10x at");
    println!("shard sizes up to 32, and every configuration settles within +/-0.03");
    println!("(asserted above).");
}

/// Raw simulator event throughput as the platform grows, up to the
/// 64-processor configuration.  The engine counters make per-size event
/// volume, queue residency and reschedule pressure visible alongside the
/// wall clock.
fn event_throughput() {
    println!("\n== Scaling: simulator event throughput ==\n");
    let mut rows = Vec::new();
    for procs in [4usize, 8, 16, 32, 64] {
        let tasks = procs * 3;
        let set = RandomWorkload::new(procs, tasks).seed(3).generate();
        let t0 = Instant::now();
        let mut sim = Simulator::new(set, SimConfig::constant_etf(1.0));
        sim.run_until(10_000.0);
        let secs = t0.elapsed().as_secs_f64();
        let c = sim.counters();
        rows.push(vec![
            format!("{procs}x{tasks}"),
            c.events.to_string(),
            format!("{:.1}", secs * 1e3),
            format!("{:.2}", c.events as f64 / secs / 1e6),
            c.queue_peak.to_string(),
            c.reschedules.to_string(),
        ]);
    }
    println!(
        "{}",
        render::table(
            &[
                "procs x tasks",
                "events",
                "wall ms",
                "Mevents/s",
                "peak queue",
                "reschedules",
            ],
            &rows
        )
    );
    eucon_bench::write_result(
        "event_throughput.csv",
        &render::csv(
            &[
                "size",
                "events",
                "wall_ms",
                "mevents_per_s",
                "queue_peak",
                "reschedules",
            ],
            &rows,
        ),
    );
    println!("\nExpected shape: cost per event grows only gently with platform size —");
    println!("the indexed per-source queue does O(log sources) work per event with");
    println!("no tombstone churn, so cost per event is independent of run length.");
}

/// Fleet tier: aggregate throughput of N independent closed loops on the
/// work-stealing pool, as the fleet grows to 10 000 loops.  Cost per loop
/// must stay flat — each loop is self-contained, so fleet size only adds
/// work, never contention on shared state.
fn fleet_throughput() {
    use eucon_core::{FleetConfig, FleetLoopSpec, FleetRunner};

    println!("\n== Scaling: fleet throughput ==\n");
    let threads = rayon::current_num_threads();
    let cores = eucon_bench::detected_cores();
    println!("  [detected cores: {cores}]");
    eucon_bench::warn_if_oversubscribed(threads);
    let periods = 25;
    let mut rows = Vec::new();
    for n in [256usize, 1024, 4096, 10_000] {
        let mut fleet = FleetRunner::new(
            FleetConfig::new(periods)
                .threads(threads)
                .telemetry_batch(16),
        );
        for i in 0..n {
            fleet.push(
                FleetLoopSpec::new(eucon_tasks::workloads::simple())
                    .sim_config(SimConfig::constant_etf(0.5).seed(i as u64)),
            );
        }
        let report = fleet.run().expect("fleet runs");
        rows.push(vec![
            n.to_string(),
            threads.to_string(),
            cores.to_string(),
            format!("{:.1}", report.elapsed_secs * 1e3),
            format!("{:.0}", report.periods_per_sec()),
            format!("{:.2}", report.mevents_per_sec()),
            format!(
                "{:.1}",
                report.elapsed_secs * 1e6 / report.total_periods as f64
            ),
        ]);
    }
    println!(
        "{}",
        render::table(
            &[
                "loops",
                "threads",
                "cores",
                "wall ms",
                "periods/s",
                "Mevents/s",
                "us/period",
            ],
            &rows
        )
    );
    eucon_bench::write_result(
        "fleet_throughput.csv",
        &render::csv(
            &[
                "loops",
                "threads",
                "cores",
                "wall_ms",
                "periods_per_s",
                "mevents_per_s",
                "us_per_period",
            ],
            &rows,
        ),
    );
    println!("\nExpected shape: periods/s is flat in fleet size (loops are independent");
    println!("work items; the pool steals whole loops, so there is no cross-loop");
    println!("synchronization on the period path).");
}
