//! Scaling study: centralized vs decentralized control cost as the
//! system grows (the paper's §6.1 notes the controller's polynomial
//! complexity and its conclusion calls for decentralization at scale).
//!
//! For each generated system size, measures the wall-clock cost of one
//! control invocation for the centralized EUCON controller and the
//! decentralized team, plus the largest local problem size — and verifies
//! both still converge on the plant.

use std::time::Instant;

use eucon_control::{DecentralizedController, MpcConfig, MpcController, RateController};
use eucon_core::{metrics, render, ClosedLoop, ControllerSpec};
use eucon_math::Vector;
use eucon_sim::SimConfig;
use eucon_tasks::{rms_set_points, workloads::RandomWorkload};

/// Median wall time of one `update` call, in microseconds.
fn step_cost(ctrl: &mut dyn RateController, u: &Vector, reps: usize) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            let _ = ctrl.update(u).expect("controller step");
            t0.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    println!("== Scaling: centralized vs decentralized control ==\n");
    let mut rows = Vec::new();
    for (procs, tasks) in [(4usize, 12usize), (8, 24), (16, 48), (24, 72), (32, 96)] {
        let set = RandomWorkload::new(procs, tasks).seed(11).generate();
        let b = rms_set_points(&set);
        let u = Vector::from_iter((0..procs).map(|p| 0.5 + 0.01 * (p % 7) as f64));

        let mut central = MpcController::new(&set, b.clone(), MpcConfig::medium())
            .expect("centralized controller");
        let central_us = step_cost(&mut central, &u, 21);

        let mut team = DecentralizedController::new(&set, b.clone(), MpcConfig::medium())
            .expect("decentralized team");
        let team_us = step_cost(&mut team, &u, 21);
        // Per-node cost: the team runs sequentially here, but each node
        // would run its own local problem in a real deployment.
        let per_node_us = team_us / team.num_controllers() as f64;

        // Convergence check (quality must not silently degrade at scale).
        let mut cl = ClosedLoop::builder(set.clone())
            .sim_config(SimConfig::constant_etf(0.5).seed(1))
            .controller(ControllerSpec::Decentralized(MpcConfig::medium()))
            .build()
            .expect("loop");
        let result = cl.run(120);
        let mut worst = 0.0f64;
        for p in 0..procs {
            let s = metrics::window(&result.trace.utilization_series(p), 80, 120);
            worst = worst.max((s.mean - b[p]).abs());
        }

        rows.push(vec![
            format!("{procs}x{tasks}"),
            format!("{central_us:.0}"),
            format!("{team_us:.0}"),
            format!("{per_node_us:.0}"),
            team.max_local_tasks().to_string(),
            render::f4(worst),
        ]);
    }
    println!(
        "{}",
        render::table(
            &[
                "procs x tasks",
                "central us/step",
                "team total us/step",
                "team us/node",
                "max local tasks",
                "DEUCON worst |mean-B|",
            ],
            &rows
        )
    );
    eucon_bench::write_result(
        "scaling.csv",
        &render::csv(
            &[
                "size",
                "central_us",
                "team_us",
                "per_node_us",
                "max_local_tasks",
                "worst_err",
            ],
            &rows,
        ),
    );
    println!("\nExpected shape: centralized cost grows superlinearly with system size;");
    println!("per-node decentralized cost stays roughly flat (bounded local problems).");
}
