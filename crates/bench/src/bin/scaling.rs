//! Scaling study: centralized vs decentralized control cost as the
//! system grows (the paper's §6.1 notes the controller's polynomial
//! complexity and its conclusion calls for decentralization at scale).
//!
//! For each generated system size, measures the wall-clock cost of one
//! control invocation for the centralized EUCON controller and the
//! decentralized team, plus the largest local problem size — and verifies
//! both still converge on the plant.

use std::time::Instant;

use eucon_control::{DecentralizedController, MpcConfig, MpcController, RateController};
use eucon_core::{metrics, render, ClosedLoop, ControllerSpec};
use eucon_math::Vector;
use eucon_sim::{SimConfig, Simulator};
use eucon_tasks::{rms_set_points, workloads::RandomWorkload};

/// Median wall time of one `update` call, in microseconds.
fn step_cost(ctrl: &mut dyn RateController, u: &Vector, reps: usize) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            ctrl.update(u).expect("controller step");
            t0.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    println!("== Scaling: centralized vs decentralized control ==\n");
    let mut rows = Vec::new();
    let mut telemetry_lines = String::new();
    for (procs, tasks) in [(4usize, 12usize), (8, 24), (16, 48), (24, 72), (32, 96)] {
        let set = RandomWorkload::new(procs, tasks).seed(11).generate();
        let b = rms_set_points(&set);
        let u = Vector::from_iter((0..procs).map(|p| 0.5 + 0.01 * (p % 7) as f64));

        let mut central = MpcController::new(&set, b.clone(), MpcConfig::medium())
            .expect("centralized controller");
        let central_us = step_cost(&mut central, &u, 21);

        let mut team = DecentralizedController::new(&set, b.clone(), MpcConfig::medium())
            .expect("decentralized team");
        let team_us = step_cost(&mut team, &u, 21);
        // Per-node cost: the team runs sequentially here, but each node
        // would run its own local problem in a real deployment.
        let per_node_us = team_us / team.num_controllers() as f64;

        // Convergence check (quality must not silently degrade at scale).
        let mut cl = ClosedLoop::builder(set.clone())
            .sim_config(SimConfig::constant_etf(0.5).seed(1))
            .controller(ControllerSpec::Decentralized(MpcConfig::medium()))
            .build()
            .expect("loop");
        let result = cl.run(120);
        let mut worst = 0.0f64;
        for p in 0..procs {
            let s = metrics::window(&result.trace.utilization_series(p), 80, 120);
            worst = worst.max((s.mean - b[p]).abs());
        }
        // Per-run telemetry: QP totals, tracking error and engine
        // pressure for each DEUCON convergence run, one JSONL row each.
        telemetry_lines.push_str(&eucon_bench::telemetry_jsonl_line(
            &format!("deucon {procs}x{tasks}"),
            &result.telemetry,
        ));
        telemetry_lines.push('\n');

        rows.push(vec![
            format!("{procs}x{tasks}"),
            format!("{central_us:.0}"),
            format!("{team_us:.0}"),
            format!("{per_node_us:.0}"),
            team.max_local_tasks().to_string(),
            render::f4(worst),
        ]);
    }
    println!(
        "{}",
        render::table(
            &[
                "procs x tasks",
                "central us/step",
                "team total us/step",
                "team us/node",
                "max local tasks",
                "DEUCON worst |mean-B|",
            ],
            &rows
        )
    );
    eucon_bench::write_result(
        "scaling.csv",
        &render::csv(
            &[
                "size",
                "central_us",
                "team_us",
                "per_node_us",
                "max_local_tasks",
                "worst_err",
            ],
            &rows,
        ),
    );
    eucon_bench::write_result("scaling_telemetry.jsonl", &telemetry_lines);
    println!("\nExpected shape: centralized cost grows superlinearly with system size;");
    println!("per-node decentralized cost stays roughly flat (bounded local problems).");

    event_throughput();
    fleet_throughput();
}

/// Raw simulator event throughput as the platform grows, up to the
/// 64-processor configuration.  The engine counters make per-size event
/// volume, queue residency and reschedule pressure visible alongside the
/// wall clock.
fn event_throughput() {
    println!("\n== Scaling: simulator event throughput ==\n");
    let mut rows = Vec::new();
    for procs in [4usize, 8, 16, 32, 64] {
        let tasks = procs * 3;
        let set = RandomWorkload::new(procs, tasks).seed(3).generate();
        let t0 = Instant::now();
        let mut sim = Simulator::new(set, SimConfig::constant_etf(1.0));
        sim.run_until(10_000.0);
        let secs = t0.elapsed().as_secs_f64();
        let c = sim.counters();
        rows.push(vec![
            format!("{procs}x{tasks}"),
            c.events.to_string(),
            format!("{:.1}", secs * 1e3),
            format!("{:.2}", c.events as f64 / secs / 1e6),
            c.queue_peak.to_string(),
            c.reschedules.to_string(),
        ]);
    }
    println!(
        "{}",
        render::table(
            &[
                "procs x tasks",
                "events",
                "wall ms",
                "Mevents/s",
                "peak queue",
                "reschedules",
            ],
            &rows
        )
    );
    eucon_bench::write_result(
        "event_throughput.csv",
        &render::csv(
            &[
                "size",
                "events",
                "wall_ms",
                "mevents_per_s",
                "queue_peak",
                "reschedules",
            ],
            &rows,
        ),
    );
    println!("\nExpected shape: cost per event grows only gently with platform size —");
    println!("the indexed per-source queue does O(log sources) work per event with");
    println!("no tombstone churn, so cost per event is independent of run length.");
}

/// Fleet tier: aggregate throughput of N independent closed loops on the
/// work-stealing pool, as the fleet grows to 10 000 loops.  Cost per loop
/// must stay flat — each loop is self-contained, so fleet size only adds
/// work, never contention on shared state.
fn fleet_throughput() {
    use eucon_core::{FleetConfig, FleetLoopSpec, FleetRunner};

    println!("\n== Scaling: fleet throughput ==\n");
    let threads = rayon::current_num_threads();
    let periods = 25;
    let mut rows = Vec::new();
    for n in [256usize, 1024, 4096, 10_000] {
        let mut fleet = FleetRunner::new(
            FleetConfig::new(periods)
                .threads(threads)
                .telemetry_batch(16),
        );
        for i in 0..n {
            fleet.push(
                FleetLoopSpec::new(eucon_tasks::workloads::simple())
                    .sim_config(SimConfig::constant_etf(0.5).seed(i as u64)),
            );
        }
        let report = fleet.run().expect("fleet runs");
        rows.push(vec![
            n.to_string(),
            threads.to_string(),
            format!("{:.1}", report.elapsed_secs * 1e3),
            format!("{:.0}", report.periods_per_sec()),
            format!("{:.2}", report.mevents_per_sec()),
            format!(
                "{:.1}",
                report.elapsed_secs * 1e6 / report.total_periods as f64
            ),
        ]);
    }
    println!(
        "{}",
        render::table(
            &[
                "loops",
                "threads",
                "wall ms",
                "periods/s",
                "Mevents/s",
                "us/period",
            ],
            &rows
        )
    );
    eucon_bench::write_result(
        "fleet_throughput.csv",
        &render::csv(
            &[
                "loops",
                "threads",
                "wall_ms",
                "periods_per_s",
                "mevents_per_s",
                "us_per_period",
            ],
            &rows,
        ),
    );
    println!("\nExpected shape: periods/s is flat in fleet size (loops are independent");
    println!("work items; the pool steals whole loops, so there is no cross-loop");
    println!("synchronization on the period path).");
}
