//! Service smoke: the multi-tenant daemon end to end over loopback TCP.
//!
//! Spawns the `ControlService` daemon, attaches three tenants through
//! the line-oriented admin protocol — two ideal, one with 20% report
//! loss — lets every tenant run at least `--periods` sampling periods
//! (default 400), and then detaches them all, gating on:
//!
//! * every tenant stayed `healthy` (no quarantine, no eviction);
//! * every tenant converged: worst tail set-point error ≤ 0.03, the
//!   lossy tenant included (stale-hold absorbs the drops);
//! * zero decode errors on every tenant's lanes;
//! * a clean detach for all three, and a clean daemon shutdown whose
//!   event log holds exactly the 3 attach + 3 detach transitions.
//!
//! ```text
//! cargo run --release -p eucon-bench --bin service_smoke -- --seed 7
//! ```

use std::time::{Duration, Instant};

use eucon_core::{ControlService, EvictionPolicy, ServiceClient};

const CONV_TOL: f64 = 0.03;

fn parse_args() -> (usize, u64) {
    let (mut periods, mut seed) = (400usize, 1u64);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| panic!("{arg} takes a value"));
        match arg.as_str() {
            "--periods" => periods = value().parse().expect("--periods takes an integer"),
            "--seed" => seed = value().parse().expect("--seed takes an integer"),
            other => panic!("unknown argument '{other}' (supported: --periods N, --seed S)"),
        }
    }
    (periods, seed)
}

/// Pulls `key=` out of a `DATA k=v k=v ...` line.
fn field<'a>(line: &'a str, key: &str) -> &'a str {
    line.split_whitespace()
        .find_map(|kv| kv.strip_prefix(key).and_then(|kv| kv.strip_prefix('=')))
        .unwrap_or_else(|| panic!("no {key}= in {line:?}"))
}

fn main() {
    let (periods, seed) = parse_args();
    println!("== Service smoke: 3 tenants, ≥{periods} periods each, seed {seed} ==\n");
    let handle = ControlService::spawn(EvictionPolicy::default()).expect("daemon spawns");
    println!("  daemon on {}", handle.addr());
    let mut client = ServiceClient::connect(handle.addr()).expect("admin connects");
    assert!(client.request("PING").expect("ping").ok);

    let attaches = [
        format!("ATTACH steady simple 0.5 seed={seed}"),
        format!("ATTACH heavy medium 0.8 seed={}", seed + 1),
        format!("ATTACH lossy simple 0.6 loss=0.2 seed={}", seed + 2),
    ];
    let mut ids = Vec::new();
    for cmd in &attaches {
        let resp = client.request(cmd).expect("attach");
        assert!(resp.ok, "attach failed: {resp:?}");
        ids.push(resp.status.clone());
        println!("  attached tenant {} ({cmd})", resp.status);
    }

    // Poll STATS until every tenant crossed the period target.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let mut done = 0;
        for id in &ids {
            let resp = client.request(&format!("STATS {id}")).expect("stats");
            assert!(resp.ok, "stats failed: {resp:?}");
            let line = &resp.data[0];
            assert_eq!(field(line, "health"), "healthy", "tenant degraded: {line}");
            assert_eq!(field(line, "decode_errors"), "0", "decode errors: {line}");
            if field(line, "periods").parse::<usize>().expect("periods") >= periods {
                done += 1;
            }
        }
        if done == ids.len() {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "tenants did not reach {periods} periods in time"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    let resp = client.request("TENANTS").expect("tenants");
    assert_eq!(resp.data.len(), 3, "all three tenants listed: {resp:?}");

    for id in &ids {
        let resp = client.request(&format!("DETACH {id}")).expect("detach");
        assert!(resp.ok, "detach failed: {resp:?}");
        let line = &resp.data[0];
        let worst: f64 = field(line, "worst_err").parse().expect("worst_err");
        assert!(
            worst <= CONV_TOL,
            "tenant {} missed convergence: worst_err {worst} > {CONV_TOL}",
            field(line, "name")
        );
        println!(
            "  detached {} after {} periods, worst tail err {worst:.4}",
            field(line, "name"),
            field(line, "periods")
        );
    }

    let summary = handle.shutdown();
    assert!(summary.reports.is_empty(), "no tenants left at shutdown");
    assert_eq!(
        summary.events.len(),
        6,
        "3 attaches + 3 detaches: {:#?}",
        summary.events
    );
    println!("\nservice smoke passed: 3 tenants converged within ±{CONV_TOL}, clean detach");
}
