//! Regenerates Figures 6–8 (Experiment II): MEDIUM under the varying
//! execution-time profile (etf 0.5 → 0.9 at 100·Ts → 0.33 at 200·Ts).
//!
//! * Figure 6 — OPEN: utilization tracks the etf steps with no
//!   regulation.
//! * Figure 7 — EUCON: utilization re-converges to the set points within
//!   a few tens of sampling periods after each step.
//! * Figure 8 — EUCON: the task-rate trajectories that achieve it
//!   (rates drop at 100·Ts, rise after 200·Ts).

use eucon_control::MpcConfig;
use eucon_core::svg::{self, ChartConfig, Series};
use eucon_core::{metrics, render, ControllerSpec, RunResult, VaryingRun};
use eucon_sim::ExecModel;
use eucon_tasks::workloads;
use rayon::prelude::*;

fn run(controller: ControllerSpec) -> RunResult {
    VaryingRun::paper(
        workloads::medium(),
        controller,
        ExecModel::Uniform { half_width: 0.2 },
    )
    .run()
    .expect("experiment II run")
}

fn utilization_svg(result: &RunResult, title: &str) -> String {
    let series: Vec<Vec<f64>> = (0..4).map(|p| result.trace.utilization_series(p)).collect();
    svg::line_chart(
        &[
            Series {
                label: "P1",
                values: &series[0],
            },
            Series {
                label: "P2",
                values: &series[1],
            },
            Series {
                label: "P3",
                values: &series[2],
            },
            Series {
                label: "P4",
                values: &series[3],
            },
        ],
        &ChartConfig {
            title,
            x_label: "time (sampling periods)",
            y_label: "CPU utilization",
            y_range: Some((0.0, 1.0)),
            reference: Some(result.set_points[0]),
        },
    )
}

fn utilization_csv(result: &RunResult) -> String {
    let rows: Vec<Vec<String>> = result
        .trace
        .steps()
        .iter()
        .enumerate()
        .map(|(k, s)| {
            let mut row = vec![k.to_string()];
            row.extend((0..4).map(|p| render::f4(s.utilization[p])));
            row
        })
        .collect();
    render::csv(&["k", "u1", "u2", "u3", "u4"], &rows)
}

fn summarize(result: &RunResult, label: &str) {
    println!("-- {label}: windowed P1 utilization --");
    let u1 = result.trace.utilization_series(0);
    let rows = vec![
        ("[50,100)   etf=0.5", metrics::window(&u1, 50, 100)),
        ("[150,200)  etf=0.9", metrics::window(&u1, 150, 200)),
        ("[250,300)  etf=0.33", metrics::window(&u1, 250, 300)),
    ]
    .into_iter()
    .map(|(w, s)| vec![w.to_string(), render::f4(s.mean), render::f4(s.std_dev)])
    .collect::<Vec<_>>();
    println!("{}", render::table(&["window", "mean u1", "std u1"], &rows));
}

fn main() {
    // The OPEN and EUCON runs are independent; execute them concurrently
    // and keep the report order fixed.
    let mut results: Vec<RunResult> = vec![
        ControllerSpec::Open,
        ControllerSpec::Eucon(MpcConfig::medium()),
    ]
    .into_par_iter()
    .map(run)
    .collect();
    let eucon = results.pop().expect("EUCON result");
    let open = results.pop().expect("OPEN result");

    println!("== Figure 6: MEDIUM under OPEN, varying execution times ==\n");
    summarize(&open, "OPEN");
    eucon_bench::write_result("fig6_open.csv", &utilization_csv(&open));
    eucon_bench::write_result(
        "fig6_open.svg",
        &utilization_svg(
            &open,
            "Figure 6: MEDIUM under OPEN, varying execution times",
        ),
    );

    println!("\n== Figure 7: MEDIUM under EUCON, varying execution times ==\n");
    summarize(&eucon, "EUCON");
    // Per-run telemetry for both Experiment II runs: QP solve stats,
    // tracking-error distributions and engine counters, one row per run.
    eucon_bench::write_result(
        "fig6_7_telemetry.jsonl",
        &format!(
            "{}\n{}\n",
            eucon_bench::telemetry_jsonl_line("fig6 open", &open.telemetry),
            eucon_bench::telemetry_jsonl_line("fig7 eucon", &eucon.telemetry)
        ),
    );
    eucon_bench::write_result("fig7_eucon.csv", &utilization_csv(&eucon));
    eucon_bench::write_result(
        "fig7_eucon.svg",
        &utilization_svg(
            &eucon,
            "Figure 7: MEDIUM under EUCON, varying execution times",
        ),
    );

    println!("-- settling after each disturbance (band ±0.05 of set point) --");
    let mut rows = Vec::new();
    for p in 0..4 {
        let s1 = VaryingRun::settling_after(&eucon, p, 100, 200, 0.05);
        let s2 = VaryingRun::settling_after(&eucon, p, 200, 300, 0.05);
        rows.push(vec![
            format!("P{}", p + 1),
            s1.map_or("never".into(), |k| format!("{k} Ts")),
            s2.map_or("never".into(), |k| format!("{k} Ts")),
        ]);
    }
    println!(
        "{}",
        render::table(
            &["proc", "settle after 0.9 step", "settle after 0.33 step"],
            &rows
        )
    );

    println!("\n== Figure 8: task rates under EUCON (T1..T6) ==\n");
    let rate_rows: Vec<Vec<String>> = eucon
        .trace
        .steps()
        .iter()
        .enumerate()
        .map(|(k, s)| {
            let mut row = vec![k.to_string()];
            row.extend((0..6).map(|t| format!("{:.6}", s.rates[t])));
            row
        })
        .collect();
    eucon_bench::write_result(
        "fig8_rates.csv",
        &render::csv(&["k", "r1", "r2", "r3", "r4", "r5", "r6"], &rate_rows),
    );
    let rate_series: Vec<Vec<f64>> = (0..6).map(|t| eucon.trace.rate_series(t)).collect();
    let rate_refs: Vec<Series<'_>> = rate_series
        .iter()
        .enumerate()
        .map(|(t, v)| Series {
            label: ["T1", "T2", "T3", "T4", "T5", "T6"][t],
            values: v,
        })
        .collect();
    eucon_bench::write_result(
        "fig8_rates.svg",
        &svg::line_chart(
            &rate_refs,
            &ChartConfig {
                title: "Figure 8: task rates under EUCON",
                x_label: "time (sampling periods)",
                y_label: "task rate (1/time unit)",
                y_range: None,
                reference: None,
            },
        ),
    );
    // Rate summary at three representative instants.
    let mut rows = Vec::new();
    for &k in &[99usize, 150, 299] {
        let s = &eucon.trace.steps()[k];
        let mut row = vec![format!("k = {k}")];
        row.extend((0..6).map(|t| format!("{:.5}", s.rates[t])));
        rows.push(row);
    }
    println!(
        "{}",
        render::table(&["instant", "r1", "r2", "r3", "r4", "r5", "r6"], &rows)
    );

    println!("\nExpected shapes (paper): Fig 6 — OPEN utilization steps with the etf profile;");
    println!("Fig 7 — EUCON re-converges to the set points within ~20 Ts after each step,");
    println!("slower after the downward step (smaller gain); Fig 8 — rates fall at 100 Ts and");
    println!("rise after 200 Ts, mirroring the utilization recovery.");
}
