//! Chaos sweep: fault scenarios × controllers, with a survival table.
//!
//! Runs the SIMPLE workload (etf = 0.5, 250 periods) under scripted
//! processor crashes, sensor faults, execution-time bursts and
//! actuation-lane faults, for each controller: the raw EUCON MPC, the
//! supervised EUCON (watchdog + graceful degradation), the decoupled PID
//! and OPEN.  The table answers the robustness question the paper leaves
//! open: which control laws *survive* (finite, in-bounds rates, eventual
//! re-convergence) when the idealized sensing/actuation assumptions
//! break.
//!
//! `--engine local` (default) closes the loop in-process; `--engine
//! pair` and `--engine poll` run every cell over real loopback-TCP
//! lanes (per-lane transport pairs or the many-lane poll engine), so
//! the survival table can be reproduced under real transport effects.
//!
//! ```text
//! cargo run --release -p eucon-bench --bin chaos -- --engine poll
//! ```

use std::time::Duration;

use eucon_control::{MpcConfig, SupervisorConfig};
use eucon_core::telemetry::{CsvSink, JsonlSink, Snapshot};
use eucon_core::{metrics, render, ClosedLoop, ControllerSpec, DistributedLoop, RunResult};
use eucon_net::TcpConfig;
use eucon_sim::{FaultPlan, SensorFaultKind, SimConfig};
use eucon_tasks::{rms_set_points, workloads};
use rayon::prelude::*;

const PERIODS: usize = 250;

/// Receive window for the TCP engines (stale lanes wait at most this
/// long per period).
const RECV_WINDOW: Duration = Duration::from_millis(5);

#[derive(Clone, Copy, PartialEq)]
enum Engine {
    Local,
    Pair,
    Poll,
}

impl Engine {
    fn name(self) -> &'static str {
        match self {
            Engine::Local => "local",
            Engine::Pair => "pair",
            Engine::Poll => "poll",
        }
    }
}

fn parse_engine() -> Engine {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        None => Engine::Local,
        Some("--engine") => match args.next().expect("--engine takes a value").as_str() {
            "local" => Engine::Local,
            "pair" => Engine::Pair,
            "poll" => Engine::Poll,
            other => panic!("unknown engine '{other}' (supported: local, pair, poll)"),
        },
        Some(other) => panic!("unknown argument '{other}' (supported: --engine local|pair|poll)"),
    }
}
/// The scenario whose SUP-EUCON run streams per-period telemetry to
/// `results/telemetry_chaos.{csv,jsonl}` — the combined crash +
/// actuation-loss case, where warm-start churn, supervisor transitions
/// and the engine counters are all exercised at once.
const TELEMETRY_SCENARIO: &str = "crash P2 + 20% act loss";
/// Tail window for convergence statistics (well after every fault
/// scenario has healed at period 150).
const TAIL: (usize, usize) = (200, 250);
/// Re-convergence criterion of the acceptance scenario: worst-processor
/// mean within ±0.03 of the set point.
const CONV_TOL: f64 = 0.03;

fn scenarios() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("nominal", FaultPlan::none()),
        ("crash P2 [60,100)", FaultPlan::none().crash(1, 60, 100)),
        (
            "sensor freeze P1 [50,150)",
            FaultPlan::none().sensor(0, 50, 150, SensorFaultKind::Frozen),
        ),
        (
            "sensor NaN P1 [50,150)",
            FaultPlan::none().sensor(0, 50, 150, SensorFaultKind::NaN),
        ),
        (
            "actuation loss 20%",
            FaultPlan::none().actuation_loss(0.2).seed(9),
        ),
        (
            "burst x3 P1 [80,120)",
            FaultPlan::none().burst(0, 80, 120, 3.0),
        ),
        (
            "lane partition P2 [60,100)",
            FaultPlan::none().partition(1, 60, 100),
        ),
        (
            "crash P2 + 20% act loss",
            FaultPlan::none()
                .crash(1, 60, 100)
                .actuation_loss(0.2)
                .seed(42),
        ),
        (
            "random crashes (mtbf 40)",
            FaultPlan::none()
                .random_crashes(1.0 / 40.0, 1.0 / 10.0)
                .seed(5),
        ),
    ]
}

fn controllers() -> Vec<ControllerSpec> {
    vec![
        ControllerSpec::Eucon(MpcConfig::simple()),
        ControllerSpec::SupervisedEucon {
            mpc: MpcConfig::simple(),
            supervisor: SupervisorConfig::default(),
        },
        ControllerSpec::Pid { kp: 0.5, ki: 0.05 },
        ControllerSpec::Open,
    ]
}

fn controller_label(spec: &ControllerSpec) -> &'static str {
    match spec {
        ControllerSpec::Eucon(_) => "EUCON",
        ControllerSpec::SupervisedEucon { .. } => "SUP-EUCON",
        ControllerSpec::Pid { .. } => "PID",
        ControllerSpec::Open => "OPEN",
        _ => "other",
    }
}

struct Outcome {
    scenario: &'static str,
    controller: &'static str,
    converged: bool,
    worst_err: f64,
    miss_ratio: f64,
    control_errors: usize,
    degraded: usize,
    non_finite: usize,
    transitions: u64,
    telemetry: Snapshot,
}

fn evaluate(
    scenario: &'static str,
    plan: FaultPlan,
    spec: ControllerSpec,
    engine: Engine,
) -> Outcome {
    let set = workloads::simple();
    let b = rms_set_points(&set);
    let label = controller_label(&spec);
    // The acceptance scenario streams its full per-period telemetry —
    // one CSV and one JSONL row per sampling period.
    let stream_telemetry = scenario == TELEMETRY_SCENARIO && label == "SUP-EUCON";
    let result: RunResult = if engine == Engine::Local {
        let mut builder = ClosedLoop::builder(set)
            .sim_config(SimConfig::constant_etf(0.5))
            .controller(spec)
            .faults(plan);
        if stream_telemetry {
            builder = builder
                .telemetry_sink(
                    CsvSink::create(eucon_bench::results_dir().join("telemetry_chaos.csv"))
                        .expect("create telemetry csv"),
                )
                .telemetry_sink(
                    JsonlSink::create(eucon_bench::results_dir().join("telemetry_chaos.jsonl"))
                        .expect("create telemetry jsonl"),
                );
        }
        let mut cl = builder.build().expect("controller builds");
        cl.run(PERIODS)
    } else {
        let mut builder = DistributedLoop::builder(set)
            .sim_config(SimConfig::constant_etf(0.5))
            .controller(spec)
            .faults(plan)
            .recv_timeout(RECV_WINDOW);
        builder = match engine {
            Engine::Pair => builder.tcp(TcpConfig::default()),
            _ => builder.tcp_poll(TcpConfig::default()),
        };
        if stream_telemetry {
            builder = builder
                .telemetry_sink(
                    CsvSink::create(eucon_bench::results_dir().join("telemetry_chaos.csv"))
                        .expect("create telemetry csv"),
                )
                .telemetry_sink(
                    JsonlSink::create(eucon_bench::results_dir().join("telemetry_chaos.jsonl"))
                        .expect("create telemetry jsonl"),
                );
        }
        let mut dl = builder.build().expect("controller builds");
        dl.run(PERIODS)
    };
    let non_finite = result
        .trace
        .steps()
        .iter()
        .filter(|s| !s.rates.is_finite())
        .count();
    let mut worst_err: f64 = 0.0;
    for p in 0..b.len() {
        let series = result.trace.utilization_series(p);
        let tail = metrics::window(&series, TAIL.0, TAIL.1);
        worst_err = worst_err.max((tail.mean - b[p]).abs());
    }
    Outcome {
        scenario,
        controller: label,
        converged: worst_err < CONV_TOL && non_finite == 0,
        worst_err,
        miss_ratio: result.deadlines.miss_ratio(),
        control_errors: result.control_errors,
        degraded: result.faults.degraded_periods,
        non_finite,
        transitions: result.telemetry.counter("mode_transitions").unwrap_or(0),
        telemetry: result.telemetry,
    }
}

fn main() {
    let engine = parse_engine();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "== Chaos sweep: SIMPLE, etf = 0.5, {PERIODS} periods, tail [{}, {}), engine {} ==\n",
        TAIL.0,
        TAIL.1,
        engine.name()
    );
    let jobs: Vec<(&'static str, FaultPlan, ControllerSpec)> = scenarios()
        .into_iter()
        .flat_map(|(name, plan)| {
            controllers()
                .into_iter()
                .map(move |c| (name, plan.clone(), c))
        })
        .collect();
    // Independent closed-loop runs; fan out across the pool.
    let outcomes: Vec<Outcome> = jobs
        .into_par_iter()
        .map(|(name, plan, spec)| evaluate(name, plan, spec, engine))
        .collect();

    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            vec![
                o.scenario.to_string(),
                o.controller.to_string(),
                if o.converged { "yes" } else { "NO" }.to_string(),
                render::f4(o.worst_err),
                render::f4(o.miss_ratio),
                o.control_errors.to_string(),
                o.degraded.to_string(),
                o.non_finite.to_string(),
                o.transitions.to_string(),
                engine.name().to_string(),
                cores.to_string(),
            ]
        })
        .collect();
    let headers = [
        "scenario",
        "controller",
        "survived",
        "max |mean-B|",
        "miss ratio",
        "ctrl errs",
        "degraded Ts",
        "non-finite",
        "transitions",
        "engine",
        "cores",
    ];
    println!("{}", render::table(&headers, &rows));
    println!(
        "(survived = tail mean within +/-{CONV_TOL} of the set points on every \
         processor and zero non-finite rate commands)"
    );
    eucon_bench::write_result(
        "chaos.csv",
        &render::csv(
            &[
                "scenario",
                "controller",
                "survived",
                "max_mean_err",
                "miss_ratio",
                "control_errors",
                "degraded_periods",
                "non_finite_rates",
                "mode_transitions",
                "engine",
                "cores",
            ],
            &rows,
        ),
    );
    // Per-run telemetry snapshots for every scenario × controller cell.
    let summary: String = outcomes
        .iter()
        .map(|o| {
            eucon_bench::telemetry_jsonl_line(
                &format!("{} / {}", o.scenario, o.controller),
                &o.telemetry,
            ) + "\n"
        })
        .collect();
    eucon_bench::write_result("chaos_telemetry.jsonl", &summary);

    // The headline robustness claims, enforced so regressions fail loudly
    // when this binary runs in CI or locally.
    for o in &outcomes {
        assert_eq!(
            o.non_finite, 0,
            "{} under '{}' emitted non-finite rates",
            o.controller, o.scenario
        );
        if o.controller == "SUP-EUCON" && o.scenario != "random crashes (mtbf 40)" {
            assert!(
                o.converged,
                "supervised EUCON failed to re-converge under '{}' (err {:.4})",
                o.scenario, o.worst_err
            );
        }
    }

    // The acceptance telemetry artifact: the streamed per-period files
    // exist, cover every period, and captured the QP warm-start stats,
    // the supervisor's mode transitions and the engine counters.
    let accept = outcomes
        .iter()
        .find(|o| o.scenario == TELEMETRY_SCENARIO && o.controller == "SUP-EUCON")
        .expect("acceptance cell present");
    assert!(
        accept.telemetry.counter("qp_warm_hits").is_some()
            && accept.telemetry.counter("qp_cold_retries").is_some(),
        "QP warm-start stats recorded"
    );
    assert!(
        accept.transitions >= 2,
        "supervisor tripped and re-engaged (got {} transitions)",
        accept.transitions
    );
    assert!(accept.telemetry.counter("engine_events").unwrap() > 0);
    assert_eq!(
        accept.telemetry.counter("crashed_periods"),
        Some(40),
        "crash [60,100) spans 40 periods"
    );
    for name in ["telemetry_chaos.csv", "telemetry_chaos.jsonl"] {
        let path = eucon_bench::results_dir().join(name);
        let text = std::fs::read_to_string(&path).expect("telemetry artifact readable");
        let expected = if name.ends_with(".csv") {
            PERIODS + 1 // header
        } else {
            PERIODS
        };
        assert_eq!(
            text.lines().count(),
            expected,
            "{name} has one row per sampling period"
        );
        assert!(
            text.contains("qp_warm_hits") || text.contains("\"qp_warm_hits\":"),
            "{name} carries the QP warm-start schema"
        );
        println!("  [verified {}]", path.display());
    }
    println!("\nall survival assertions held");
}
