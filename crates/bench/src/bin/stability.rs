//! Regenerates the paper's §6.2 stability example: the critical uniform
//! gain of the SIMPLE system under the SIMPLE controller (paper reports
//! 5.95, *measures* divergence at 6.5; our derivation gives 6.51 under
//! hold-rate — see EXPERIMENTS.md), plus gain sweeps, the eq.-12
//! convention variant, and the MEDIUM system's margin.

use eucon_control::{stability, MpcConfig};
use eucon_core::render;
use eucon_math::Vector;
use eucon_tasks::workloads;

fn main() {
    println!("== S1: closed-loop stability analysis (paper §6.2) ==\n");

    let f_simple = workloads::simple().allocation_matrix();
    let cfg_simple = MpcConfig::simple();
    let g_simple = stability::critical_uniform_gain(&f_simple, &cfg_simple, 20.0, 1e-5)
        .expect("SIMPLE analysis");
    println!("SIMPLE  (P=2, M=1, Tref/Ts=4): critical uniform gain = {g_simple:.4}");
    println!("        paper reports 5.95 analytically but measures divergence at 6.5;");
    println!("        see EXPERIMENTS.md for the derivation note");
    let g_delta = stability::critical_uniform_gain(
        &f_simple,
        &MpcConfig::simple().move_hold(eucon_control::MoveHold::Delta),
        30.0,
        1e-5,
    )
    .expect("SIMPLE delta analysis");
    println!("        (eq.-12 hold-delta convention: {g_delta:.4})\n");

    let f_medium = workloads::medium().allocation_matrix();
    let cfg_medium = MpcConfig::medium();
    let g_medium = stability::critical_uniform_gain(&f_medium, &cfg_medium, 50.0, 1e-5)
        .expect("MEDIUM analysis");
    println!("MEDIUM  (P=4, M=2, Tref/Ts=4): critical uniform gain = {g_medium:.4}\n");

    println!("-- spectral radius vs uniform gain (SIMPLE) --\n");
    let grid = Vector::from_iter((1..=40).map(|i| i as f64 * 0.25));
    let sweep = stability::gain_sweep(&f_simple, &cfg_simple, &grid).expect("sweep");
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|&(g, rho)| {
            vec![
                format!("{g:.2}"),
                render::f4(rho),
                if rho < 1.0 {
                    "stable".into()
                } else {
                    "UNSTABLE".into()
                },
            ]
        })
        .collect();
    println!(
        "{}",
        render::table(&["gain", "spectral radius", "verdict"], &rows)
    );
    eucon_bench::write_result(
        "stability_simple_sweep.csv",
        &render::csv(&["gain", "spectral_radius", "stable"], &rows),
    );

    println!("\n-- horizon sensitivity (SIMPLE) --\n");
    let mut rows = Vec::new();
    for (p, m) in [(2usize, 1usize), (3, 1), (4, 1), (4, 2), (6, 3), (8, 4)] {
        let cfg = MpcConfig::simple().horizons(p, m);
        let g = stability::critical_uniform_gain(&f_simple, &cfg, 100.0, 1e-4)
            .expect("horizon analysis");
        rows.push(vec![p.to_string(), m.to_string(), format!("{g:.3}")]);
    }
    println!("{}", render::table(&["P", "M", "critical gain"], &rows));
    eucon_bench::write_result(
        "stability_horizons.csv",
        &render::csv(&["P", "M", "critical_gain"], &rows),
    );
}
