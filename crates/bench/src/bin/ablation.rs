//! Quality ablations of the design choices called out in DESIGN.md:
//! control-penalty shape, hard utilization constraints, horizon lengths,
//! and EUCON vs the decoupled PID baseline.  Each variant runs the same
//! MEDIUM scenario; the table reports tracking quality (mean error, σ,
//! settling) so the contribution of each design element is visible.

use eucon_control::{ControlPenalty, MpcConfig};
use eucon_core::{metrics, render, ControllerSpec, SteadyRun};
use eucon_sim::ExecModel;
use eucon_tasks::{rms_set_points, workloads};
use rayon::prelude::*;

fn main() {
    let set = workloads::medium();
    let b = rms_set_points(&set);
    let variants: Vec<(String, ControllerSpec)> = vec![
        (
            "EUCON (paper, P=4 M=2)".into(),
            ControllerSpec::Eucon(MpcConfig::medium()),
        ),
        (
            "EUCON, Move penalty".into(),
            ControllerSpec::Eucon(MpcConfig::medium().control_penalty(ControlPenalty::Move)),
        ),
        (
            "EUCON, no util constraints".into(),
            ControllerSpec::Eucon(MpcConfig::medium().utilization_constraints(false)),
        ),
        (
            "EUCON, P=2 M=1".into(),
            ControllerSpec::Eucon(MpcConfig::medium().horizons(2, 1)),
        ),
        (
            "EUCON, P=8 M=4".into(),
            ControllerSpec::Eucon(MpcConfig::medium().horizons(8, 4)),
        ),
        (
            "DEUCON (decentralized)".into(),
            ControllerSpec::Decentralized(MpcConfig::medium()),
        ),
        (
            "PID (decoupled)".into(),
            ControllerSpec::Pid { kp: 0.5, ki: 0.05 },
        ),
        ("OPEN".into(), ControllerSpec::Open),
    ];

    println!("== Ablation: MEDIUM, etf = 0.5, 300 periods, stats over [100Ts, 300Ts] ==\n");
    // Each variant is an independent closed-loop run; fan them out.
    let rows: Vec<Vec<String>> = variants
        .into_par_iter()
        .map(|(name, spec)| {
            let run = SteadyRun::paper(set.clone(), spec, ExecModel::Uniform { half_width: 0.2 });
            let result = run.run(0.5).expect("run");
            // Worst-processor tracking statistics.
            let mut worst_err: f64 = 0.0;
            let mut worst_std: f64 = 0.0;
            let mut settle: Option<usize> = Some(0);
            for p in 0..set.num_processors() {
                let series = result.trace.utilization_series(p);
                let s = metrics::window(&series, 100, 300);
                worst_err = worst_err.max((s.mean - b[p]).abs());
                worst_std = worst_std.max(s.std_dev);
                let sp =
                    metrics::settling_hold(&series[..150.min(series.len())], b[p], 0.05, 0, 10);
                settle = match (settle, sp) {
                    (Some(a), Some(c)) => Some(a.max(c)),
                    _ => None,
                };
            }
            vec![
                name,
                render::f4(worst_err),
                render::f4(worst_std),
                settle.map_or("never".into(), |k| format!("{k} Ts")),
                render::f4(result.deadlines.miss_ratio()),
            ]
        })
        .collect();
    println!(
        "{}",
        render::table(
            &[
                "variant",
                "max |mean−B|",
                "max std",
                "settling (worst proc)",
                "miss ratio"
            ],
            &rows
        )
    );
    eucon_bench::write_result(
        "ablation_medium.csv",
        &render::csv(
            &[
                "variant",
                "max_mean_err",
                "max_std",
                "settling",
                "miss_ratio",
            ],
            &rows,
        ),
    );

    coupling_stress();
    shard_ablation();
}

/// Coordination-loss ablation (ISSUE 8): centralized vs decentralized vs
/// sharded control at shard sizes K ∈ {1, 4, 16} on a 64-processor
/// locality workload.  Sharding trades global coordination for local
/// solves — the table quantifies what that costs in settling time and
/// steady-state tracking error.
fn shard_ablation() {
    use eucon_core::{BoundaryMode, ClosedLoop};
    use eucon_sim::SimConfig;
    use eucon_tasks::workloads::RandomWorkload;

    let set = RandomWorkload::new(64, 192)
        .seed(17)
        .locality(2)
        .max_chain_len(3)
        .generate();
    let b = rms_set_points(&set);
    let procs = set.num_processors();
    let periods = 300;

    println!("\n== Shard ablation: 64x192 locality workload, etf = 0.9, 300 periods ==\n");
    let variants: Vec<(String, ControllerSpec)> = vec![
        (
            "EUCON (centralized)".into(),
            ControllerSpec::Eucon(MpcConfig::medium()),
        ),
        (
            "DEUCON (decentralized)".into(),
            ControllerSpec::Decentralized(MpcConfig::medium()),
        ),
        (
            "SHARD-EUCON K=1".into(),
            ControllerSpec::Sharded {
                mpc: MpcConfig::medium(),
                shard_size: 1,
                boundary: BoundaryMode::InProcess,
            },
        ),
        (
            "SHARD-EUCON K=4".into(),
            ControllerSpec::Sharded {
                mpc: MpcConfig::medium(),
                shard_size: 4,
                boundary: BoundaryMode::InProcess,
            },
        ),
        (
            "SHARD-EUCON K=16".into(),
            ControllerSpec::Sharded {
                mpc: MpcConfig::medium(),
                shard_size: 16,
                boundary: BoundaryMode::InProcess,
            },
        ),
    ];
    let rows: Vec<Vec<String>> = variants
        .into_par_iter()
        .map(|(name, spec)| {
            let mut cl = ClosedLoop::builder(set.clone())
                .sim_config(
                    SimConfig::constant_etf(0.9)
                        .exec_model(ExecModel::Uniform { half_width: 0.2 })
                        .seed(7),
                )
                .controller(spec)
                .build()
                .expect("loop");
            let result = cl.run(periods);
            let mut worst_err: f64 = 0.0;
            let mut worst_std: f64 = 0.0;
            let mut settle: Option<usize> = Some(0);
            for p in 0..procs {
                let series = result.trace.utilization_series(p);
                let s = metrics::window(&series, 100, periods);
                worst_err = worst_err.max((s.mean - b[p]).abs());
                worst_std = worst_std.max(s.std_dev);
                let sp =
                    metrics::settling_hold(&series[..150.min(series.len())], b[p], 0.05, 0, 10);
                settle = match (settle, sp) {
                    (Some(a), Some(c)) => Some(a.max(c)),
                    _ => None,
                };
            }
            vec![
                name,
                render::f4(worst_err),
                render::f4(worst_std),
                settle.map_or("never".into(), |k| format!("{k} Ts")),
                result.control_errors.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render::table(
            &[
                "variant",
                "max |mean−B|",
                "max std",
                "settling (worst proc)",
                "ctrl errors"
            ],
            &rows
        )
    );
    eucon_bench::write_result(
        "shard_ablation.csv",
        &render::csv(
            &[
                "variant",
                "max_mean_err",
                "max_std",
                "settling",
                "ctrl_errors",
            ],
            &rows,
        ),
    );
    println!("\nExpected shape: K=1 reproduces DEUCON exactly; larger shards recover");
    println!("centralized-quality coordination while keeping local problems bounded.");
}

/// Scenario where the coupling between processors matters: P1's set point
/// is lowered to 0.4 while the other processors keep their RMS bounds.
/// Shared tasks must slow down for P1 without starving P2–P4 — the MIMO
/// controller redistributes load through the local tasks, while the
/// decoupled PID cannot.
fn coupling_stress() {
    use eucon_core::ClosedLoop;
    use eucon_sim::SimConfig;

    let set = workloads::medium();
    let mut b = rms_set_points(&set);
    b[0] = 0.4;

    println!("\n== Coupling stress: B1 lowered to 0.4, others at RMS bound (etf = 0.5) ==\n");
    let specs = vec![
        (
            "EUCON".to_string(),
            ControllerSpec::Eucon(MpcConfig::medium()),
        ),
        (
            "DEUCON (decentralized)".into(),
            ControllerSpec::Decentralized(MpcConfig::medium()),
        ),
        (
            "PID (decoupled)".into(),
            ControllerSpec::Pid { kp: 0.5, ki: 0.05 },
        ),
    ];
    let mut rows: Vec<Vec<String>> = specs
        .into_par_iter()
        .map(|spec| {
            let mut cl = ClosedLoop::builder(set.clone())
                .sim_config(SimConfig::constant_etf(0.5).seed(1))
                .controller(spec.1)
                .set_points(b.clone())
                .build()
                .expect("loop");
            let result = cl.run(300);
            let mut row = vec![spec.0];
            let mut total_err = 0.0;
            for p in 0..4 {
                let s = metrics::window(&result.trace.utilization_series(p), 100, 300);
                total_err += (s.mean - b[p]).abs();
                row.push(render::f4(s.mean));
            }
            row.push(render::f4(total_err));
            row
        })
        .collect();
    let target_row = {
        let mut row = vec!["(set points)".to_string()];
        row.extend((0..4).map(|p| render::f4(b[p])));
        row.push("0".into());
        row
    };
    rows.push(target_row);
    println!(
        "{}",
        render::table(
            &[
                "controller",
                "mean u1",
                "mean u2",
                "mean u3",
                "mean u4",
                "Σ|err|"
            ],
            &rows
        )
    );
    eucon_bench::write_result(
        "ablation_coupling.csv",
        &render::csv(&["controller", "u1", "u2", "u3", "u4", "total_err"], &rows),
    );
}
