//! Regenerates Figure 3: CPU utilization of SIMPLE under EUCON at
//! execution-time factors 0.5 (convergence to the 0.828 set points) and 7
//! (instability: collapse around 30·Ts and sustained oscillation).

use eucon_control::MpcConfig;
use eucon_core::svg::{self, ChartConfig, Series};
use eucon_core::{metrics, render, ClosedLoop, ControllerSpec};
use eucon_sim::SimConfig;
use eucon_tasks::workloads;

const PERIODS: usize = 300;

fn run(etf: f64) -> eucon_core::RunResult {
    let mut cl = ClosedLoop::builder(workloads::simple())
        .sim_config(SimConfig::constant_etf(etf).seed(1))
        .controller(ControllerSpec::Eucon(MpcConfig::simple()))
        .build()
        .expect("loop construction");
    cl.run(PERIODS)
}

fn emit(label: &str, etf: f64, result: &eucon_core::RunResult) {
    println!("\n== Figure 3({label}): SIMPLE, EUCON, etf = {etf} ==\n");
    let u1 = result.trace.utilization_series(0);
    let u2 = result.trace.utilization_series(1);
    let b = result.set_points[0];

    println!("P1 utilization over time (y: 0..1, x: sampling periods / 4):");
    let thinned: Vec<f64> = u1.iter().step_by(4).copied().collect();
    println!("{}", render::ascii_series(&thinned, 12));

    let s1 = metrics::window(&u1, 100, PERIODS);
    let s2 = metrics::window(&u2, 100, PERIODS);
    let rows = vec![
        vec![
            "P1".into(),
            render::f4(s1.mean),
            render::f4(s1.std_dev),
            render::f4(b),
            metrics::acceptable(s1, b).to_string(),
        ],
        vec![
            "P2".into(),
            render::f4(s2.mean),
            render::f4(s2.std_dev),
            render::f4(b),
            metrics::acceptable(s2, b).to_string(),
        ],
    ];
    println!(
        "{}",
        render::table(
            &[
                "proc",
                "mean [100Ts,300Ts]",
                "std dev",
                "set point",
                "acceptable"
            ],
            &rows
        )
    );
    println!("deadline miss ratio: {:.4}", result.deadlines.miss_ratio());

    let series_rows: Vec<Vec<String>> = result
        .trace
        .steps()
        .iter()
        .enumerate()
        .map(|(k, s)| {
            vec![
                k.to_string(),
                render::f4(s.utilization[0]),
                render::f4(s.utilization[1]),
                render::f4(b),
            ]
        })
        .collect();
    eucon_bench::write_result(
        &format!("fig3{label}_etf{etf}.csv"),
        &render::csv(&["k", "u1", "u2", "set_point"], &series_rows),
    );
    let chart = svg::line_chart(
        &[
            Series {
                label: "P1",
                values: &u1,
            },
            Series {
                label: "P2",
                values: &u2,
            },
        ],
        &ChartConfig {
            title: &format!("Figure 3({label}): SIMPLE under EUCON, etf = {etf}"),
            x_label: "time (sampling periods)",
            y_label: "CPU utilization",
            y_range: Some((0.0, 1.0)),
            reference: Some(b),
        },
    );
    eucon_bench::write_result(&format!("fig3{label}_etf{etf}.svg"), &chart);
}

fn main() {
    let a = run(0.5);
    emit("a", 0.5, &a);
    let b = run(7.0);
    emit("b", 7.0, &b);

    println!("\nExpected shapes (paper): (a) both processors converge to 0.828 and hold;");
    println!(
        "(b) initial saturation, collapse around 30Ts, sustained oscillation, no convergence."
    );
}
