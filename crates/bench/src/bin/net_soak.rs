//! Transport soak: thousands of closed-loop periods over every lane
//! backend, with a hard zero-decode-error gate.
//!
//! Runs the distributed loop (controller node + per-processor nodes
//! exchanging binary frames) for `--periods` sampling periods (default
//! 2000) over each backend configuration of the selected lane engine:
//!
//! * `--engine pair` (default) — per-lane transport pairs: ideal
//!   in-process channels (the bit-exact reference lane), ideal loopback
//!   TCP, and TCP with 10% report loss plus one period of command delay.
//! * `--engine poll` — the many-lane poll engine: ideal poll-TCP, the
//!   same lossy/delayed configuration, and a `--lanes`-wide (default
//!   1000) raw [`LaneFabric`] sweep soak with a resident-set gate
//!   (post-warm-up RSS may at most double, plus 32 MiB of slack).
//!
//! Every configuration must finish with **zero frame-decode errors** and
//! zero controller errors — a single corrupted or torn frame fails the
//! run.  Stats land in `results/net_soak.csv`, which records the engine
//! and the core count alongside the counters.
//!
//! ```text
//! cargo run --release -p eucon-bench --bin net_soak -- --engine poll --periods 2000
//! ```

use std::time::{Duration, Instant};

use eucon_control::MpcConfig;
use eucon_core::{render, ControllerSpec, DistributedLoop, DistributedLoopBuilder, LaneModel};
use eucon_net::{tcp_lane_fabric, FrameKind, LaneFabric, TcpConfig};
use eucon_sim::SimConfig;
use eucon_tasks::workloads;

#[derive(Clone, Copy, PartialEq)]
enum Engine {
    Pair,
    Poll,
}

impl Engine {
    fn name(self) -> &'static str {
        match self {
            Engine::Pair => "pair",
            Engine::Poll => "poll",
        }
    }
}

struct Args {
    periods: usize,
    engine: Engine,
    lanes: usize,
    seed: u64,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        periods: 2000,
        engine: Engine::Pair,
        lanes: 1000,
        seed: 3,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| panic!("{arg} takes a value"));
        match arg.as_str() {
            "--periods" => parsed.periods = value().parse().expect("--periods takes an integer"),
            "--lanes" => parsed.lanes = value().parse().expect("--lanes takes an integer"),
            "--seed" => parsed.seed = value().parse().expect("--seed takes an integer"),
            "--engine" => {
                parsed.engine = match value().as_str() {
                    "pair" => Engine::Pair,
                    "poll" => Engine::Poll,
                    other => panic!("unknown engine '{other}' (supported: pair, poll)"),
                }
            }
            other => panic!(
                "unknown argument '{other}' \
                 (supported: --periods N, --engine pair|poll, --lanes N, --seed S)"
            ),
        }
    }
    parsed
}

struct Soak {
    name: &'static str,
    configure: fn(DistributedLoopBuilder) -> DistributedLoopBuilder,
}

/// Receive window for the TCP soaks: long enough that delivery is
/// deterministic on loaded machines, short enough that the lossy soak's
/// stale periods don't dominate wall time.
const RECV_WINDOW: Duration = Duration::from_millis(5);

fn soaks(engine: Engine) -> Vec<Soak> {
    match engine {
        Engine::Pair => vec![
            Soak {
                name: "channel ideal",
                configure: |b| b.channel(4),
            },
            Soak {
                name: "tcp ideal",
                configure: |b| b.tcp(TcpConfig::default()).recv_timeout(RECV_WINDOW),
            },
            Soak {
                name: "tcp 10% report loss + cmd delay 1",
                configure: |b| {
                    b.tcp(TcpConfig::default())
                        .report_lanes(LaneModel::lossy(0.1, 77))
                        .command_lanes(LaneModel::delayed(1))
                        .recv_timeout(RECV_WINDOW)
                },
            },
        ],
        Engine::Poll => vec![
            Soak {
                name: "tcp-poll ideal",
                configure: |b| b.tcp_poll(TcpConfig::default()).recv_timeout(RECV_WINDOW),
            },
            Soak {
                name: "tcp-poll 10% report loss + cmd delay 1",
                configure: |b| {
                    b.tcp_poll(TcpConfig::default())
                        .report_lanes(LaneModel::lossy(0.1, 77))
                        .command_lanes(LaneModel::delayed(1))
                        .recv_timeout(RECV_WINDOW)
                },
            },
        ],
    }
}

/// Resident-set size in bytes, if the platform exposes
/// `/proc/self/statm` (Linux).  `None` elsewhere — the RSS gate is then
/// skipped.
fn rss_bytes() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let resident_pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(resident_pages * 4096)
}

/// The many-lane sweep soak: `lanes` real loopback-TCP lanes on one
/// [`LaneFabric`], every lane carrying one report up and one command
/// down per period, with the RSS gate armed after a warm-up.
fn fabric_soak(lanes: usize, periods: usize, seed: u64) -> Vec<String> {
    println!("  [fabric {lanes} lanes] connecting ...");
    let mut fabric: LaneFabric =
        tcp_lane_fabric(&TcpConfig::default(), lanes).expect("lane fabric connects");
    let started = Instant::now();
    let mut delivered_up = 0u64;
    let mut delivered_down = 0u64;
    let mut rss_baseline: Option<u64> = None;
    let warmup = (periods / 10).clamp(1, 100);
    for k in 0..periods {
        let period = k as u64;
        for lane in 0..lanes {
            let u = 0.5 + 0.25 * ((lane as u64 ^ seed) as f64 / u64::MAX as f64);
            fabric
                .proc
                .send(
                    lane,
                    FrameKind::UtilizationReport,
                    period,
                    period,
                    0,
                    std::iter::once(u),
                )
                .expect("report send");
            fabric
                .ctrl
                .send(
                    lane,
                    FrameKind::RateCommand,
                    period,
                    period,
                    0,
                    [1.0, 2.0].into_iter(),
                )
                .expect("command send");
        }
        for lane in 0..lanes {
            delivered_up += fabric
                .ctrl
                .drain(lane, |view| {
                    assert_eq!(view.kind(), FrameKind::UtilizationReport);
                    assert_eq!(view.len(), 1);
                })
                .expect("report drain") as u64;
            delivered_down += fabric
                .proc
                .drain(lane, |view| {
                    assert_eq!(view.kind(), FrameKind::RateCommand);
                    assert_eq!(view.len(), 2);
                })
                .expect("command drain") as u64;
        }
        if k + 1 == warmup {
            rss_baseline = rss_bytes();
        }
    }
    // Settle: loopback TCP loses nothing, so sweep until every frame
    // sent has been drained (bounded by a generous deadline).
    let expected = (lanes * periods) as u64;
    let settle_deadline = Instant::now() + Duration::from_secs(10);
    while (delivered_up < expected || delivered_down < expected) && Instant::now() < settle_deadline
    {
        for lane in 0..lanes {
            delivered_up += fabric.ctrl.drain(lane, |_| {}).expect("report drain") as u64;
            delivered_down += fabric.proc.drain(lane, |_| {}).expect("command drain") as u64;
        }
    }
    let elapsed = started.elapsed();
    let stats = fabric.ctrl.stats().merge(&fabric.proc.stats());
    assert_eq!(stats.decode_errors, 0, "fabric soak: frame decode errors");
    assert_eq!(stats.sent, 2 * expected, "every send must succeed");
    assert_eq!(
        (delivered_up, delivered_down),
        (expected, expected),
        "fabric soak lost frames"
    );
    if let (Some(baseline), Some(now)) = (rss_baseline, rss_bytes()) {
        let limit = 2 * baseline + 32 * 1024 * 1024;
        assert!(
            now <= limit,
            "fabric soak RSS grew past the gate: {now} > {limit} (baseline {baseline})"
        );
        println!(
            "  [fabric {lanes} lanes] RSS {:.1} MiB (baseline {:.1} MiB) within gate",
            now as f64 / (1024.0 * 1024.0),
            baseline as f64 / (1024.0 * 1024.0)
        );
    }
    println!(
        "  [fabric {lanes} lanes] ok: {} frames sent, {} delivered, 0 decode errors ({:.2}s)",
        stats.sent,
        delivered_up + delivered_down,
        elapsed.as_secs_f64()
    );
    vec![
        format!("fabric {lanes} lanes"),
        stats.sent.to_string(),
        (delivered_up + delivered_down).to_string(),
        stats.dropped.to_string(),
        stats.reconnects.to_string(),
        "0".to_string(),
        stats.bytes_sent.to_string(),
        format!("{:.2}", elapsed.as_secs_f64()),
    ]
}

fn main() {
    let args = parse_args();
    let periods = args.periods;
    let engine = args.engine;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "== Transport soak: SIMPLE, etf = 0.5, {periods} periods per backend, \
         engine {} ==\n",
        engine.name()
    );
    let mut rows: Vec<Vec<String>> = Vec::new();
    for soak in soaks(engine) {
        let builder = DistributedLoop::builder(workloads::simple())
            .sim_config(SimConfig::constant_etf(0.5).seed(args.seed))
            .controller(ControllerSpec::Eucon(MpcConfig::simple()));
        let mut dl = (soak.configure)(builder).build().expect("loop builds");
        let started = Instant::now();
        let result = dl.run(periods);
        let elapsed = started.elapsed();
        let stats = dl.transport_stats();
        let stale = result.telemetry.counter("stale_report_reuse").unwrap_or(0);

        // The gate: a soak is only green if every frame that arrived
        // decoded, and the controller never errored.
        assert_eq!(
            stats.decode_errors, 0,
            "'{}': frame decode errors after {periods} periods",
            soak.name
        );
        assert_eq!(
            result.control_errors, 0,
            "'{}': controller errors after {periods} periods",
            soak.name
        );
        assert!(
            stats.received > 0,
            "'{}': no frames arrived — the lanes are dead",
            soak.name
        );

        rows.push(vec![
            soak.name.to_string(),
            stats.sent.to_string(),
            stats.received.to_string(),
            stats.dropped.to_string(),
            stats.reconnects.to_string(),
            stale.to_string(),
            stats.bytes_sent.to_string(),
            format!("{:.2}", elapsed.as_secs_f64()),
        ]);
        println!(
            "  [{}] ok: {} frames sent, {} received, {} dropped, 0 decode errors ({:.2}s)",
            soak.name,
            stats.sent,
            stats.received,
            stats.dropped,
            elapsed.as_secs_f64()
        );
    }
    if engine == Engine::Poll {
        rows.push(fabric_soak(args.lanes, periods, args.seed));
    }
    for row in &mut rows {
        row.push(engine.name().to_string());
        row.push(cores.to_string());
    }
    let headers = [
        "backend",
        "sent",
        "received",
        "dropped",
        "reconnects",
        "stale reuse",
        "bytes sent",
        "secs",
        "engine",
        "cores",
    ];
    println!("\n{}", render::table(&headers, &rows));
    eucon_bench::write_result(
        "net_soak.csv",
        &render::csv(
            &[
                "backend",
                "frames_sent",
                "frames_received",
                "frames_dropped",
                "reconnects",
                "stale_reuse",
                "bytes_sent",
                "seconds",
                "engine",
                "cores",
            ],
            &rows,
        ),
    );
    println!("all soak gates held: zero decode errors, zero controller errors");
}
