//! Transport soak: thousands of closed-loop periods over every lane
//! backend, with a hard zero-decode-error gate.
//!
//! Runs the distributed loop (controller node + per-processor nodes
//! exchanging binary frames) for `--periods` sampling periods (default
//! 2000) over each backend configuration:
//!
//! * ideal in-process channels (the bit-exact reference lane);
//! * ideal loopback TCP (partial-frame reassembly under real syscalls);
//! * loopback TCP with 10% report loss and one period of command delay
//!   (middleware + reassembly + stale-reuse under sustained churn).
//!
//! Every configuration must finish with **zero frame-decode errors** and
//! zero controller errors — a single corrupted or torn frame fails the
//! run.  Stats land in `results/net_soak.csv`.
//!
//! ```text
//! cargo run --release -p eucon-bench --bin net_soak -- --periods 2000
//! ```

use std::time::{Duration, Instant};

use eucon_control::MpcConfig;
use eucon_core::{render, ControllerSpec, DistributedLoop, DistributedLoopBuilder, LaneModel};
use eucon_net::TcpConfig;
use eucon_sim::SimConfig;
use eucon_tasks::workloads;

fn parse_periods() -> usize {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        None => 2000,
        Some("--periods") => args
            .next()
            .expect("--periods takes a value")
            .parse()
            .expect("--periods takes a positive integer"),
        Some(other) => panic!("unknown argument '{other}' (supported: --periods N)"),
    }
}

struct Soak {
    name: &'static str,
    configure: fn(DistributedLoopBuilder) -> DistributedLoopBuilder,
}

/// Receive window for the TCP soaks: long enough that delivery is
/// deterministic on loaded machines, short enough that the lossy soak's
/// stale periods don't dominate wall time.
const RECV_WINDOW: Duration = Duration::from_millis(5);

fn soaks() -> Vec<Soak> {
    vec![
        Soak {
            name: "channel ideal",
            configure: |b| b.channel(4),
        },
        Soak {
            name: "tcp ideal",
            configure: |b| b.tcp(TcpConfig::default()).recv_timeout(RECV_WINDOW),
        },
        Soak {
            name: "tcp 10% report loss + cmd delay 1",
            configure: |b| {
                b.tcp(TcpConfig::default())
                    .report_lanes(LaneModel::lossy(0.1, 77))
                    .command_lanes(LaneModel::delayed(1))
                    .recv_timeout(RECV_WINDOW)
            },
        },
    ]
}

fn main() {
    let periods = parse_periods();
    println!("== Transport soak: SIMPLE, etf = 0.5, {periods} periods per backend ==\n");
    let mut rows: Vec<Vec<String>> = Vec::new();
    for soak in soaks() {
        let builder = DistributedLoop::builder(workloads::simple())
            .sim_config(SimConfig::constant_etf(0.5).seed(3))
            .controller(ControllerSpec::Eucon(MpcConfig::simple()));
        let mut dl = (soak.configure)(builder).build().expect("loop builds");
        let started = Instant::now();
        let result = dl.run(periods);
        let elapsed = started.elapsed();
        let stats = dl.transport_stats();
        let stale = result.telemetry.counter("stale_report_reuse").unwrap_or(0);

        // The gate: a soak is only green if every frame that arrived
        // decoded, and the controller never errored.
        assert_eq!(
            stats.decode_errors, 0,
            "'{}': frame decode errors after {periods} periods",
            soak.name
        );
        assert_eq!(
            result.control_errors, 0,
            "'{}': controller errors after {periods} periods",
            soak.name
        );
        assert!(
            stats.received > 0,
            "'{}': no frames arrived — the lanes are dead",
            soak.name
        );

        rows.push(vec![
            soak.name.to_string(),
            stats.sent.to_string(),
            stats.received.to_string(),
            stats.dropped.to_string(),
            stats.reconnects.to_string(),
            stale.to_string(),
            stats.bytes_sent.to_string(),
            format!("{:.2}", elapsed.as_secs_f64()),
        ]);
        println!(
            "  [{}] ok: {} frames sent, {} received, {} dropped, 0 decode errors ({:.2}s)",
            soak.name,
            stats.sent,
            stats.received,
            stats.dropped,
            elapsed.as_secs_f64()
        );
    }
    let headers = [
        "backend",
        "sent",
        "received",
        "dropped",
        "reconnects",
        "stale reuse",
        "bytes sent",
        "secs",
    ];
    println!("\n{}", render::table(&headers, &rows));
    eucon_bench::write_result(
        "net_soak.csv",
        &render::csv(
            &[
                "backend",
                "frames_sent",
                "frames_received",
                "frames_dropped",
                "reconnects",
                "stale_reuse",
                "bytes_sent",
                "seconds",
            ],
            &rows,
        ),
    );
    println!("all soak gates held: zero decode errors, zero controller errors");
}
