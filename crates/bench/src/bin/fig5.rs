//! Regenerates Figure 5: mean ± standard deviation of P1's utilization in
//! MEDIUM under EUCON across execution-time factors 0.1 … 6, with the
//! OPEN baseline's expected utilization for comparison.
//!
//! Paper claims reproduced here: EUCON keeps the mean within ±0.02 of the
//! 0.729 set point with σ < 0.05 for every etf in [0.1, 1] (at etf = 0.1,
//! OPEN sits at 0.073 while EUCON stays at the set point); oscillation
//! grows as execution times are underestimated.

use eucon_control::{MpcConfig, OpenLoop};
use eucon_core::svg::{self, ChartConfig, Series};
use eucon_core::{render, ControllerSpec, SteadyRun};
use eucon_sim::ExecModel;
use eucon_tasks::{rms_set_points, workloads};

fn main() {
    let set = workloads::medium();
    let b = rms_set_points(&set);
    let open = OpenLoop::design(&set, &b).expect("OPEN design");

    let run = SteadyRun::paper(
        set.clone(),
        ControllerSpec::Eucon(MpcConfig::medium()),
        ExecModel::Uniform { half_width: 0.2 },
    );
    let etfs = eucon_bench::fig5_etfs();
    let points = run.sweep(&etfs).expect("sweep");

    println!("== Figure 5: MEDIUM, P1 mean/std over [100Ts, 300Ts], EUCON vs OPEN ==\n");
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let open_u = open.expected_utilization(&set, p.etf)[0].min(1.0);
            vec![
                format!("{:.1}", p.etf),
                render::f4(p.stats[0].mean),
                render::f4(p.stats[0].std_dev),
                render::f4(open_u),
                render::f4(b[0]),
                p.acceptable[0].to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render::table(
            &[
                "etf",
                "EUCON mean u1",
                "EUCON std",
                "OPEN u1",
                "set point",
                "acceptable"
            ],
            &rows
        )
    );
    eucon_bench::write_result(
        "fig5_medium.csv",
        &render::csv(
            &[
                "etf",
                "eucon_mean_u1",
                "eucon_std_u1",
                "open_u1",
                "set_point",
                "acceptable",
            ],
            &rows,
        ),
    );

    let eucon_means: Vec<f64> = points.iter().map(|p| p.stats[0].mean).collect();
    let open_line: Vec<f64> = points
        .iter()
        .map(|p| open.expected_utilization(&set, p.etf)[0].min(1.0))
        .collect();
    eucon_bench::write_result(
        "fig5_medium.svg",
        &svg::line_chart(
            &[
                Series {
                    label: "EUCON",
                    values: &eucon_means,
                },
                Series {
                    label: "OPEN",
                    values: &open_line,
                },
            ],
            &ChartConfig {
                title: "Figure 5: MEDIUM etf sweep, EUCON vs OPEN (P1)",
                x_label: "sweep index (etf 0.1 .. 6)",
                y_label: "CPU utilization",
                y_range: Some((0.0, 1.05)),
                reference: Some(b[0]),
            },
        ),
    );

    println!("\nExpected shape (paper): EUCON flat at 0.729 for etf in [0.1, 1] (acceptable");
    println!("band), OPEN linear in etf (0.073 at 0.1, saturating >1 past etf = 1.4);");
    println!("EUCON's std dev grows with underestimated execution times.");
}
