//! Churn soak: thousands of closed-loop periods under sustained runtime
//! membership churn, with hard zero-error and bounded-memory gates.
//!
//! Three chaos scenarios, each run for `--periods` sampling periods
//! (default 2000) with the plan seeded by `--seed` (default 0):
//!
//! * **poisson churn** — MEDIUM under stochastic arrivals/departures
//!   (Bernoulli-thinned Poisson, ~2%/1.5% per period), permissive
//!   admission budget, raw EUCON;
//! * **churn during crash** — the same churn storm while P2 crashes and
//!   recovers and the actuation lanes drop 10% of commands, supervised
//!   EUCON (membership changes racing degraded mode);
//! * **admission storm** — SIMPLE at the default (tight) budget with an
//!   arrival every 10 periods: every arrival must be deferred and then
//!   rejected, without perturbing regulation.
//!
//! Gates, enforced per scenario:
//!
//! * zero controller errors;
//! * zero non-finite rates or utilization samples, every period;
//! * resident memory stays bounded (no per-period growth — RSS at the
//!   end may not exceed 2× the post-warm-up RSS plus 32 MiB).
//!
//! Stats land in `results/churn_soak.csv`.
//!
//! ```text
//! cargo run --release -p eucon-bench --bin churn_soak -- --periods 2000 --seed 0
//! ```

use std::time::Instant;

use eucon_control::{MpcConfig, SupervisorConfig};
use eucon_core::{render, AdmissionPolicy, ChurnPlan, ChurnSummary, ClosedLoop, ControllerSpec};
use eucon_sim::{FaultPlan, SimConfig};
use eucon_tasks::{workloads, ProcessorId, Task, TaskSet};

struct Args {
    periods: usize,
    seed: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        periods: 2000,
        seed: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let value = it.next().unwrap_or_else(|| panic!("{flag} takes a value"));
        match flag.as_str() {
            "--periods" => args.periods = value.parse().expect("--periods takes an integer"),
            "--seed" => args.seed = value.parse().expect("--seed takes an integer"),
            other => panic!("unknown argument '{other}' (supported: --periods N, --seed S)"),
        }
    }
    args
}

/// Resident-set size in bytes, if the platform exposes `/proc/self/statm`
/// (Linux).  `None` elsewhere — the RSS gate is then skipped.
fn rss_bytes() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let resident_pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(resident_pages * 4096)
}

/// An extra end-to-end task shaped like SIMPLE's own (used by the
/// admission storm — at the default budget it can never fit).
fn storm_task() -> Task {
    Task::builder(0.02, 0.12, 0.05)
        .subtask(ProcessorId(0), 4.0)
        .subtask(ProcessorId(1), 3.0)
        .build()
        .expect("valid task")
}

struct Scenario {
    name: &'static str,
    set: TaskSet,
    sim: SimConfig,
    controller: ControllerSpec,
    faults: FaultPlan,
    churn: ChurnPlan,
    policy: AdmissionPolicy,
}

fn scenarios(periods: usize, seed: u64) -> Vec<Scenario> {
    let medium = workloads::medium();
    let permissive = AdmissionPolicy {
        admit_threshold: 1.25,
        ..AdmissionPolicy::default()
    };
    let poisson = ChurnPlan::poisson(&medium, periods, 0.02, 0.015, seed);
    let mut storm = ChurnPlan::none();
    for k in (10..periods).step_by(10) {
        storm = storm.arrival(k, storm_task());
    }
    vec![
        Scenario {
            name: "poisson churn",
            set: medium.clone(),
            sim: SimConfig::constant_etf(0.9).seed(seed),
            controller: ControllerSpec::Eucon(MpcConfig::medium()),
            faults: FaultPlan::none(),
            churn: poisson.clone(),
            policy: permissive.clone(),
        },
        Scenario {
            name: "churn during crash",
            set: medium,
            sim: SimConfig::constant_etf(0.9).seed(seed),
            controller: ControllerSpec::SupervisedEucon {
                mpc: MpcConfig::medium(),
                supervisor: SupervisorConfig::default(),
            },
            faults: FaultPlan::none()
                .crash(1, 60, 100)
                .actuation_loss(0.1)
                .seed(seed.wrapping_add(17)),
            churn: poisson,
            policy: permissive,
        },
        Scenario {
            name: "admission storm",
            set: workloads::simple(),
            sim: SimConfig::constant_etf(0.5).seed(seed),
            controller: ControllerSpec::Eucon(MpcConfig::simple()),
            faults: FaultPlan::none(),
            churn: storm,
            policy: AdmissionPolicy::default(),
        },
    ]
}

struct Outcome {
    churn: ChurnSummary,
    control_errors: usize,
    rss_growth: Option<f64>,
    secs: f64,
}

fn soak(sc: Scenario, periods: usize) -> Outcome {
    let mut cl = ClosedLoop::builder(sc.set)
        .sim_config(sc.sim)
        .controller(sc.controller)
        .faults(sc.faults)
        .churn(sc.churn)
        .admission(sc.policy)
        .record_trace(false)
        .build()
        .expect("loop builds");
    let warmup = periods / 10;
    let started = Instant::now();
    let mut rss_after_warmup = None;
    for k in 0..periods {
        let step = cl.step();
        // The non-finite gate, every period: a NaN rate or utilization
        // sample anywhere fails the soak immediately.
        assert!(
            step.rates.iter().all(|r| r.is_finite()),
            "[{}] non-finite rate at period {k}",
            sc.name
        );
        assert!(
            step.utilization.iter().all(|u| u.is_finite()),
            "[{}] non-finite utilization at period {k}",
            sc.name
        );
        if k + 1 == warmup {
            rss_after_warmup = rss_bytes();
        }
    }
    let secs = started.elapsed().as_secs_f64();
    let result = cl.run(0);
    assert_eq!(
        result.control_errors, 0,
        "[{}] controller errors after {periods} periods",
        sc.name
    );
    let rss_growth = match (rss_after_warmup, rss_bytes()) {
        (Some(before), Some(after)) => {
            assert!(
                after <= before * 2 + 32 * 1024 * 1024,
                "[{}] resident memory grew from {before} to {after} bytes",
                sc.name
            );
            Some(after as f64 / before as f64)
        }
        _ => None,
    };
    Outcome {
        churn: result.churn,
        control_errors: result.control_errors,
        rss_growth,
        secs,
    }
}

fn main() {
    let args = parse_args();
    let periods = args.periods;
    println!(
        "== Churn soak: {periods} periods per scenario, plan seed {} ==\n",
        args.seed
    );
    let mut rows: Vec<Vec<String>> = Vec::new();
    for sc in scenarios(periods, args.seed) {
        let name = sc.name;
        let o = soak(sc, periods);
        let ch = o.churn;
        // The storm's arrivals can never fit the default budget: every
        // one must end rejected, none admitted.
        if name == "admission storm" {
            assert_eq!(ch.admitted, 0, "storm arrivals must all be rejected");
            assert_eq!(ch.rejected, ((periods - 1) / 10) as u64);
        } else {
            assert!(
                ch.admitted + ch.rejected + ch.departed > 0,
                "[{name}] the churn plan never fired"
            );
            assert_eq!(
                ch.incremental_updates + ch.model_rebuilds,
                ch.admitted + ch.departed,
                "[{name}] every membership change updates the plant model"
            );
        }
        println!(
            "  [{name}] ok: {} admitted, {} rejected, {} deferred, {} departed, \
             {} incremental / {} rebuilds ({:.2}s)",
            ch.admitted,
            ch.rejected,
            ch.deferred,
            ch.departed,
            ch.incremental_updates,
            ch.model_rebuilds,
            o.secs
        );
        rows.push(vec![
            name.to_string(),
            ch.admitted.to_string(),
            ch.rejected.to_string(),
            ch.deferred.to_string(),
            ch.departed.to_string(),
            ch.mode_changes.to_string(),
            ch.incremental_updates.to_string(),
            ch.model_rebuilds.to_string(),
            o.control_errors.to_string(),
            o.rss_growth
                .map_or("n/a".to_string(), |g| format!("{g:.2}")),
            format!("{:.2}", o.secs),
        ]);
    }
    let headers = [
        "scenario",
        "admitted",
        "rejected",
        "deferred",
        "departed",
        "mode changes",
        "incremental",
        "rebuilds",
        "ctrl errors",
        "rss growth",
        "secs",
    ];
    println!("\n{}", render::table(&headers, &rows));
    eucon_bench::write_result(
        "churn_soak.csv",
        &render::csv(
            &[
                "scenario",
                "admitted",
                "rejected",
                "deferred",
                "departed",
                "mode_changes",
                "incremental_updates",
                "model_rebuilds",
                "control_errors",
                "rss_growth",
                "seconds",
            ],
            &rows,
        ),
    );
    println!(
        "all churn gates held: zero controller errors, zero non-finite samples, bounded memory"
    );
}
