//! CI smoke for cluster-scale sharded control (ISSUE 8): a 256-processor
//! locality workload under the stochastic execution model, sharded at 16
//! processors per shard, boundary exchange over `eucon-net` lanes.
//!
//! Gates (the process exits nonzero on violation):
//!
//! * every processor's tail-window mean utilization within ±0.03 of its
//!   set point by period 150,
//! * zero controller-error periods,
//! * the same gates with the boundary lanes behind 1-period delay and 5%
//!   loss — eventual consistency must degrade gracefully, not diverge.
//!
//! `--seed S` (default `$EUCON_SHARD_SEED`, then 0) seeds the simulator,
//! so a CI seed matrix exercises distinct stochastic trajectories.
//!
//! ```text
//! cargo run --release -p eucon-bench --bin shard_smoke -- --seed 1
//! ```

use eucon_control::MpcConfig;
use eucon_core::{metrics, render, BoundaryMode, ClosedLoop, ControllerSpec};
use eucon_sim::{ExecModel, SimConfig};
use eucon_tasks::{rms_set_points, workloads::RandomWorkload};

const PROCS: usize = 256;
const SHARD_SIZE: usize = 16;
const PERIODS: usize = 150;
const TOLERANCE: f64 = 0.03;

fn seed_from_args() -> u64 {
    let mut seed: Option<u64> = std::env::var("EUCON_SHARD_SEED")
        .ok()
        .map(|v| v.parse().expect("EUCON_SHARD_SEED takes an integer"));
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                let value = it.next().expect("--seed needs a value");
                seed = Some(value.parse().expect("--seed takes an integer"));
            }
            other => panic!("unknown argument '{other}' (supported: --seed S)"),
        }
    }
    seed.unwrap_or(0)
}

fn main() {
    let seed = seed_from_args();
    let set = RandomWorkload::new(PROCS, PROCS * 3)
        .seed(21)
        .locality(2)
        .max_chain_len(3)
        .generate();
    let b = rms_set_points(&set);
    println!(
        "== Shard smoke: {PROCS}x{} locality workload, shard size {SHARD_SIZE}, seed {seed} ==\n",
        set.num_tasks()
    );

    let mut rows = Vec::new();
    let scenarios: Vec<(&str, BoundaryMode)> = vec![
        ("ideal lanes", BoundaryMode::IdealLanes),
        (
            "lossy lanes (delay 1, loss 5%)",
            BoundaryMode::LossyLanes {
                delay: 1,
                loss: 0.05,
                seed,
            },
        ),
    ];
    for (name, boundary) in scenarios {
        let mut cl = ClosedLoop::builder(set.clone())
            .sim_config(
                SimConfig::constant_etf(0.9)
                    .exec_model(ExecModel::Uniform { half_width: 0.2 })
                    .seed(seed),
            )
            .controller(ControllerSpec::Sharded {
                mpc: MpcConfig::medium(),
                shard_size: SHARD_SIZE,
                boundary,
            })
            .build()
            .expect("closed loop");
        let result = cl.run(PERIODS);
        let mut worst = 0.0f64;
        for p in 0..PROCS {
            let s = metrics::window(&result.trace.utilization_series(p), PERIODS - 30, PERIODS);
            worst = worst.max((s.mean - b[p]).abs());
        }
        rows.push(vec![
            name.to_string(),
            render::f4(worst),
            result.control_errors.to_string(),
        ]);
        assert!(
            worst <= TOLERANCE,
            "GATE FAILED [{name}]: worst tail error {worst:.4} exceeds ±{TOLERANCE}"
        );
        assert_eq!(
            result.control_errors, 0,
            "GATE FAILED [{name}]: controller errors"
        );
    }
    println!(
        "{}",
        render::table(&["boundary", "worst |mean−B|", "ctrl errors"], &rows)
    );
    println!("\nAll gates passed: convergence ±{TOLERANCE} on every processor, zero");
    println!("controller errors, with and without boundary delay/loss.");
}
