//! Fleet throughput study: N independent EUCON loops on the
//! work-stealing pool, swept over fleet sizes and thread counts.
//!
//! Reports aggregate control throughput (sampling periods per second)
//! and simulator event throughput (Mevents/s), the parallel speedup over
//! one thread, and cross-checks that every thread count produced the
//! same per-loop digests (the fleet determinism contract).
//!
//! `EUCON_FLEET_SMOKE=1` shrinks the sweep to a seconds-long CI smoke
//! run; the full sweep reaches the 10 000-loop tier.

use eucon_control::MpcConfig;
use eucon_core::{render, ControllerSpec, FleetConfig, FleetLoopSpec, FleetRunner};
use eucon_sim::SimConfig;
use eucon_tasks::workloads;

/// A heterogeneous fleet: mostly SIMPLE loops (the cheap common case)
/// with every fourth member running MEDIUM, seeded per index so no two
/// loops follow identical trajectories.
fn specs(n: usize) -> Vec<FleetLoopSpec> {
    (0..n)
        .map(|i| {
            if i % 4 == 3 {
                FleetLoopSpec::new(workloads::medium())
                    .sim_config(SimConfig::constant_etf(0.9).seed(i as u64))
                    .controller(ControllerSpec::Eucon(MpcConfig::medium()))
            } else {
                FleetLoopSpec::new(workloads::simple())
                    .sim_config(SimConfig::constant_etf(0.5).seed(i as u64))
            }
        })
        .collect()
}

fn main() {
    let smoke = std::env::var("EUCON_FLEET_SMOKE").is_ok_and(|v| v != "0");
    let (sizes, periods, thread_sweep): (Vec<usize>, usize, Vec<usize>) = if smoke {
        (vec![64], 10, vec![1, 2])
    } else {
        (vec![1_000, 10_000], 40, vec![1, 2, 4, 8])
    };
    println!(
        "== Fleet throughput: {} loops/period sweep ({}) ==\n",
        sizes
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("/"),
        if smoke { "smoke" } else { "full" }
    );
    let cores = eucon_bench::detected_cores();
    println!("  [detected cores: {cores}]");
    if let Some(&max_threads) = thread_sweep.iter().max() {
        eucon_bench::warn_if_oversubscribed(max_threads);
    }

    let mut rows = Vec::new();
    for &n in &sizes {
        let fleet_specs = specs(n);
        let mut baseline: Option<(f64, Vec<u64>)> = None;
        for &threads in &thread_sweep {
            let mut fleet = FleetRunner::new(
                FleetConfig::new(periods)
                    .threads(threads)
                    .telemetry_batch(16),
            );
            for spec in fleet_specs.iter().cloned() {
                fleet.push(spec);
            }
            let report = fleet.run().expect("fleet runs");
            assert_eq!(report.control_errors, 0, "healthy fleet");
            let speedup = match &baseline {
                None => {
                    baseline = Some((report.elapsed_secs, report.digests.clone()));
                    1.0
                }
                Some((t1, digests)) => {
                    assert_eq!(
                        digests, &report.digests,
                        "{threads}-thread digests must match the 1-thread run"
                    );
                    t1 / report.elapsed_secs
                }
            };
            rows.push(vec![
                n.to_string(),
                threads.to_string(),
                cores.to_string(),
                format!("{:.1}", report.elapsed_secs * 1e3),
                format!("{:.0}", report.periods_per_sec()),
                format!("{:.2}", report.mevents_per_sec()),
                format!("{speedup:.2}"),
                report.shared_models.to_string(),
            ]);
        }
    }
    println!(
        "{}",
        render::table(
            &[
                "loops",
                "threads",
                "cores",
                "wall ms",
                "periods/s",
                "Mevents/s",
                "speedup vs 1T",
                "shared models",
            ],
            &rows
        )
    );
    eucon_bench::write_result(
        "fleet_bench.csv",
        &render::csv(
            &[
                "loops",
                "threads",
                "cores",
                "wall_ms",
                "periods_per_s",
                "mevents_per_s",
                "speedup",
                "shared_models",
            ],
            &rows,
        ),
    );
    println!("\nExpected shape: throughput scales with threads until the memory");
    println!("bandwidth of the per-loop working sets saturates; digests are");
    println!("bit-identical at every thread count (asserted above).");
}
