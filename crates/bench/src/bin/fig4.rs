//! Regenerates Figure 4: mean ± standard deviation of P1's utilization in
//! SIMPLE under EUCON across execution-time factors 0.2 … 10, measured
//! over [100·Ts, 300·Ts].
//!
//! Two sweeps are emitted:
//!
//! * `table1` — Table 1's rate bounds exactly as printed.  Below
//!   etf ≈ 0.42 the rates saturate at Rmax (max estimated utilization is
//!   2.0 per processor), so the utilization cannot reach 0.828 there; the
//!   paper nevertheless reports tracking from 0.2, which Table 1's bounds
//!   cannot produce — see EXPERIMENTS.md.
//! * `widened` — Rmax × 3, demonstrating set-point tracking across the
//!   whole sweep, matching the paper's described shape.

use eucon_control::MpcConfig;
use eucon_core::svg::{self, ChartConfig, Series};
use eucon_core::{render, ControllerSpec, SteadyRun};
use eucon_sim::ExecModel;
use eucon_tasks::TaskSet;

fn sweep(name: &str, set: TaskSet) {
    let run = SteadyRun::paper(
        set,
        ControllerSpec::Eucon(MpcConfig::simple()),
        ExecModel::Constant,
    );
    let etfs = eucon_bench::fig4_etfs();
    let points = run.sweep(&etfs).expect("sweep");

    println!("\n== Figure 4 ({name}): SIMPLE, EUCON, P1 mean/std over [100Ts, 300Ts] ==\n");
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.1}", p.etf),
                render::f4(p.stats[0].mean),
                render::f4(p.stats[0].std_dev),
                "0.8284".into(),
                p.acceptable[0].to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render::table(
            &["etf", "mean u1", "std dev", "set point", "acceptable"],
            &rows
        )
    );
    eucon_bench::write_result(
        &format!("fig4_{name}.csv"),
        &render::csv(
            &["etf", "mean_u1", "std_u1", "set_point", "acceptable"],
            &rows,
        ),
    );
    let means: Vec<f64> = points.iter().map(|p| p.stats[0].mean).collect();
    let stds: Vec<f64> = points.iter().map(|p| p.stats[0].std_dev).collect();
    eucon_bench::write_result(
        &format!("fig4_{name}.svg"),
        &svg::line_chart(
            &[
                Series {
                    label: "mean u1",
                    values: &means,
                },
                Series {
                    label: "std dev",
                    values: &stds,
                },
            ],
            &ChartConfig {
                title: &format!("Figure 4 ({name}): SIMPLE etf sweep"),
                x_label: "sweep index (etf 0.2 .. 10)",
                y_label: "CPU utilization",
                y_range: Some((0.0, 1.05)),
                reference: Some(0.8284),
            },
        ),
    );
}

fn main() {
    sweep("table1", eucon_tasks::workloads::simple());
    sweep("widened", eucon_tasks::workloads::simple_widened(3.0));
    println!("\nExpected shape (paper): mean ≈ set point over a wide etf range; std dev < 0.05");
    println!("for small etf, growing once execution times are underestimated; mean diverges");
    println!("linearly above the stability bound (paper: >6.5; our analysis: 6.51).");
}
