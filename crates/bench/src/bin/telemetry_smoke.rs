//! Telemetry schema smoke check (run by CI): drives the MEDIUM closed
//! loop with a JSONL sink attached, then parses the stream back and
//! asserts it is non-empty and schema-stable — every row carries exactly
//! the registry's columns, in a fixed order, with `period`/`time` keys
//! first.
//!
//! ```text
//! cargo run --release -p eucon-bench --bin telemetry_smoke
//! ```

use eucon_control::MpcConfig;
use eucon_core::telemetry::JsonlSink;
use eucon_core::{ClosedLoop, ControllerSpec};
use eucon_sim::SimConfig;
use eucon_tasks::workloads;

const PERIODS: usize = 60;

/// Extracts the object keys of one flat JSONL row, in order.
fn keys(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(start) = rest.find('"') {
        let tail = &rest[start + 1..];
        let end = tail.find('"').expect("closing quote");
        // A key is a quoted string immediately followed by a colon.
        if tail[end + 1..].starts_with(':') {
            out.push(tail[..end].to_string());
        }
        rest = &tail[end + 1..];
    }
    out
}

fn main() {
    println!("== Telemetry schema smoke: MEDIUM, {PERIODS} periods, JSONL ==\n");
    let path = eucon_bench::results_dir().join("telemetry_medium.jsonl");
    let mut cl = ClosedLoop::builder(workloads::medium())
        .sim_config(SimConfig::constant_etf(0.5))
        .controller(ControllerSpec::Eucon(MpcConfig::medium()))
        .telemetry_sink(JsonlSink::create(&path).expect("create jsonl sink"))
        .build()
        .expect("loop builds");
    let result = cl.run(PERIODS);
    assert_eq!(result.telemetry.counter("sink_errors"), Some(0));

    let text = std::fs::read_to_string(&path).expect("telemetry stream readable");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), PERIODS, "one JSONL row per sampling period");

    // Schema stability: every row has exactly the first row's keys, and
    // that schema is `period`, `time`, then the registry columns.
    let schema = keys(lines[0]);
    assert_eq!(&schema[..2], &["period".to_string(), "time".to_string()]);
    let columns = cl.telemetry().columns();
    assert_eq!(
        &schema[2..],
        columns,
        "JSONL keys match the registry's column order"
    );
    for (i, line) in lines.iter().enumerate() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "row {i} is an object"
        );
        assert_eq!(keys(line), schema, "row {i} drifted from the schema");
    }

    // The stream carries the signals the observability layer promises.
    for required in [
        "qp_warm_hits",
        "qp_cold_retries",
        "qp_iterations",
        "mode_transitions",
        "engine_events",
        "tracking_error_count",
        "span_control_ns_count",
        "u_p1",
        "u_p4",
    ] {
        assert!(
            schema.iter().any(|k| k == required),
            "schema misses `{required}`"
        );
    }
    println!(
        "  {} rows x {} keys, schema stable",
        lines.len(),
        schema.len()
    );
    println!("  [verified {}]", path.display());
    println!("\ntelemetry smoke passed");
}
