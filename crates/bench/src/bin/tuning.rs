//! Regenerates the paper's §6.3 control-tuning discussion as data: the
//! tradeoff between convergence speed and oscillation/gain-margin as a
//! function of the reference time constant `Tref/Ts`, analytically (pole
//! locations, critical gains) and in simulation (settling times, tail
//! standard deviation).

use eucon_control::{stability, MpcConfig};
use eucon_core::{metrics, render, ControllerSpec, SteadyRun};
use eucon_sim::ExecModel;
use eucon_tasks::workloads;
use rayon::prelude::*;

fn main() {
    println!("== §6.3 tuning: Tref/Ts tradeoff on SIMPLE (etf = 0.5) ==\n");
    let f = workloads::simple().allocation_matrix();
    let trefs = [1.0, 2.0, 4.0, 8.0, 16.0];

    // Analysis + simulation per Tref value are independent; fan them out.
    let rows: Vec<Vec<String>> = trefs
        .par_iter()
        .map(|&tref| {
            let mut cfg = MpcConfig::simple();
            cfg.tref_over_ts = tref;

            let rho =
                stability::closed_loop_spectral_radius(&f, &cfg, &[0.5, 0.5]).expect("radius");
            let critical =
                stability::critical_uniform_gain(&f, &cfg, 100.0, 1e-4).expect("critical gain");

            let run = SteadyRun::paper(
                workloads::simple(),
                ControllerSpec::Eucon(cfg),
                ExecModel::Constant,
            );
            let result = run.run(0.5).expect("run");
            let u = result.trace.utilization_series(0);
            let settle = metrics::settling_hold(&u, 0.8284, 0.05, 0, 10)
                .map_or("never".to_string(), |k| format!("{k} Ts"));
            let tail = metrics::window(&u, 100, 300);

            vec![
                format!("{tref:.0}"),
                render::f4(rho),
                format!("{critical:.2}"),
                settle,
                render::f4(tail.std_dev),
            ]
        })
        .collect();
    println!(
        "{}",
        render::table(
            &[
                "Tref/Ts",
                "radius @ g=0.5",
                "critical gain",
                "settling (sim)",
                "tail σ (sim)"
            ],
            &rows
        )
    );
    eucon_bench::write_result(
        "tuning_tref.csv",
        &render::csv(
            &[
                "tref_over_ts",
                "radius",
                "critical_gain",
                "settling",
                "tail_std",
            ],
            &rows,
        ),
    );

    println!("\n§6.3's tradeoff, quantified: a snappier reference (small Tref) settles");
    println!("faster but destabilizes at lower gains; a slower reference buys gain");
    println!("margin at the cost of settling time.  The paper's Tref/Ts = 4 sits in the");
    println!("middle.  Pessimistic execution-time estimates (etf < 1) reduce the tail σ");
    println!("without underutilization (see fig4 and the integration tests).");
}
