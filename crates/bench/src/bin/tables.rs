//! Regenerates Table 1 (SIMPLE task parameters) and Table 2 (controller
//! parameters) from the code, proving the encoded workloads match the
//! paper.

use eucon_core::render;
use eucon_tasks::{rms_set_points, workloads, ProcessorId};

fn main() {
    println!("== Table 1: task parameters in SIMPLE ==\n");
    let simple = workloads::simple();
    let mut rows = Vec::new();
    for (t, task) in simple.tasks().iter().enumerate() {
        for (j, s) in task.subtasks().iter().enumerate() {
            rows.push(vec![
                format!("T{}{}", t + 1, j + 1),
                s.processor.to_string(),
                format!("{:.0}", s.estimated_time),
                format!("{:.0}", 1.0 / task.rate_max()),
                format!("{:.0}", 1.0 / task.rate_min()),
                format!("{:.0}", 1.0 / task.initial_rate()),
            ]);
        }
    }
    let t1 = render::table(&["Tij", "Proc", "cij", "1/Rmax", "1/Rmin", "1/r(0)"], &rows);
    println!("{t1}");
    eucon_bench::write_result(
        "table1_simple.csv",
        &render::csv(
            &["Tij", "Proc", "cij", "inv_rmax", "inv_rmin", "inv_r0"],
            &rows,
        ),
    );

    println!("\n== Table 2: controller parameters ==\n");
    let rows = vec![
        vec![
            "SIMPLE".into(),
            "2".into(),
            "1".into(),
            "4".into(),
            "1000".into(),
        ],
        vec![
            "MEDIUM".into(),
            "4".into(),
            "2".into(),
            "4".into(),
            "1000".into(),
        ],
    ];
    println!(
        "{}",
        render::table(&["System", "P", "M", "Tref/Ts", "Ts"], &rows)
    );

    println!("\n== MEDIUM workload summary (synthesized per §7.1 invariants) ==\n");
    let medium = workloads::medium();
    let b = rms_set_points(&medium);
    let mut rows = Vec::new();
    for p in 0..medium.num_processors() {
        rows.push(vec![
            ProcessorId(p).to_string(),
            medium.num_subtasks_on(ProcessorId(p)).to_string(),
            render::f4(b[p]),
        ]);
    }
    println!(
        "{}",
        render::table(&["Proc", "subtasks", "set point B"], &rows)
    );

    let mut rows = Vec::new();
    for (t, task) in medium.tasks().iter().enumerate() {
        let chain: Vec<String> = task
            .subtasks()
            .iter()
            .map(|s| s.processor.to_string())
            .collect();
        let cs: Vec<String> = task
            .subtasks()
            .iter()
            .map(|s| format!("{:.1}", s.estimated_time))
            .collect();
        rows.push(vec![
            format!("T{}", t + 1),
            chain.join("->"),
            cs.join(","),
            format!("{:.0}", 1.0 / task.initial_rate()),
            format!("{:.1}", 1.0 / task.rate_max()),
            format!("{:.0}", 1.0 / task.rate_min()),
        ]);
    }
    let tm = render::table(
        &["Task", "chain", "cij", "1/r(0)", "1/Rmax", "1/Rmin"],
        &rows,
    );
    println!("{tm}");
    eucon_bench::write_result(
        "table_medium.csv",
        &render::csv(
            &["task", "chain", "cij", "inv_r0", "inv_rmax", "inv_rmin"],
            &rows,
        ),
    );
}
