//! Shared helpers for the figure-regeneration binaries and benches.
//!
//! Every figure and table of the EUCON paper's evaluation section has a
//! binary in `src/bin/` that regenerates it:
//!
//! | Artifact | Binary | Command |
//! |----------|--------|---------|
//! | Tables 1–2 | `tables` | `cargo run -p eucon-bench --bin tables` |
//! | §6.2 stability example | `stability` | `cargo run -p eucon-bench --bin stability` |
//! | Figure 3(a)/(b) | `fig3` | `cargo run -p eucon-bench --bin fig3` |
//! | Figure 4 | `fig4` | `cargo run -p eucon-bench --bin fig4` |
//! | Figure 5 | `fig5` | `cargo run -p eucon-bench --bin fig5` |
//! | Figures 6–8 | `fig6_7_8` | `cargo run -p eucon-bench --bin fig6_7_8` |
//! | §6.3 tuning tradeoff | `tuning` | `cargo run -p eucon-bench --bin tuning` |
//! | Design ablations (extra) | `ablation` | `cargo run -p eucon-bench --bin ablation` |
//! | Scaling: centralized vs DEUCON (extra) | `scaling` | `cargo run -p eucon-bench --bin scaling` |
//!
//! Each binary prints human-readable tables to stdout and writes CSV files
//! under `results/` for plotting.  Criterion benchmarks (`cargo bench`)
//! cover controller solve times, QP scaling, simulator throughput and the
//! design ablations called out in DESIGN.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs;
use std::path::{Path, PathBuf};

/// Directory (relative to the workspace root) where figure CSVs land.
pub const RESULTS_DIR: &str = "results";

/// Resolves the results directory, creating it if needed.
///
/// Uses the workspace root (two levels above this crate's manifest) so
/// the binaries can be run from any working directory.
///
/// # Panics
///
/// Panics if the directory cannot be created.
pub fn results_dir() -> PathBuf {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists")
        .to_path_buf();
    let dir = root.join(RESULTS_DIR);
    fs::create_dir_all(&dir).expect("create results directory");
    dir
}

/// Writes `contents` to `results/<name>` and reports the path on stdout.
///
/// # Panics
///
/// Panics on I/O errors (acceptable in a report generator).
pub fn write_result(name: &str, contents: &str) {
    let path = results_dir().join(name);
    fs::write(&path, contents).expect("write result file");
    println!("  [wrote {}]", path.display());
}

/// Renders a telemetry [`Snapshot`] as one flat JSON-Lines object with a
/// `run` label — the per-run telemetry format the figure and scaling
/// binaries append into `results/*.jsonl`.
///
/// Counters export as integers, gauges as numbers, histograms as
/// `_count`/`_sum`/`_max` triples (the same flattening the per-period
/// sinks use), so one schema serves both granularities.
///
/// [`Snapshot`]: eucon_core::telemetry::Snapshot
pub fn telemetry_jsonl_line(run: &str, snap: &eucon_core::telemetry::Snapshot) -> String {
    use eucon_core::telemetry::MetricValue;
    fn num(v: f64) -> String {
        if v.is_finite() {
            format!("{v}")
        } else {
            "null".to_string()
        }
    }
    let mut line = format!(
        "{{\"run\":\"{}\"",
        run.replace('\\', "\\\\").replace('"', "\\\"")
    );
    for (name, value) in snap.entries() {
        match value {
            MetricValue::Counter(c) => line.push_str(&format!(",\"{name}\":{c}")),
            MetricValue::Gauge(g) => line.push_str(&format!(",\"{name}\":{}", num(*g))),
            MetricValue::Histogram(h) => line.push_str(&format!(
                ",\"{name}_count\":{},\"{name}_sum\":{},\"{name}_max\":{}",
                h.count,
                num(h.sum),
                num(h.max)
            )),
        }
    }
    line.push('}');
    line
}

/// Detected core count (`std::thread::available_parallelism`), `0` when
/// the platform cannot report it.  Recorded in benchmark CSV/JSON output
/// so thread-scaling results carry the hardware context they were
/// measured on — a single-core container reporting flat scaling is a
/// hardware property, not a regression, and the output must say so.
pub fn detected_cores() -> usize {
    std::thread::available_parallelism().map_or(0, |n| n.get())
}

/// Prints a warning when a benchmark requests more worker threads than
/// the machine exposes (the requested counts then serialize and scaling
/// numbers flatten).  Returns `true` when oversubscribed.
pub fn warn_if_oversubscribed(requested: usize) -> bool {
    let cores = detected_cores();
    if cores > 0 && requested > cores {
        println!(
            "  [warning: {requested} threads requested on {cores} detected core(s) — \
             thread-scaling figures will flatten]"
        );
        true
    } else {
        false
    }
}

/// Standard etf grid of the paper's Figure 4 (SIMPLE sweep).
pub fn fig4_etfs() -> Vec<f64> {
    let mut v = vec![0.2, 0.5];
    let mut x = 1.0;
    while x <= 10.0 + 1e-9 {
        v.push(x);
        x += 0.5;
    }
    v
}

/// Standard etf grid of the paper's Figure 5 (MEDIUM sweep).
pub fn fig5_etfs() -> Vec<f64> {
    let mut v = vec![0.1, 0.2, 0.5];
    let mut x = 1.0;
    while x <= 6.0 + 1e-9 {
        v.push(x);
        x += 0.5;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_is_creatable() {
        let dir = results_dir();
        assert!(dir.ends_with("results"));
        assert!(dir.exists());
    }

    #[test]
    fn telemetry_lines_are_flat_json_objects() {
        use eucon_core::{ClosedLoop, ControllerSpec};
        use eucon_sim::SimConfig;
        use eucon_tasks::workloads;
        let mut cl = ClosedLoop::builder(workloads::simple())
            .sim_config(SimConfig::constant_etf(0.5))
            .controller(ControllerSpec::Open)
            .build()
            .unwrap();
        let result = cl.run(5);
        let line = telemetry_jsonl_line("smoke \"run\"", &result.telemetry);
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"run\":\"smoke \\\"run\\\"\""));
        assert!(line.contains("\"periods\":5"));
        assert!(line.contains("\"tracking_error_count\":"));
        // Flat: no nested objects.
        assert_eq!(line.matches('{').count(), 1);
    }

    #[test]
    fn grids_cover_paper_ranges() {
        let f4 = fig4_etfs();
        assert_eq!(*f4.first().unwrap(), 0.2);
        assert_eq!(*f4.last().unwrap(), 10.0);
        let f5 = fig5_etfs();
        assert_eq!(*f5.first().unwrap(), 0.1);
        assert_eq!(*f5.last().unwrap(), 6.0);
    }
}
