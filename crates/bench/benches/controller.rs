//! Controller solve-time benchmarks: one EUCON MPC step (the per-period
//! online cost, §6.1 notes its complexity is polynomial in
//! tasks × processors × horizons).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use eucon_control::{MpcConfig, MpcController, RateController};
use eucon_math::Vector;
use eucon_tasks::{rms_set_points, workloads, TaskSet};

fn controller_for(set: &TaskSet, cfg: MpcConfig) -> MpcController {
    let b = rms_set_points(set);
    MpcController::new(set, b, cfg).expect("controller")
}

fn bench_paper_configs(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpc_step");

    let simple = workloads::simple();
    let mut ctrl = controller_for(&simple, MpcConfig::simple());
    let u = Vector::from_slice(&[0.5, 0.6]);
    group.bench_function("simple_3tasks_2procs", |bch| {
        bch.iter(|| ctrl.update(black_box(&u)).expect("step"))
    });

    let medium = workloads::medium();
    let mut ctrl = controller_for(&medium, MpcConfig::medium());
    let u = Vector::from_slice(&[0.5, 0.6, 0.4, 0.7]);
    group.bench_function("medium_12tasks_4procs", |bch| {
        bch.iter(|| ctrl.update(black_box(&u)).expect("step"))
    });

    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpc_step_scaling");
    for (procs, tasks) in [(4usize, 12usize), (8, 24), (12, 36), (16, 48)] {
        let set = workloads::RandomWorkload::new(procs, tasks)
            .seed(7)
            .generate();
        let mut ctrl = controller_for(&set, MpcConfig::medium());
        let u = Vector::filled(procs, 0.5);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{procs}procs_{tasks}tasks")),
            &(),
            |bch, ()| bch.iter(|| ctrl.update(black_box(&u)).expect("step")),
        );
    }
    group.finish();
}

fn bench_horizons(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpc_step_horizons");
    let set = workloads::medium();
    for (p, m) in [(2usize, 1usize), (4, 2), (8, 4), (12, 6)] {
        let mut ctrl = controller_for(&set, MpcConfig::medium().horizons(p, m));
        let u = Vector::filled(4, 0.5);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("P{p}_M{m}")),
            &(),
            |bch, ()| bch.iter(|| ctrl.update(black_box(&u)).expect("step")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_paper_configs, bench_scaling, bench_horizons);
criterion_main!(benches);
