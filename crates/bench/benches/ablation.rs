//! Ablation timing benchmarks: end-to-end cost of one closed-loop
//! sampling period for each controller and for EUCON design variants
//! (control penalty shape, utilization constraints on/off).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use eucon_control::{ControlPenalty, MpcConfig};
use eucon_core::{ClosedLoop, ControllerSpec};
use eucon_sim::SimConfig;
use eucon_tasks::workloads;

fn run_periods(spec: ControllerSpec, periods: usize) -> f64 {
    let mut cl = ClosedLoop::builder(workloads::medium())
        .sim_config(SimConfig::constant_etf(0.5).seed(1))
        .controller(spec)
        .build()
        .expect("loop");
    let result = cl.run(periods);
    result
        .trace
        .utilization_series(0)
        .last()
        .copied()
        .unwrap_or(0.0)
}

fn bench_controllers(c: &mut Criterion) {
    let mut group = c.benchmark_group("closed_loop_20_periods");
    group.sample_size(10);
    group.bench_function("eucon", |b| {
        b.iter(|| black_box(run_periods(ControllerSpec::Eucon(MpcConfig::medium()), 20)))
    });
    group.bench_function("open", |b| {
        b.iter(|| black_box(run_periods(ControllerSpec::Open, 20)))
    });
    group.bench_function("pid", |b| {
        b.iter(|| black_box(run_periods(ControllerSpec::Pid { kp: 0.5, ki: 0.05 }, 20)))
    });
    group.finish();
}

fn bench_design_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("eucon_variants_20_periods");
    group.sample_size(10);
    let variants: Vec<(&str, MpcConfig)> = vec![
        ("paper", MpcConfig::medium()),
        (
            "move_penalty",
            MpcConfig::medium().control_penalty(ControlPenalty::Move),
        ),
        (
            "no_util_constraints",
            MpcConfig::medium().utilization_constraints(false),
        ),
        ("long_horizon", MpcConfig::medium().horizons(8, 4)),
    ];
    for (name, cfg) in variants {
        group.bench_function(name, |b| {
            b.iter(|| black_box(run_periods(ControllerSpec::Eucon(cfg.clone()), 20)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_controllers, bench_design_variants);
criterion_main!(benches);
