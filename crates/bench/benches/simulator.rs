//! Simulator throughput benchmarks: wall-clock cost of simulating the
//! paper's workloads (events are job releases, completions and guard
//! wake-ups), open loop and closed loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use eucon_control::MpcConfig;
use eucon_core::{ClosedLoop, ControllerSpec};
use eucon_sim::{ExecModel, SimConfig, Simulator};
use eucon_tasks::workloads;

fn bench_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_10_periods");
    group.sample_size(20);

    group.bench_function("simple", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(workloads::simple(), SimConfig::constant_etf(1.0));
            sim.run_until(10_000.0);
            black_box(sim.sample_utilizations())
        })
    });

    group.bench_function("medium", |b| {
        b.iter(|| {
            let cfg = SimConfig::constant_etf(1.0)
                .exec_model(ExecModel::Uniform { half_width: 0.2 })
                .seed(1);
            let mut sim = Simulator::new(workloads::medium(), cfg);
            sim.run_until(10_000.0);
            black_box(sim.sample_utilizations())
        })
    });

    group.finish();
}

/// The acceptance workload of the event-engine overhaul: the full EUCON
/// feedback loop on MEDIUM (sim + monitors + MPC + rate modulators),
/// where per-event engine overhead dominates the wall clock.
fn bench_closed_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("closed_loop");
    group.sample_size(10);

    group.bench_function("medium_30_periods", |b| {
        b.iter(|| {
            let cfg = SimConfig::constant_etf(1.0)
                .exec_model(ExecModel::Uniform { half_width: 0.2 })
                .seed(1);
            let mut cl = ClosedLoop::builder(workloads::medium())
                .sim_config(cfg)
                .controller(ControllerSpec::Eucon(MpcConfig::medium()))
                .build()
                .expect("closed loop");
            black_box(cl.run(30))
        })
    });

    // Same plant and loop with the paper's cheap baseline controllers:
    // per-period cost is dominated by the event engine and the loop
    // plumbing, so these two isolate exactly what PR 3 rewrites (the
    // EUCON variant above additionally pays the fixed MPC solve cost,
    // which PR 3 leaves bit-for-bit untouched).
    group.bench_function("medium_pid_60_periods", |b| {
        b.iter(|| {
            let cfg = SimConfig::constant_etf(1.0)
                .exec_model(ExecModel::Uniform { half_width: 0.2 })
                .seed(1);
            let mut cl = ClosedLoop::builder(workloads::medium())
                .sim_config(cfg)
                .controller(ControllerSpec::Pid { kp: 0.5, ki: 0.05 })
                .build()
                .expect("closed loop");
            black_box(cl.run(60))
        })
    });

    group.bench_function("medium_open_60_periods", |b| {
        b.iter(|| {
            let cfg = SimConfig::constant_etf(1.0)
                .exec_model(ExecModel::Uniform { half_width: 0.2 })
                .seed(1);
            let mut cl = ClosedLoop::builder(workloads::medium())
                .sim_config(cfg)
                .controller(ControllerSpec::Open)
                .build()
                .expect("closed loop");
            black_box(cl.run(60))
        })
    });

    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_scaling");
    group.sample_size(10);
    for (procs, tasks) in [(4usize, 12usize), (8, 24), (16, 48)] {
        let set = workloads::RandomWorkload::new(procs, tasks)
            .seed(3)
            .generate();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{procs}procs_{tasks}tasks")),
            &set,
            |b, set| {
                b.iter(|| {
                    let mut sim = Simulator::new(set.clone(), SimConfig::constant_etf(1.0));
                    sim.run_until(10_000.0);
                    black_box(sim.sample_utilizations())
                })
            },
        );
    }
    group.finish();
}

/// Raw event throughput at increasing platform sizes, including the
/// 64-processor configuration the tombstone-heap engine made impractical.
fn bench_sim_events(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_events");
    group.sample_size(10);
    for procs in [4usize, 16, 64] {
        let tasks = procs * 3;
        let set = workloads::RandomWorkload::new(procs, tasks)
            .seed(3)
            .generate();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{procs}procs")),
            &set,
            |b, set| {
                b.iter(|| {
                    let mut sim = Simulator::new(set.clone(), SimConfig::constant_etf(1.0));
                    sim.run_until(10_000.0);
                    black_box(sim.sample_utilizations())
                })
            },
        );
        // One instrumented run outside the timing loop: events/sec from
        // the engine counters at this size (median time is reported by
        // the harness above).
        report_events_per_sec(procs, set.clone());
    }
    group.finish();
}

/// Prints events/sec for one configuration using the engine counters.
fn report_events_per_sec(procs: usize, set: eucon_tasks::TaskSet) {
    let t0 = std::time::Instant::now();
    let mut sim = Simulator::new(set, SimConfig::constant_etf(1.0));
    sim.run_until(10_000.0);
    let secs = t0.elapsed().as_secs_f64();
    let counters = sim.counters();
    println!(
        "sim_events/{procs}procs: {} events in {:.1} ms = {:.2} Mevents/s \
         (peak queue {}, {} reschedules)",
        counters.events,
        secs * 1e3,
        counters.events as f64 / secs / 1e6,
        counters.queue_peak,
        counters.reschedules,
    );
}

criterion_group!(
    benches,
    bench_workloads,
    bench_closed_loop,
    bench_scaling,
    bench_sim_events
);
criterion_main!(benches);
