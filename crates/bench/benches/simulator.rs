//! Simulator throughput benchmarks: wall-clock cost of simulating the
//! paper's workloads (events are job releases, completions and guard
//! wake-ups).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use eucon_sim::{ExecModel, SimConfig, Simulator};
use eucon_tasks::workloads;

fn bench_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_10_periods");
    group.sample_size(20);

    group.bench_function("simple", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(workloads::simple(), SimConfig::constant_etf(1.0));
            sim.run_until(10_000.0);
            black_box(sim.sample_utilizations())
        })
    });

    group.bench_function("medium", |b| {
        b.iter(|| {
            let cfg = SimConfig::constant_etf(1.0)
                .exec_model(ExecModel::Uniform { half_width: 0.2 })
                .seed(1);
            let mut sim = Simulator::new(workloads::medium(), cfg);
            sim.run_until(10_000.0);
            black_box(sim.sample_utilizations())
        })
    });

    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_scaling");
    group.sample_size(10);
    for (procs, tasks) in [(4usize, 12usize), (8, 24), (16, 48)] {
        let set = workloads::RandomWorkload::new(procs, tasks)
            .seed(3)
            .generate();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{procs}procs_{tasks}tasks")),
            &set,
            |b, set| {
                b.iter(|| {
                    let mut sim = Simulator::new(set.clone(), SimConfig::constant_etf(1.0));
                    sim.run_until(10_000.0);
                    black_box(sim.sample_utilizations())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_workloads, bench_scaling);
criterion_main!(benches);
