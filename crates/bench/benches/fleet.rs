//! Fleet-runtime benchmarks: aggregate cost of running N independent
//! closed loops through the work-stealing pool, and the per-loop
//! overhead the runner adds on top of a hand-rolled loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use eucon_core::{FleetConfig, FleetLoopSpec, FleetRunner};
use eucon_sim::SimConfig;
use eucon_tasks::workloads;

const PERIODS: usize = 5;

fn fleet_of(n: usize) -> Vec<FleetLoopSpec> {
    (0..n)
        .map(|i| {
            FleetLoopSpec::new(workloads::simple())
                .sim_config(SimConfig::constant_etf(0.5).seed(i as u64))
        })
        .collect()
}

fn bench_fleet_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet");
    for n in [64usize, 256] {
        let specs = fleet_of(n);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}loops_{PERIODS}periods")),
            &(),
            |bch, ()| {
                bch.iter(|| {
                    let mut fleet = FleetRunner::new(FleetConfig::new(PERIODS).threads(2));
                    for spec in specs.iter().cloned() {
                        fleet.push(spec);
                    }
                    black_box(fleet.run().expect("fleet runs").total_periods)
                })
            },
        );
    }
    group.finish();
}

fn bench_batched_telemetry(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_telemetry");
    let specs = fleet_of(64);
    // `no_sink` is the floor (no export at all); `ring_batch16` adds a
    // bounded ring sink drained once per 16 periods.
    for (label, batch) in [("no_sink", 0usize), ("ring_batch16", 16)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &(), |bch, ()| {
            bch.iter(|| {
                let mut cfg = FleetConfig::new(PERIODS).threads(2);
                if batch > 0 {
                    cfg = cfg.telemetry_batch(batch);
                }
                let mut fleet = FleetRunner::new(cfg);
                for spec in specs.iter().cloned() {
                    fleet.push(spec);
                }
                black_box(fleet.run().expect("fleet runs").partial_flushes)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fleet_sizes, bench_batched_telemetry);
criterion_main!(benches);
