//! QP substrate benchmarks: the dual active-set solver that replaces
//! MATLAB `lsqlin`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use eucon_math::{Matrix, Vector};
use eucon_qp::ConstrainedLsq;

/// A box-constrained least-squares instance of dimension `n` whose
/// unconstrained optimum violates about half the bounds, forcing real
/// active-set work.
fn instance(n: usize) -> ConstrainedLsq {
    let c = Matrix::from_fn(n, n, |i, j| {
        if i == j {
            2.0
        } else if i.abs_diff(j) == 1 {
            0.5
        } else {
            0.0
        }
    });
    let d = Vector::from_iter((0..n).map(|i| if i % 2 == 0 { 3.0 } else { -3.0 }));
    ConstrainedLsq::new(c, d).bounds(&vec![-1.0; n], &vec![1.0; n])
}

fn bench_box_lsq(c: &mut Criterion) {
    let mut group = c.benchmark_group("lsqlin_box");
    for n in [4usize, 8, 16, 32] {
        let problem = instance(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &problem, |b, p| {
            b.iter(|| black_box(p.solve().expect("solve")))
        });
    }
    group.finish();
}

fn bench_constraint_count(c: &mut Criterion) {
    // Fixed 8 variables, growing numbers of general inequality rows.
    let mut group = c.benchmark_group("lsqlin_constraints");
    let n = 8;
    for rows in [8usize, 32, 128] {
        let base = instance(n);
        let g = Matrix::from_fn(rows, n, |i, j| ((i * 7 + j * 3) % 5) as f64 - 2.0);
        let h = Vector::filled(rows, 4.0);
        let problem = base.ineq(g, h);
        group.bench_with_input(BenchmarkId::from_parameter(rows), &problem, |b, p| {
            b.iter(|| black_box(p.solve().expect("solve")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_box_lsq, bench_constraint_count);
criterion_main!(benches);
