//! Statistics over recorded utilization series: mean/deviation windows,
//! the paper's acceptability criterion, and settling times.
//!
//! Folded in from `eucon_core::metrics`, which re-exports these names
//! unchanged — existing call sites keep compiling.

/// Mean and (population) standard deviation of a window of samples.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SeriesStats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
}

/// Computes mean and population standard deviation of `samples`.
///
/// Returns zeros for an empty slice.
///
/// # Example
///
/// ```
/// let s = eucon_telemetry::series::mean_std(&[1.0, 2.0, 3.0]);
/// assert!((s.mean - 2.0).abs() < 1e-12);
/// assert!((s.std_dev - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
/// ```
pub fn mean_std(samples: &[f64]) -> SeriesStats {
    if samples.is_empty() {
        return SeriesStats::default();
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    SeriesStats {
        mean,
        std_dev: var.sqrt(),
    }
}

/// Computes [`mean_std`] over the half-open index window `[from, to)`,
/// clamped to the series length.
///
/// The paper evaluates each run over `[100·Ts, 300·Ts]` to exclude the
/// transient (§7.2); use `window(series, 100, 300)` for that.
pub fn window(series: &[f64], from: usize, to: usize) -> SeriesStats {
    let to = to.min(series.len());
    let from = from.min(to);
    mean_std(&series[from..to])
}

/// The paper's acceptable-performance criterion (§7.1): the mean
/// utilization lies within `±0.02` of the set point and the standard
/// deviation is below `0.05`.
///
/// # Example
///
/// ```
/// use eucon_telemetry::series::{acceptable, SeriesStats};
///
/// let good = SeriesStats { mean: 0.83, std_dev: 0.01 };
/// assert!(acceptable(good, 0.828));
/// let oscillating = SeriesStats { mean: 0.828, std_dev: 0.09 };
/// assert!(!acceptable(oscillating, 0.828));
/// ```
pub fn acceptable(stats: SeriesStats, set_point: f64) -> bool {
    (stats.mean - set_point).abs() <= 0.02 && stats.std_dev < 0.05
}

/// First index `k ≥ from` such that every sample from `k` to the end of
/// the series stays within `±band` of `target`; `None` if the series never
/// settles.
///
/// Measures the settling time the paper reports for Experiment II ("the
/// utilization on all processors re-converges to their set points within
/// 20·Ts").
///
/// # Example
///
/// ```
/// let series = [0.2, 0.5, 0.80, 0.82, 0.83, 0.83];
/// assert_eq!(eucon_telemetry::series::settling_index(&series, 0.828, 0.05, 0), Some(2));
/// ```
pub fn settling_index(series: &[f64], target: f64, band: f64, from: usize) -> Option<usize> {
    if from >= series.len() {
        return None;
    }
    // Scan backwards: find the last out-of-band sample.
    let mut settle = from;
    for (k, &x) in series.iter().enumerate().skip(from) {
        if (x - target).abs() > band {
            settle = k + 1;
        }
    }
    if settle < series.len() {
        Some(settle)
    } else {
        None
    }
}

/// First index `k ≥ from` such that `hold` consecutive samples starting
/// at `k` all stay within `±band` of `target`; `None` if that never
/// happens.
///
/// Unlike [`settling_index`], this tolerates later noise excursions — the
/// right notion for measuring re-convergence of a stochastic plant after a
/// disturbance (Experiment II).
///
/// # Example
///
/// ```
/// let series = [0.2, 0.80, 0.82, 0.83, 0.90, 0.83];
/// assert_eq!(eucon_telemetry::series::settling_hold(&series, 0.828, 0.05, 0, 3), Some(1));
/// ```
pub fn settling_hold(
    series: &[f64],
    target: f64,
    band: f64,
    from: usize,
    hold: usize,
) -> Option<usize> {
    if hold == 0 || from + hold > series.len() {
        return None;
    }
    'outer: for k in from..=(series.len() - hold) {
        for &x in &series[k..k + hold] {
            if (x - target).abs() > band {
                continue 'outer;
            }
        }
        return Some(k);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_basics() {
        let s = mean_std(&[2.0, 2.0, 2.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(mean_std(&[]), SeriesStats::default());
    }

    #[test]
    fn window_clamps() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let s = window(&xs, 2, 100);
        assert!((s.mean - 3.5).abs() < 1e-12);
        let s = window(&xs, 10, 20);
        assert_eq!(s, SeriesStats::default());
    }

    #[test]
    fn acceptability_boundaries() {
        assert!(acceptable(
            SeriesStats {
                mean: 0.8479,
                std_dev: 0.049
            },
            0.828
        ));
        assert!(!acceptable(
            SeriesStats {
                mean: 0.8485,
                std_dev: 0.01
            },
            0.828
        ));
        assert!(!acceptable(
            SeriesStats {
                mean: 0.828,
                std_dev: 0.05
            },
            0.828
        ));
    }

    #[test]
    fn settling_cases() {
        // Settles immediately.
        assert_eq!(settling_index(&[0.8, 0.8], 0.8, 0.01, 0), Some(0));
        // Never settles.
        assert_eq!(settling_index(&[0.0, 1.0, 0.0], 0.8, 0.05, 0), None);
        // Respects `from`.
        let xs = [0.8, 0.0, 0.8, 0.8];
        assert_eq!(settling_index(&xs, 0.8, 0.05, 0), Some(2));
        assert_eq!(settling_index(&xs, 0.8, 0.05, 2), Some(2));
        // Out-of-range `from`.
        assert_eq!(settling_index(&xs, 0.8, 0.05, 10), None);
    }

    #[test]
    fn settling_hold_cases() {
        let xs = [0.0, 0.8, 0.8, 0.8, 0.0, 0.8];
        // Three consecutive in-band samples start at index 1.
        assert_eq!(settling_hold(&xs, 0.8, 0.05, 0, 3), Some(1));
        // Four consecutive never happen.
        assert_eq!(settling_hold(&xs, 0.8, 0.05, 0, 4), None);
        // `from` past the stable stretch.
        assert_eq!(settling_hold(&xs, 0.8, 0.05, 2, 2), Some(2));
        // Degenerate holds.
        assert_eq!(settling_hold(&xs, 0.8, 0.05, 0, 0), None);
        assert_eq!(settling_hold(&xs, 0.8, 0.05, 5, 3), None);
    }

    #[test]
    fn last_sample_out_of_band_never_settles() {
        let xs = [0.8, 0.8, 0.0];
        assert_eq!(settling_index(&xs, 0.8, 0.05, 0), None);
    }
}
