//! Pluggable per-period telemetry exporters.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// A consumer of per-period telemetry rows.
///
/// The producer (e.g. the closed loop) calls [`TelemetrySink::begin`]
/// once with the column schema, then [`TelemetrySink::record`] after
/// every sampling period with values matching that schema, and finally
/// [`TelemetrySink::finish`].  Sinks are deliberately push-based and
/// synchronous: the loop stays in control of when I/O happens, and a
/// sink that buffers (all of the ones here do) keeps the per-period cost
/// to a formatted write into memory.
pub trait TelemetrySink {
    /// Receives the ordered column names before the first record.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from writing the header.
    fn begin(&mut self, columns: &[String]) -> io::Result<()>;

    /// Receives one period's values (same order and length as the
    /// columns passed to [`TelemetrySink::begin`]).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    fn record(&mut self, period: u64, time: f64, values: &[f64]) -> io::Result<()>;

    /// Receives several periods' rows at once: row `i` covers period
    /// `periods[i]` at `times[i]` with values
    /// `values[i * width..(i + 1) * width]`.
    ///
    /// Batching producers (e.g. a fleet of loops amortizing sink traffic)
    /// call this once per batch instead of [`TelemetrySink::record`] once
    /// per period.  The default implementation forwards row by row, so
    /// existing sinks keep working unchanged; sinks with per-call overhead
    /// can override it.
    ///
    /// # Errors
    ///
    /// Propagates the first I/O failure; rows after a failed one are not
    /// delivered.
    ///
    /// # Panics
    ///
    /// Panics if `periods`, `times` and `values` disagree on the row
    /// count, or `values.len()` is not a multiple of `width`.
    fn record_batch(
        &mut self,
        periods: &[u64],
        times: &[f64],
        values: &[f64],
        width: usize,
    ) -> io::Result<()> {
        assert_eq!(periods.len(), times.len(), "one time per period");
        assert_eq!(
            values.len(),
            periods.len() * width,
            "one width-sized row per period"
        );
        for (i, (&p, &t)) in periods.iter().zip(times).enumerate() {
            self.record(p, t, &values[i * width..(i + 1) * width])?;
        }
        Ok(())
    }

    /// Flushes and closes the sink (last call).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the final flush.
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// A bounded in-memory sink keeping the most recent `capacity` records.
///
/// Slots are preallocated and reused, so steady-state recording does not
/// allocate once the ring has filled.
///
/// # Example
///
/// ```
/// use eucon_telemetry::{RingBufferSink, TelemetrySink};
///
/// let mut ring = RingBufferSink::new(2);
/// ring.begin(&["a".into()]).unwrap();
/// for k in 0..5 {
///     ring.record(k, k as f64, &[k as f64]).unwrap();
/// }
/// assert_eq!(ring.len(), 2);
/// assert_eq!(ring.latest().unwrap().period, 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RingBufferSink {
    capacity: usize,
    columns: Vec<String>,
    records: VecDeque<RingRecord>,
    /// Retired slots awaiting reuse (their value buffers keep their
    /// capacity, so recycling them is allocation-free).
    free: Vec<RingRecord>,
}

/// One record held by a [`RingBufferSink`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RingRecord {
    /// Sampling period index.
    pub period: u64,
    /// Simulation time at the end of the period.
    pub time: f64,
    /// Values in schema order.
    pub values: Vec<f64>,
}

impl RingBufferSink {
    /// Creates a ring holding the latest `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring buffer capacity must be positive");
        RingBufferSink {
            capacity,
            columns: Vec::new(),
            records: VecDeque::with_capacity(capacity),
            free: Vec::new(),
        }
    }

    /// The schema received at [`TelemetrySink::begin`].
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Records currently held, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &RingRecord> {
        self.records.iter()
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the ring holds no records yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The most recent record.
    pub fn latest(&self) -> Option<&RingRecord> {
        self.records.back()
    }

    /// The value of `column` in the most recent record.
    pub fn latest_value(&self, column: &str) -> Option<f64> {
        let idx = self.columns.iter().position(|c| c == column)?;
        self.latest().map(|r| r.values[idx])
    }
}

impl TelemetrySink for RingBufferSink {
    fn begin(&mut self, columns: &[String]) -> io::Result<()> {
        self.columns = columns.to_vec();
        Ok(())
    }

    fn record(&mut self, period: u64, time: f64, values: &[f64]) -> io::Result<()> {
        let mut slot = if self.records.len() == self.capacity {
            self.records.pop_front().expect("ring is non-empty")
        } else {
            self.free.pop().unwrap_or_default()
        };
        slot.period = period;
        slot.time = time;
        slot.values.clear();
        slot.values.extend_from_slice(values);
        self.records.push_back(slot);
        Ok(())
    }
}

/// Streams telemetry as CSV: a `period,time,<columns...>` header, one
/// row per sampling period.
pub struct CsvSink<W: Write> {
    out: W,
}

impl CsvSink<BufWriter<File>> {
    /// Creates a CSV sink writing to a freshly created file.
    ///
    /// # Errors
    ///
    /// Propagates file-creation failures.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(CsvSink::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> CsvSink<W> {
    /// Creates a CSV sink over any writer.
    pub fn new(out: W) -> Self {
        CsvSink { out }
    }

    /// Consumes the sink, returning the writer (for in-memory use).
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write> TelemetrySink for CsvSink<W> {
    fn begin(&mut self, columns: &[String]) -> io::Result<()> {
        write!(self.out, "period,time")?;
        for c in columns {
            write!(self.out, ",{c}")?;
        }
        writeln!(self.out)
    }

    fn record(&mut self, period: u64, time: f64, values: &[f64]) -> io::Result<()> {
        write!(self.out, "{period},{time}")?;
        for v in values {
            write!(self.out, ",{v}")?;
        }
        writeln!(self.out)
    }

    fn finish(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

/// Streams telemetry as JSON Lines: one flat object per sampling period
/// with `period`, `time` and every metric column as a key.
pub struct JsonlSink<W: Write> {
    out: W,
    /// Pre-escaped keys, built once at `begin`.
    keys: Vec<String>,
}

impl JsonlSink<BufWriter<File>> {
    /// Creates a JSONL sink writing to a freshly created file.
    ///
    /// # Errors
    ///
    /// Propagates file-creation failures.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlSink::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Creates a JSONL sink over any writer.
    pub fn new(out: W) -> Self {
        JsonlSink {
            out,
            keys: Vec::new(),
        }
    }

    /// Consumes the sink, returning the writer (for in-memory use).
    pub fn into_inner(self) -> W {
        self.out
    }
}

/// Escapes a string for use inside a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut e = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => e.push_str("\\\""),
            '\\' => e.push_str("\\\\"),
            c if (c as u32) < 0x20 => e.push_str(&format!("\\u{:04x}", c as u32)),
            c => e.push(c),
        }
    }
    e
}

/// Formats an `f64` as a JSON value (`null` for non-finite values,
/// which JSON cannot represent).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

impl<W: Write> TelemetrySink for JsonlSink<W> {
    fn begin(&mut self, columns: &[String]) -> io::Result<()> {
        self.keys = columns.iter().map(|c| json_escape(c)).collect();
        Ok(())
    }

    fn record(&mut self, period: u64, time: f64, values: &[f64]) -> io::Result<()> {
        write!(
            self.out,
            "{{\"period\":{period},\"time\":{}",
            json_num(time)
        )?;
        for (k, &v) in self.keys.iter().zip(values) {
            write!(self.out, ",\"{k}\":{}", json_num(v))?;
        }
        writeln!(self.out, "}}")
    }

    fn finish(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cols(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn ring_keeps_only_the_latest() {
        let mut ring = RingBufferSink::new(3);
        ring.begin(&cols(&["x", "y"])).unwrap();
        for k in 0..10u64 {
            ring.record(k, 1000.0 * k as f64, &[k as f64, -(k as f64)])
                .unwrap();
        }
        assert_eq!(ring.len(), 3);
        let periods: Vec<u64> = ring.iter().map(|r| r.period).collect();
        assert_eq!(periods, vec![7, 8, 9]);
        assert_eq!(ring.latest_value("y"), Some(-9.0));
        assert_eq!(ring.latest_value("missing"), None);
        assert_eq!(ring.columns(), &cols(&["x", "y"]));
    }

    #[test]
    fn ring_slots_are_recycled_without_growth() {
        let mut ring = RingBufferSink::new(2);
        ring.begin(&cols(&["x"])).unwrap();
        for k in 0..100u64 {
            ring.record(k, 0.0, &[k as f64]).unwrap();
        }
        // Each held record's buffer has exactly the schema width.
        for r in ring.iter() {
            assert_eq!(r.values.len(), 1);
        }
        assert_eq!(ring.len(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn ring_rejects_zero_capacity() {
        let _ = RingBufferSink::new(0);
    }

    #[test]
    fn csv_round_trips() {
        let mut sink = CsvSink::new(Vec::new());
        sink.begin(&cols(&["u_p1", "events"])).unwrap();
        sink.record(0, 1000.0, &[0.828125, 42.0]).unwrap();
        sink.record(1, 2000.0, &[0.5, 43.0]).unwrap();
        sink.finish().unwrap();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("period,time,u_p1,events"));
        // Parse every data row back and compare exactly (Display output
        // of f64 round-trips).
        let rows: Vec<Vec<f64>> = lines
            .map(|l| l.split(',').map(|f| f.parse().unwrap()).collect())
            .collect();
        assert_eq!(
            rows,
            vec![
                vec![0.0, 1000.0, 0.828125, 42.0],
                vec![1.0, 2000.0, 0.5, 43.0]
            ]
        );
    }

    #[test]
    fn jsonl_round_trips() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.begin(&cols(&["u_p1", "qp_iterations"])).unwrap();
        sink.record(3, 4000.0, &[0.75, 2.0]).unwrap();
        sink.record(4, 5000.0, &[f64::NAN, 0.0]).unwrap();
        sink.finish().unwrap();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            r#"{"period":3,"time":4000,"u_p1":0.75,"qp_iterations":2}"#
        );
        // Non-finite values must degrade to null, not invalid JSON.
        assert_eq!(
            lines[1],
            r#"{"period":4,"time":5000,"u_p1":null,"qp_iterations":0}"#
        );
        // Minimal structural check on every line: braces balanced, all
        // expected keys present exactly once.
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
            for key in [
                "\"period\":",
                "\"time\":",
                "\"u_p1\":",
                "\"qp_iterations\":",
            ] {
                assert_eq!(l.matches(key).count(), 1, "{key} once in {l}");
            }
        }
    }

    #[test]
    fn record_batch_default_matches_row_by_row() {
        let mut by_row = CsvSink::new(Vec::new());
        let mut by_batch = CsvSink::new(Vec::new());
        let schema = cols(&["a", "b"]);
        by_row.begin(&schema).unwrap();
        by_batch.begin(&schema).unwrap();
        let periods = [3u64, 4, 5];
        let times = [3000.0, 4000.0, 5000.0];
        let values = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6];
        for i in 0..3 {
            by_row
                .record(periods[i], times[i], &values[i * 2..(i + 1) * 2])
                .unwrap();
        }
        by_batch.record_batch(&periods, &times, &values, 2).unwrap();
        assert_eq!(by_row.into_inner(), by_batch.into_inner());
    }

    #[test]
    #[should_panic(expected = "width-sized row per period")]
    fn record_batch_rejects_ragged_input() {
        let mut sink = CsvSink::new(Vec::new());
        sink.begin(&cols(&["a"])).unwrap();
        let _ = sink.record_batch(&[0, 1], &[0.0, 1.0], &[1.0], 1);
    }

    #[test]
    fn json_keys_are_escaped() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.begin(&cols(&["we\"ird\\name"])).unwrap();
        sink.record(0, 0.0, &[1.0]).unwrap();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert!(text.contains(r#""we\"ird\\name":1"#));
    }
}
