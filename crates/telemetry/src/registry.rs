//! The fixed metrics registry: declared once, updated in place.

use std::sync::Arc;

use crate::histogram::{Histogram, HistogramSummary};
use crate::span::Span;

/// Handle to a counter in a [`Registry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(pub(crate) usize);

/// Handle to a gauge in a [`Registry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(pub(crate) usize);

/// Handle to a histogram in a [`Registry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(pub(crate) usize);

/// Declares the metric set of a [`Registry`] before any recording starts.
///
/// All storage — metric slots, column names, the export row — is
/// allocated here, once; the built registry never allocates on update or
/// export.  That is the property that lets the closed loop keep its
/// zero-allocations-per-period guarantee with telemetry enabled.
#[derive(Debug, Default)]
pub struct RegistryBuilder {
    counters: Vec<String>,
    gauges: Vec<String>,
    histograms: Vec<(String, Vec<f64>)>,
}

impl RegistryBuilder {
    /// Starts an empty metric declaration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a monotone counter and returns its handle.
    pub fn counter(&mut self, name: impl Into<String>) -> CounterId {
        self.counters.push(name.into());
        CounterId(self.counters.len() - 1)
    }

    /// Declares a gauge (a point-in-time value) and returns its handle.
    pub fn gauge(&mut self, name: impl Into<String>) -> GaugeId {
        self.gauges.push(name.into());
        GaugeId(self.gauges.len() - 1)
    }

    /// Declares a fixed-bucket histogram (see [`Histogram::new`] for the
    /// bound rules) and returns its handle.
    pub fn histogram(&mut self, name: impl Into<String>, bounds: &[f64]) -> HistogramId {
        self.histograms.push((name.into(), bounds.to_vec()));
        HistogramId(self.histograms.len() - 1)
    }

    /// Freezes the declaration into a ready [`Registry`].
    pub fn build(self) -> Registry {
        let histograms: Vec<Histogram> = self
            .histograms
            .iter()
            .map(|(_, bounds)| Histogram::new(bounds))
            .collect();
        // One export column per counter and gauge; three per histogram
        // (count / sum / max) so sinks see scalar columns only.  Built by
        // hand (capacity + push_str) rather than `format!` — registries
        // are constructed per closed loop, and benchmark loops rebuild
        // them every iteration.
        let mut columns = Vec::new();
        columns.extend(self.counters.iter().cloned());
        columns.extend(self.gauges.iter().cloned());
        for (name, _) in &self.histograms {
            for suffix in ["_count", "_sum", "_max"] {
                let mut col = String::with_capacity(name.len() + suffix.len());
                col.push_str(name);
                col.push_str(suffix);
                columns.push(col);
            }
        }
        let width = columns.len();
        Registry {
            counter_names: self.counters.iter().map(|s| s.as_str().into()).collect(),
            counters: vec![0; self.counters.len()],
            gauge_names: self.gauges.iter().map(|s| s.as_str().into()).collect(),
            gauges: vec![0.0; self.gauges.len()],
            hist_names: self
                .histograms
                .iter()
                .map(|(s, _)| s.as_str().into())
                .collect(),
            histograms,
            columns,
            row: vec![0.0; width],
        }
    }
}

/// The live metric store: fixed layout, in-place updates, allocation-free
/// export.
///
/// Built by [`RegistryBuilder`]; see the crate docs for a worked example.
#[derive(Debug, Clone)]
pub struct Registry {
    // `Arc<str>` so snapshots share the names instead of re-allocating
    // them — a snapshot is taken at the end of every run.
    counter_names: Vec<Arc<str>>,
    counters: Vec<u64>,
    gauge_names: Vec<Arc<str>>,
    gauges: Vec<f64>,
    hist_names: Vec<Arc<str>>,
    histograms: Vec<Histogram>,
    columns: Vec<String>,
    row: Vec<f64>,
}

impl Registry {
    /// Increments a counter by one.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.counters[id.0] += 1;
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0] += n;
    }

    /// Current value of a counter.
    #[inline]
    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters[id.0]
    }

    /// Sets a gauge.
    #[inline]
    pub fn set(&mut self, id: GaugeId, v: f64) {
        self.gauges[id.0] = v;
    }

    /// Current value of a gauge.
    #[inline]
    pub fn gauge(&self, id: GaugeId) -> f64 {
        self.gauges[id.0]
    }

    /// Records an observation into a histogram.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, v: f64) {
        self.histograms[id.0].observe(v);
    }

    /// Borrows a histogram (for summaries and quantiles).
    pub fn histogram(&self, id: HistogramId) -> &Histogram {
        &self.histograms[id.0]
    }

    /// Starts a scoped wall-clock timer; the elapsed nanoseconds are
    /// observed into `id` when the returned [`Span`] drops.
    #[inline]
    pub fn span(&mut self, id: HistogramId) -> Span<'_> {
        Span::new(self, id)
    }

    /// The ordered export column names (the sink schema): counters,
    /// then gauges, then `_count`/`_sum`/`_max` triples per histogram.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Rewrites and returns the export row matching [`Registry::columns`]
    /// — counters as cumulative values, gauges as-is, histograms as
    /// count/sum/max.  The row buffer is persistent: no allocation.
    pub fn export_row(&mut self) -> &[f64] {
        let mut i = 0;
        for &c in &self.counters {
            self.row[i] = c as f64;
            i += 1;
        }
        for &g in &self.gauges {
            self.row[i] = g;
            i += 1;
        }
        for h in &self.histograms {
            let s = h.summary();
            self.row[i] = s.count as f64;
            self.row[i + 1] = s.sum;
            self.row[i + 2] = s.max;
            i += 3;
        }
        debug_assert_eq!(i, self.row.len());
        &self.row
    }

    /// Clones the current state into an owned, queryable [`Snapshot`].
    /// Metric names are shared (`Arc<str>`), not copied.
    pub fn snapshot(&self) -> Snapshot {
        let mut entries =
            Vec::with_capacity(self.counters.len() + self.gauges.len() + self.histograms.len());
        for (name, &v) in self.counter_names.iter().zip(&self.counters) {
            entries.push((Arc::clone(name), MetricValue::Counter(v)));
        }
        for (name, &v) in self.gauge_names.iter().zip(&self.gauges) {
            entries.push((Arc::clone(name), MetricValue::Gauge(v)));
        }
        for (name, h) in self.hist_names.iter().zip(&self.histograms) {
            entries.push((Arc::clone(name), MetricValue::Histogram(h.summary())));
        }
        Snapshot { entries }
    }
}

/// One exported metric value inside a [`Snapshot`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    /// Cumulative counter value.
    Counter(u64),
    /// Point-in-time gauge value.
    Gauge(f64),
    /// Histogram summary (count / sum / min / max).
    Histogram(HistogramSummary),
}

/// An owned copy of a [`Registry`]'s state at one instant, queryable by
/// metric name.  This is what a closed-loop run embeds in its result.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    entries: Vec<(Arc<str>, MetricValue)>,
}

impl Snapshot {
    /// All `(name, value)` pairs, in registry declaration order.
    pub fn entries(&self) -> &[(Arc<str>, MetricValue)] {
        &self.entries
    }

    /// Whether the snapshot holds no metrics (telemetry was off).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up any metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .iter()
            .find(|(n, _)| n.as_ref() == name)
            .map(|(_, v)| v)
    }

    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.get(name)? {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// Looks up a histogram summary by name.
    pub fn histogram(&self, name: &str) -> Option<HistogramSummary> {
        match self.get(name)? {
            MetricValue::Histogram(s) => Some(*s),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declaration_order_defines_columns() {
        let mut b = RegistryBuilder::new();
        let c = b.counter("events");
        let g = b.gauge("u_p1");
        let h = b.histogram("lat", &[1.0, 2.0]);
        let mut reg = b.build();
        assert_eq!(
            reg.columns(),
            &["events", "u_p1", "lat_count", "lat_sum", "lat_max"]
        );
        reg.add(c, 3);
        reg.set(g, 0.5);
        reg.observe(h, 1.5);
        reg.observe(h, 9.0);
        assert_eq!(reg.export_row(), &[3.0, 0.5, 2.0, 10.5, 9.0]);
        assert_eq!(reg.counter(c), 3);
        assert_eq!(reg.gauge(g), 0.5);
        assert_eq!(reg.histogram(h).bucket_counts(), &[0, 1, 1]);
    }

    #[test]
    fn export_row_reuses_its_buffer() {
        let mut b = RegistryBuilder::new();
        let c = b.counter("n");
        let mut reg = b.build();
        let p0 = reg.export_row().as_ptr();
        reg.inc(c);
        let p1 = reg.export_row().as_ptr();
        assert_eq!(p0, p1, "export must not reallocate");
        assert_eq!(reg.export_row(), &[1.0]);
    }

    #[test]
    fn snapshot_is_queryable_by_name() {
        let mut b = RegistryBuilder::new();
        let c = b.counter("errors");
        let g = b.gauge("mode");
        let h = b.histogram("iters", &[1.0]);
        let mut reg = b.build();
        reg.inc(c);
        reg.set(g, 1.0);
        reg.observe(h, 0.5);
        let snap = reg.snapshot();
        assert!(!snap.is_empty());
        assert_eq!(snap.counter("errors"), Some(1));
        assert_eq!(snap.gauge("mode"), Some(1.0));
        assert_eq!(snap.histogram("iters").unwrap().count, 1);
        assert_eq!(snap.counter("missing"), None);
        assert_eq!(snap.gauge("errors"), None, "kind-checked lookup");
        assert_eq!(snap.entries().len(), 3);
        assert_eq!(Snapshot::default().get("x"), None);
    }

    #[test]
    fn span_times_into_histogram() {
        let mut b = RegistryBuilder::new();
        let h = b.histogram("span_ns", &[1e9]);
        let mut reg = b.build();
        {
            let _s = reg.span(h);
            std::hint::black_box(3 + 4);
        }
        assert_eq!(reg.histogram(h).count(), 1);
        assert!(reg.histogram(h).max().unwrap() >= 0.0);
    }
}
