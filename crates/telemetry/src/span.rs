//! Scoped wall-clock timers recording into registry histograms.

use std::time::Instant;

use crate::registry::{HistogramId, Registry};

/// A scoped timer: created by [`Registry::span`], records the elapsed
/// wall time (in nanoseconds) into its histogram when dropped.
///
/// `Instant::now` reads the monotonic clock without touching the heap,
/// so spanning a hot phase keeps the phase allocation-free.
///
/// # Example
///
/// ```
/// use eucon_telemetry::RegistryBuilder;
///
/// let mut b = RegistryBuilder::new();
/// let solve = b.histogram("solve_ns", &[1e3, 1e6]);
/// let mut reg = b.build();
/// {
///     let _span = reg.span(solve);
///     // ... the timed phase ...
/// }
/// assert_eq!(reg.histogram(solve).count(), 1);
/// ```
#[derive(Debug)]
pub struct Span<'a> {
    registry: &'a mut Registry,
    id: HistogramId,
    start: Instant,
}

impl<'a> Span<'a> {
    pub(crate) fn new(registry: &'a mut Registry, id: HistogramId) -> Self {
        Span {
            registry,
            id,
            start: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since the span started.
    pub fn elapsed_ns(&self) -> f64 {
        self.start.elapsed().as_nanos() as f64
    }

    /// Ends the span now (equivalent to dropping it).
    pub fn end(self) {}
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let ns = self.start.elapsed().as_nanos() as f64;
        self.registry.observe(self.id, ns);
    }
}

#[cfg(test)]
mod tests {
    use crate::RegistryBuilder;

    #[test]
    fn explicit_end_and_elapsed() {
        let mut b = RegistryBuilder::new();
        let h = b.histogram("t_ns", &[1e12]);
        let mut reg = b.build();
        let span = reg.span(h);
        assert!(span.elapsed_ns() >= 0.0);
        span.end();
        let span2 = reg.span(h);
        drop(span2);
        assert_eq!(reg.histogram(h).count(), 2);
    }
}
