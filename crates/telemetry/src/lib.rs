//! Zero-allocation observability for the EUCON closed loop.
//!
//! The paper's premise is that the controller only sees *sampled*
//! utilization; this crate gives the reproduction the same courtesy —
//! a first-class view of what the loop is doing each sampling period
//! without perturbing the thing being measured:
//!
//! * [`Registry`] — a **fixed** metrics registry: counters, gauges and
//!   fixed-bucket [`Histogram`]s are declared once through
//!   [`RegistryBuilder`] and preallocated; every subsequent update is an
//!   in-place write.  With no sinks attached, recording telemetry costs
//!   zero heap allocations per sampling period, preserving the closed
//!   loop's steady-state allocation guarantee.
//! * [`Span`] — a scoped timer recording elapsed wall time into a
//!   histogram when dropped, for the hot phases of a period
//!   (simulate → sample → controller step → actuate).
//! * [`TelemetrySink`] — the pluggable per-period export interface, with
//!   three implementations: [`RingBufferSink`] (bounded in-memory),
//!   [`CsvSink`] and [`JsonlSink`] (streaming to any `io::Write`).
//! * [`series`] — windowed series statistics (mean/σ, the paper's
//!   acceptability criterion, settling times), folded in from
//!   `eucon_core::metrics` which now re-exports them.
//!
//! # Example
//!
//! ```
//! use eucon_telemetry::{RegistryBuilder, TelemetrySink, RingBufferSink};
//!
//! let mut b = RegistryBuilder::new();
//! let periods = b.counter("periods");
//! let u1 = b.gauge("u_p1");
//! let solve = b.histogram("solve_ns", &[1_000.0, 10_000.0, 100_000.0]);
//! let mut reg = b.build();
//!
//! let mut sink = RingBufferSink::new(64);
//! sink.begin(reg.columns()).unwrap();
//! for k in 0..10u64 {
//!     reg.inc(periods);
//!     reg.set(u1, 0.8 + 0.001 * k as f64);
//!     reg.observe(solve, 25_000.0);
//!     let row = reg.export_row();
//!     sink.record(k, k as f64 * 1000.0, &row).unwrap();
//! }
//! assert_eq!(sink.len(), 10);
//! assert_eq!(reg.snapshot().counter("periods"), Some(10));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod histogram;
mod registry;
pub mod series;
mod sink;
mod span;

pub use histogram::{Histogram, HistogramSummary};
pub use registry::{
    CounterId, GaugeId, HistogramId, MetricValue, Registry, RegistryBuilder, Snapshot,
};
pub use sink::{CsvSink, JsonlSink, RingBufferSink, TelemetrySink};
pub use span::Span;
