//! Fixed-bucket histograms: preallocated at construction, updated in
//! place, mergeable across runs.

/// A histogram with fixed, ascending bucket upper bounds.
///
/// Observation `v` lands in the first bucket whose upper bound satisfies
/// `v <= bound`; values above every bound land in the implicit overflow
/// bucket.  The bucket layout is fixed at construction so observation
/// never allocates — the price is choosing bounds up front, which is the
/// right trade for a control loop with a known operating envelope.
///
/// # Example
///
/// ```
/// use eucon_telemetry::Histogram;
///
/// let mut h = Histogram::new(&[1.0, 10.0, 100.0]);
/// h.observe(0.5);
/// h.observe(50.0);
/// h.observe(1e6); // overflow bucket
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.bucket_counts(), &[1, 0, 1, 1]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Box<[f64]>,
    /// One count per bound, plus the trailing overflow bucket.
    counts: Box<[u64]>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Creates a histogram with the given ascending bucket upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty, non-finite or not strictly ascending.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite and strictly ascending"
        );
        Histogram {
            bounds: bounds.into(),
            counts: vec![0; bounds.len() + 1].into(),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation (in place, never allocates).
    ///
    /// Non-finite observations are counted in the overflow bucket but do
    /// not poison the running sum/min/max.
    pub fn observe(&mut self, v: f64) {
        self.count += 1;
        if !v.is_finite() {
            *self.counts.last_mut().expect("overflow bucket") += 1;
            return;
        }
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
    }

    /// The bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts; the last entry is the overflow bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all finite observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of finite observations; zero before the first one.
    pub fn mean(&self) -> f64 {
        let finite = self.count - self.counts.last().copied().unwrap_or(0);
        // Non-finite observations sit in the overflow bucket alongside
        // legitimate large values; approximate by the total count, which
        // is exact whenever nothing non-finite was observed.
        if self.count == 0 || finite == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest finite observation; `None` before the first one.
    pub fn min(&self) -> Option<f64> {
        (self.min.is_finite()).then_some(self.min)
    }

    /// Largest finite observation; `None` before the first one.
    pub fn max(&self) -> Option<f64> {
        (self.max.is_finite()).then_some(self.max)
    }

    /// Resets all counts while keeping the bucket layout.
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.count = 0;
        self.sum = 0.0;
        self.min = f64::INFINITY;
        self.max = f64::NEG_INFINITY;
    }

    /// Upper quantile estimate from the bucket counts: the smallest
    /// bucket bound at which the cumulative count reaches `q · count`
    /// (the max for the overflow bucket).  `None` while empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut cum = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target.max(1) {
                return Some(if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max().unwrap_or(f64::INFINITY)
                });
            }
        }
        self.max()
    }

    /// Merges another histogram's observations into this one.
    ///
    /// # Errors
    ///
    /// Returns `Err` (leaving `self` untouched) when the bucket layouts
    /// differ — merging histograms with different bounds would silently
    /// misattribute counts.
    pub fn merge(&mut self, other: &Histogram) -> Result<(), BucketMismatch> {
        if self.bounds != other.bounds {
            return Err(BucketMismatch);
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        Ok(())
    }

    /// A cheap copyable summary of the current state.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            min: self.min().unwrap_or(0.0),
            max: self.max().unwrap_or(0.0),
        }
    }
}

/// Error returned by [`Histogram::merge`] on differing bucket layouts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketMismatch;

impl std::fmt::Display for BucketMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "histogram bucket layouts differ")
    }
}

impl std::error::Error for BucketMismatch {}

/// Copyable summary of a [`Histogram`] (for snapshots and reports).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HistogramSummary {
    /// Total observations.
    pub count: u64,
    /// Sum of finite observations.
    pub sum: f64,
    /// Smallest finite observation (0 while empty).
    pub min: f64,
    /// Largest finite observation (0 while empty).
    pub max: f64,
}

impl HistogramSummary {
    /// Mean observation; zero while empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_half_open_upper_bounds() {
        let mut h = Histogram::new(&[1.0, 2.0]);
        h.observe(1.0); // on the bound: first bucket
        h.observe(1.5);
        h.observe(3.0); // overflow
        assert_eq!(h.bucket_counts(), &[1, 1, 1]);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), Some(3.0));
        assert_eq!(h.min(), Some(1.0));
        assert!((h.sum() - 5.5).abs() < 1e-12);
    }

    #[test]
    fn non_finite_observations_are_quarantined() {
        let mut h = Histogram::new(&[1.0]);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(0.5);
        assert_eq!(h.count(), 3);
        assert_eq!(h.bucket_counts(), &[1, 2]);
        assert_eq!(h.sum(), 0.5, "sum stays finite");
        assert_eq!(h.max(), Some(0.5));
    }

    #[test]
    fn merge_requires_identical_layout() {
        let mut a = Histogram::new(&[1.0, 2.0]);
        let mut b = Histogram::new(&[1.0, 2.0]);
        a.observe(0.5);
        b.observe(1.5);
        b.observe(9.0);
        a.merge(&b).unwrap();
        assert_eq!(a.count(), 3);
        assert_eq!(a.bucket_counts(), &[1, 1, 1]);
        assert_eq!(a.max(), Some(9.0));
        assert_eq!(a.min(), Some(0.5));

        let other = Histogram::new(&[1.0]);
        assert_eq!(a.merge(&other), Err(BucketMismatch));
        assert_eq!(a.count(), 3, "failed merge leaves self untouched");
    }

    #[test]
    fn merge_is_equivalent_to_observing_everything() {
        let bounds = [0.1, 1.0, 10.0];
        let xs = [0.05, 0.5, 5.0, 50.0, 0.2];
        let ys = [7.0, 0.01, 100.0];
        let mut all = Histogram::new(&bounds);
        for &v in xs.iter().chain(ys.iter()) {
            all.observe(v);
        }
        let mut a = Histogram::new(&bounds);
        xs.iter().for_each(|&v| a.observe(v));
        let mut b = Histogram::new(&bounds);
        ys.iter().for_each(|&v| b.observe(v));
        a.merge(&b).unwrap();
        assert_eq!(a, all);
    }

    #[test]
    fn quantile_walks_cumulative_counts() {
        let mut h = Histogram::new(&[1.0, 2.0, 4.0]);
        for v in [0.5, 0.6, 1.5, 3.0, 3.5, 3.9] {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(0.5), Some(2.0));
        assert_eq!(h.quantile(1.0), Some(4.0));
        assert_eq!(Histogram::new(&[1.0]).quantile(0.5), None);
    }

    #[test]
    fn reset_keeps_layout() {
        let mut h = Histogram::new(&[1.0]);
        h.observe(0.5);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.bounds(), &[1.0]);
        assert_eq!(h.min(), None);
        assert_eq!(h.summary(), HistogramSummary::default());
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn bounds_must_ascend() {
        let _ = Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    fn summary_mean() {
        let mut h = Histogram::new(&[10.0]);
        h.observe(2.0);
        h.observe(4.0);
        let s = h.summary();
        assert_eq!(s.count, 2);
        assert!((s.mean() - 3.0).abs() < 1e-12);
        assert_eq!(HistogramSummary::default().mean(), 0.0);
    }
}
