//! Value-generation strategies (subset of `proptest::strategy`).

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (mirrors `Strategy::prop_map`).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.below(span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + rng.below(span) as i64) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

// Tuples of strategies generate tuples of values (upstream supports up to
// 12 elements; the workspace uses at most 3).
macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!((A 0, B 1), (A 0, B 1, C 2), (A 0, B 1, C 2, D 3));

/// A strategy producing one constant value (mirrors `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}
