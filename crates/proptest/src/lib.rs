//! Vendored stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements exactly the subset of the `proptest` 1.x surface the
//! workspace's property tests use:
//!
//! * the [`proptest!`] macro over `#[test] fn name(arg in strategy, …)`
//!   items,
//! * range strategies over `f64` / integer ranges,
//! * [`collection::vec`] for fixed-length vectors,
//! * [`Strategy::prop_map`],
//! * [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`].
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! inputs via the panic message instead of a minimized counterexample)
//! and a fixed deterministic seed per test derived from the test name.
//! The number of cases per test defaults to 64 and can be raised with
//! the `PROPTEST_CASES` environment variable.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// What `use proptest::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Defines property tests: each item looks like a `#[test]` function
/// whose arguments are drawn from strategies (`arg in strategy`).
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::test_runner::cases();
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let inputs = format!(
                        concat!($(concat!(stringify!($arg), " = {:?}, ")),+),
                        $(&$arg),+
                    );
                    let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property '{}' failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name), case + 1, cases, e, inputs
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current property case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        match $cond {
            true => {}
            false => {
                return ::std::result::Result::Err(
                    $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
                );
            }
        }
    };
}

/// Fails the current property case unless both expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Skips the current property case when the assumption does not hold.
///
/// Upstream proptest rejects and redraws; this stand-in simply treats the
/// case as vacuously passing, which preserves soundness of the tests.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        match $cond {
            true => {}
            false => return ::std::result::Result::Ok(()),
        }
    };
}

#[cfg(test)]
mod tests {

    proptest! {
        #[test]
        fn ranges_respected(x in -2.0..3.0f64, k in 1u64..10, n in 2usize..5) {
            prop_assert!((-2.0..3.0).contains(&x));
            prop_assert!((1..10).contains(&k));
            prop_assert!((2..5).contains(&n));
        }

        #[test]
        fn vec_and_map_compose(v in crate::collection::vec(0.0..1.0f64, 7)) {
            prop_assert_eq!(v.len(), 7);
            for &x in &v {
                prop_assert!((0.0..1.0).contains(&x), "out of range: {}", x);
            }
        }

        #[test]
        fn assume_skips(x in 0.0..1.0f64) {
            prop_assume!(x < 0.5);
            prop_assert!(x < 0.5);
        }
    }

    #[test]
    fn macro_generated_tests_run() {
        ranges_respected();
        vec_and_map_compose();
        assume_skips();
    }

    #[test]
    fn prop_map_transforms() {
        use crate::strategy::Strategy;
        let strat = (1.0..2.0f64).prop_map(|x| x * 10.0);
        let mut rng = crate::test_runner::TestRng::for_test("prop_map_transforms");
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((10.0..20.0).contains(&v));
        }
    }

    #[test]
    fn failures_panic_with_inputs() {
        proptest! {
            fn always_fails(x in 0.0..1.0f64) {
                prop_assert!(x < 0.0, "x was {}", x);
            }
        }
        let err = std::panic::catch_unwind(always_fails).unwrap_err();
        let msg = err.downcast_ref::<String>().expect("panic message");
        assert!(msg.contains("always_fails"), "got: {msg}");
        assert!(msg.contains("inputs"), "got: {msg}");
    }
}
