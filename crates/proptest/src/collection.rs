//! Collection strategies (subset of `proptest::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for vectors with a fixed number of elements.
pub struct VecStrategy<S> {
    element: S,
    len: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        (0..self.len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates `Vec`s of exactly `len` elements drawn from `element`.
///
/// Upstream accepts any size range; the workspace only ever passes a fixed
/// length, so that is all this stand-in supports.
pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
    VecStrategy { element, len }
}
