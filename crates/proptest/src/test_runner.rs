//! Test-case execution support: the per-test RNG and failure type.

use std::fmt;

/// Number of cases each property runs (env `PROPTEST_CASES`, default 64).
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(64)
}

/// Failure of one property case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic generator driving strategy sampling (xoshiro256**).
///
/// Seeded from the test name so every property test has a stable but
/// distinct stream across runs.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Creates the deterministic RNG for a named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name, then SplitMix64 state expansion.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut sm = h;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }
}
