//! Vendored stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors the tiny slice of the `rand` 0.8 API it
//! actually uses: [`rngs::StdRng`], [`Rng`] and [`SeedableRng`].  The
//! generator is xoshiro256** seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), but the workspace only
//! relies on *reproducibility for a given seed*, never on the exact
//! stream, so this is a drop-in replacement here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Concrete generators (mirrors `rand::rngs`).
pub mod rngs {
    pub use crate::std_rng::StdRng;
}

mod std_rng;

/// Types that can be sampled uniformly by [`Rng::gen`] (stand-in for the
/// `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Random-number-generator interface (subset of `rand::Rng`).
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` uniformly (the `Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.gen::<f64>() < p
    }

    /// Samples uniformly from a half-open `f64` range.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range_f64(&mut self, range: std::ops::Range<f64>) -> f64
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "cannot sample an empty range");
        range.start + self.gen::<f64>() * (range.end - range.start)
    }

    /// Samples uniformly from a half-open `u64` range.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range_u64(&mut self, range: std::ops::Range<u64>) -> u64
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "cannot sample an empty range");
        let span = range.end - range.start;
        // Multiply-shift rejection-free mapping; bias ≤ 2⁻⁶⁴, irrelevant
        // for simulation workloads.
        range.start + (((self.next_u64() as u128) * (span as u128)) >> 64) as u64
    }
}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2800..=3200).contains(&hits), "got {hits}");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range_f64(2.0..5.0);
            assert!((2.0..5.0).contains(&x));
            let k = rng.gen_range_u64(10..20);
            assert!((10..20).contains(&k));
        }
    }
}
