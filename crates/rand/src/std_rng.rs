//! The default generator: xoshiro256** with SplitMix64 seeding.

use crate::{Rng, SeedableRng};

/// A fast, high-quality, deterministic generator (xoshiro256**).
///
/// Named `StdRng` to mirror `rand::rngs::StdRng`; the stream differs from
/// upstream but is stable across runs for a given seed.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

/// SplitMix64 step, used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}
