//! Regression pins for the banded-Cholesky fast path on shard-scale
//! problems (ISSUE 8 satellite).
//!
//! The PR 6 banded factorization only pays off when controller Hessians
//! are *detected* with bandwidth ≪ n — which requires workloads with
//! physical locality and controllers whose local problems preserve it.
//! These tests pin all three links: detection, the banded loops actually
//! being in effect, and bit-identity against the forced-dense reference.

use eucon_control::{DecentralizedController, MpcConfig, ShardedController};
use eucon_math::Cholesky;
use eucon_tasks::{rms_set_points, workloads::RandomWorkload, TaskSet};

/// A rack-like platform: 64 processors, 192 tasks, chains confined to a
/// ±2-processor neighborhood so the coupling graph is banded.
fn rack() -> TaskSet {
    RandomWorkload::new(64, 192)
        .seed(17)
        .locality(2)
        .max_chain_len(3)
        .generate()
}

#[test]
fn sharded_hessians_are_detected_banded() {
    let set = rack();
    let b = rms_set_points(&set);
    let team =
        ShardedController::with_shard_size(&set, b, MpcConfig::medium(), 16).expect("sharded team");
    let global_n = 2 * set.num_tasks(); // two prediction steps per task
    let sizes = team.shard_problem_sizes();
    let bands = team.hessian_bandwidths();
    assert_eq!(sizes.len(), bands.len());
    let mut large_banded = 0usize;
    for (i, (&(owned, _), &band)) in sizes.iter().zip(bands.iter()).enumerate() {
        // The MPC stacks two prediction steps per task, so the local
        // problem has n = 2·owned variables.  Every shard must beat the
        // centralized bandwidth by a wide margin...
        let n = 2 * owned;
        assert!(
            4 * band < global_n,
            "shard {i}: bandwidth {band} vs global n={global_n}"
        );
        // ...and the large shards — where an O(n·b²) factorization is
        // real money — must also engage the banded loops *within* their
        // own problem (tiny shards are legitimately dense).
        if owned >= 16 {
            assert!(
                band < n - 1 && 5 * band <= 4 * n,
                "shard {i}: bandwidth {band} of n={n} — dense fallback on a large shard"
            );
            large_banded += 1;
        }
    }
    assert!(
        large_banded >= 3,
        "only {large_banded} large shards — the fixture no longer exercises the banded path"
    );
}

#[test]
fn decentralized_hessians_stay_narrow() {
    // Decentralization bounds the bandwidth by construction: each node
    // factors only its owned tasks, so every local band is tiny against
    // the 2·192-variable centralized problem.
    let set = rack();
    let b = rms_set_points(&set);
    let team =
        DecentralizedController::new(&set, b, MpcConfig::medium()).expect("decentralized team");
    let global_n = 2 * set.num_tasks();
    for (i, &band) in team.hessian_bandwidths().iter().enumerate() {
        let n = 2 * team.local_tasks(i);
        assert!(band < n, "node {i}: bandwidth {band} of n={n}");
        assert!(
            16 * band < global_n,
            "node {i}: bandwidth {band} vs global n={global_n}"
        );
    }
}

#[test]
fn banded_factorization_is_bit_identical_to_dense_reference() {
    // The exact sparsity the shard-local MPC sees: H = FᵀF + εI over the
    // locality workload couples tasks only through shared processors, so
    // H is banded in task order.  The auto-detected banded factorization
    // must reproduce the forced-dense reference bit for bit — the skipped
    // out-of-band terms are exactly zero, never merely small.
    let set = rack();
    let f = set.allocation_matrix();
    let ft = f.transpose();
    let mut h = &ft * &f;
    for i in 0..h.rows() {
        h[(i, i)] += 1e-4;
    }
    let n = h.rows();

    let auto = Cholesky::decompose(&h).expect("SPD by construction");
    assert!(
        auto.bandwidth() * 4 < n,
        "detected bandwidth {} of n={n} — workload lost its locality",
        auto.bandwidth()
    );

    let dense = Cholesky::decompose_with_bandwidth(&h, n - 1).expect("dense reference");
    assert_eq!(dense.bandwidth(), n - 1, "probe must force the dense loops");
    for i in 0..n {
        for j in 0..=i {
            assert_eq!(
                auto.l()[(i, j)].to_bits(),
                dense.l()[(i, j)].to_bits(),
                "L[({i},{j})] differs between banded and dense paths"
            );
        }
    }
}
