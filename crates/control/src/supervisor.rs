//! Supervisory control: sensor validation, a watchdog, and graceful
//! degradation around any [`RateController`].
//!
//! The EUCON loop assumes monitors always report sane utilizations and the
//! controller always returns (§4).  Deployed systems get neither: monitors
//! freeze, report NaN after a crash, or go out of range, and an
//! optimization-based controller can fail when its inputs are garbage.
//! Following the fallback-law pattern of Hosseinzadeh et al. (2022) and
//! the graceful-degradation argument of imprecise-computation scheduling,
//! [`Supervised`] wraps a primary controller with three layers:
//!
//! 1. **Sensor validation** — non-finite or out-of-`[0, u_max]` samples
//!    never reach the primary law; the last good value is substituted and
//!    a per-processor staleness counter advances.
//! 2. **Watchdog** — after `max_control_errors` consecutive primary-law
//!    failures, or once any processor's staleness reaches `max_stale`,
//!    the wrapper *degrades*: the primary law is benched and a safe-mode
//!    law slews rates exponentially toward known-safe rates (design-time
//!    rates or `Rmin`), which no fault can destabilize.
//! 3. **Re-engagement** — after `reengage_hold` consecutive healthy
//!    periods the primary law is [`RateController::reset`] to the current
//!    rates (no pre-fault momentum) and takes over again.
//!
//! The wrapper's own output is always finite and inside the rate box,
//! whatever the inner controller or the sensors do.

use eucon_math::Vector;
use eucon_tasks::TaskSet;

use crate::{ControlError, ControlMode, ControllerTelemetry, ModelUpdate, RateController};

/// Thresholds and gains of the supervisory wrapper.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisorConfig {
    /// Consecutive primary-controller errors that trigger safe mode.
    pub max_control_errors: usize,
    /// Consecutive invalid samples on one processor that trigger safe
    /// mode (the monitor is considered dead, not just noisy).
    pub max_stale: usize,
    /// Consecutive fully-healthy periods required before the primary law
    /// is re-engaged.
    pub reengage_hold: usize,
    /// Fraction of the remaining gap to the safe rates closed per period
    /// while degraded, in `(0, 1]` (exponential slew — bounded moves, no
    /// overshoot).
    pub slew: f64,
    /// Upper bound of the valid utilization range (samples outside
    /// `[0, u_max]` are rejected; 1.5 tolerates monitor overshoot while
    /// catching sign flips and garbage).
    pub u_max: f64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            max_control_errors: 3,
            max_stale: 5,
            reengage_hold: 5,
            slew: 0.25,
            u_max: 1.5,
        }
    }
}

impl SupervisorConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on non-positive thresholds, a slew outside `(0, 1]` or a
    /// non-finite `u_max`.
    pub fn assert_valid(&self) {
        assert!(self.max_control_errors > 0, "error threshold must be > 0");
        assert!(self.max_stale > 0, "staleness threshold must be > 0");
        assert!(self.reengage_hold > 0, "re-engage hold must be > 0");
        assert!(
            self.slew > 0.0 && self.slew <= 1.0,
            "slew must be in (0, 1]"
        );
        assert!(
            self.u_max.is_finite() && self.u_max > 0.0,
            "u_max must be positive and finite"
        );
    }

    /// Sets the consecutive-error threshold.
    pub fn max_control_errors(mut self, n: usize) -> Self {
        self.max_control_errors = n;
        self
    }

    /// Sets the per-processor staleness threshold.
    pub fn max_stale(mut self, m: usize) -> Self {
        self.max_stale = m;
        self
    }

    /// Sets the healthy-period hold before re-engagement.
    pub fn reengage_hold(mut self, h: usize) -> Self {
        self.reengage_hold = h;
        self
    }

    /// Sets the safe-mode slew fraction.
    pub fn slew(mut self, s: f64) -> Self {
        self.slew = s;
        self
    }
}

/// Counters accumulated by a [`Supervised`] wrapper over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SupervisorReport {
    /// Samples rejected by validation (non-finite or out of range).
    pub rejected_samples: usize,
    /// Samples flagged as stale lane reuses (the feedback lane lost or
    /// delayed the report and the loop substituted the last delivered
    /// value; see [`RateController::note_stale`]).
    pub stale_reports: usize,
    /// Errors returned by the primary controller (absorbed, not
    /// propagated).
    pub control_errors: usize,
    /// Times the watchdog entered safe mode.
    pub degradations: usize,
    /// Periods spent in safe mode.
    pub degraded_periods: usize,
    /// Times the primary law was reset and re-engaged.
    pub reengagements: usize,
}

/// A supervisory wrapper around any [`RateController`]: validates
/// sensors, absorbs controller failures, degrades to a safe fallback law
/// and re-engages the primary law once health returns.
///
/// # Example
///
/// ```
/// use eucon_control::{
///     MpcConfig, MpcController, RateController, Supervised, SupervisorConfig,
/// };
/// use eucon_math::Vector;
/// use eucon_tasks::{rms_set_points, workloads};
///
/// # fn main() -> Result<(), eucon_control::ControlError> {
/// let set = workloads::simple();
/// let b = rms_set_points(&set);
/// let mpc = MpcController::new(&set, b, MpcConfig::simple())?;
/// let mut sup = Supervised::new(mpc, &set, SupervisorConfig::default())?;
/// // A NaN sample never reaches the MPC and never produces a bad rate.
/// sup.update(&Vector::from_slice(&[f64::NAN, 0.5]))?;
/// assert!(sup.rates().iter().all(|ri| ri.is_finite()));
/// assert_eq!(sup.report().rejected_samples, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Supervised<C> {
    inner: C,
    cfg: SupervisorConfig,
    rmin: Vector,
    rmax: Vector,
    /// Rates the fallback law slews toward — safe by construction
    /// (design-time rates, or `Rmin` as the most conservative choice).
    safe_rates: Vector,
    /// Rates currently commanded by the wrapper (the loop actuates these,
    /// never the inner controller's directly).
    rates: Vector,
    /// Validated samples handed to the primary law.
    sanitized: Vector,
    last_good: Vector,
    seen_valid: Vec<bool>,
    stale: Vec<usize>,
    /// Lanes flagged stale for the upcoming update (set by `note_stale`,
    /// consumed and cleared by `update`).
    lane_stale: Vec<bool>,
    consecutive_errors: usize,
    healthy_streak: usize,
    degraded: bool,
    report: SupervisorReport,
}

impl<C: RateController> Supervised<C> {
    /// Wraps `inner` for the given task set.  The fallback law defaults
    /// to slewing toward `Rmin`; see [`Supervised::safe_rates`] for
    /// a design-rate fallback.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::DimensionMismatch`] when the inner
    /// controller's rate vector does not match the task set.
    pub fn new(inner: C, set: &TaskSet, cfg: SupervisorConfig) -> Result<Self, ControlError> {
        cfg.assert_valid();
        let (rmin, rmax) = set.rate_bounds();
        let m = set.num_tasks();
        let n = set.num_processors();
        if inner.rates().len() != m {
            return Err(ControlError::DimensionMismatch(format!(
                "inner controller commands {} rates for {m} tasks",
                inner.rates().len()
            )));
        }
        let rates = inner.rates().clone();
        Ok(Supervised {
            inner,
            cfg,
            safe_rates: rmin.clone(),
            rmin,
            rmax,
            rates,
            sanitized: Vector::zeros(n),
            last_good: Vector::zeros(n),
            seen_valid: vec![false; n],
            stale: vec![0; n],
            lane_stale: vec![false; n],
            consecutive_errors: 0,
            healthy_streak: 0,
            degraded: false,
            report: SupervisorReport::default(),
        })
    }

    /// Replaces the fallback target rates (e.g. OPEN's design rates, so
    /// safe mode holds the design point instead of throttling to the
    /// floor).  Values are clamped into the rate box.
    ///
    /// # Panics
    ///
    /// Panics if the length does not match, or any rate is non-finite.
    pub fn safe_rates(mut self, safe: Vector) -> Self {
        assert_eq!(safe.len(), self.rates.len(), "one safe rate per task");
        assert!(safe.is_finite(), "safe rates must be finite");
        self.safe_rates =
            Vector::from_iter((0..safe.len()).map(|t| safe[t].clamp(self.rmin[t], self.rmax[t])));
        self
    }

    /// Deprecated spelling of [`Supervised::safe_rates`] — builder
    /// options are bare setters throughout the workspace (one-release
    /// deprecation policy; removed next release).
    #[deprecated(
        since = "0.3.0",
        note = "renamed to safe_rates for builder-method consistency"
    )]
    pub fn with_safe_rates(self, safe: Vector) -> Self {
        self.safe_rates(safe)
    }

    /// The wrapper's accumulated counters.
    pub fn report(&self) -> SupervisorReport {
        self.report
    }

    /// Whether the watchdog currently holds the loop in safe mode.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// The wrapped primary controller (read-only).
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Unwraps the primary controller, discarding supervision state.
    pub fn into_inner(self) -> C {
        self.inner
    }

    /// Enters safe mode (idempotent within a period).
    fn degrade(&mut self) {
        if !self.degraded {
            self.degraded = true;
            self.report.degradations += 1;
        }
    }
}

impl<C: RateController> RateController for Supervised<C> {
    /// Never fails for correctly-sized input: sensor faults and primary
    /// controller errors are absorbed by the watchdog, and the returned
    /// rates are always finite and inside the rate box.
    fn update(&mut self, u: &Vector) -> Result<(), ControlError> {
        if u.len() != self.last_good.len() {
            return Err(ControlError::DimensionMismatch(format!(
                "{} utilization samples for {} processors",
                u.len(),
                self.last_good.len()
            )));
        }

        // 1. Sensor validation: substitute last-good for invalid samples.
        let mut all_valid = true;
        for p in 0..u.len() {
            let v = u[p];
            let lane_stale = std::mem::replace(&mut self.lane_stale[p], false);
            if lane_stale {
                // The lane reused an old value: the sample is finite but
                // carries no fresh information.  Advance the staleness
                // counter (a dead lane trips the watchdog like a dead
                // monitor), but the value itself is safe to forward.
                all_valid = false;
                self.stale[p] += 1;
                self.report.stale_reports += 1;
                self.sanitized[p] = if v.is_finite() && (0.0..=self.cfg.u_max).contains(&v) {
                    v
                } else if self.seen_valid[p] {
                    self.last_good[p]
                } else {
                    0.0
                };
            } else if v.is_finite() && (0.0..=self.cfg.u_max).contains(&v) {
                self.last_good[p] = v;
                self.seen_valid[p] = true;
                self.stale[p] = 0;
                self.sanitized[p] = v;
            } else {
                all_valid = false;
                self.stale[p] += 1;
                self.report.rejected_samples += 1;
                // Before any valid sample exists, 0 is the conservative
                // substitute: the primary law raises rates slowly from
                // there instead of acting on garbage.
                self.sanitized[p] = if self.seen_valid[p] {
                    self.last_good[p]
                } else {
                    0.0
                };
            }
        }
        if self.stale.iter().any(|&s| s >= self.cfg.max_stale) {
            self.degrade();
        }

        // 2. Primary law, guarded by the watchdog.  A non-finite rate
        // command is a controller fault even if the call "succeeded".
        if !self.degraded {
            let healthy =
                self.inner.update(&self.sanitized).is_ok() && self.inner.rates().is_finite();
            if healthy {
                self.consecutive_errors = 0;
                let r = self.inner.rates();
                for t in 0..self.rates.len() {
                    self.rates[t] = r[t].clamp(self.rmin[t], self.rmax[t]);
                }
            } else {
                self.report.control_errors += 1;
                self.consecutive_errors += 1;
                if self.consecutive_errors >= self.cfg.max_control_errors {
                    self.degrade();
                }
                // Until the watchdog trips, hold the previous rates.
            }
        }

        // 3. Safe mode: slew toward the safe rates; re-engage on health.
        if self.degraded {
            self.report.degraded_periods += 1;
            for t in 0..self.rates.len() {
                let step = self.cfg.slew * (self.safe_rates[t] - self.rates[t]);
                self.rates[t] = (self.rates[t] + step).clamp(self.rmin[t], self.rmax[t]);
            }
            self.healthy_streak = if all_valid {
                self.healthy_streak + 1
            } else {
                0
            };
            if self.healthy_streak >= self.cfg.reengage_hold {
                self.inner.reset(&self.rates);
                self.degraded = false;
                self.consecutive_errors = 0;
                self.healthy_streak = 0;
                self.report.reengagements += 1;
            }
        }

        Ok(())
    }

    fn rates(&self) -> &Vector {
        &self.rates
    }

    fn name(&self) -> &'static str {
        "SUPERVISED"
    }

    fn mode(&self) -> ControlMode {
        if self.degraded {
            ControlMode::Degraded
        } else {
            ControlMode::Nominal
        }
    }

    /// The primary law's telemetry (QP internals when it is an MPC) with
    /// the watchdog's own counters layered on top.
    fn telemetry(&self) -> ControllerTelemetry {
        ControllerTelemetry {
            degraded: self.degraded,
            rejected_samples: self.report.rejected_samples as u64,
            stale_max: self.stale.iter().copied().max().unwrap_or(0),
            degradations: self.report.degradations as u64,
            reengagements: self.report.reengagements as u64,
            ..self.inner.telemetry()
        }
    }

    fn reset(&mut self, rates: &Vector) {
        for t in 0..self.rates.len() {
            self.rates[t] = rates[t].clamp(self.rmin[t], self.rmax[t]);
        }
        self.inner.reset(&self.rates);
        self.stale.iter_mut().for_each(|s| *s = 0);
        self.lane_stale.iter_mut().for_each(|s| *s = false);
        self.consecutive_errors = 0;
        self.healthy_streak = 0;
        self.degraded = false;
    }

    fn note_stale(&mut self, processor: usize) {
        if let Some(flag) = self.lane_stale.get_mut(processor) {
            *flag = true;
        }
    }

    /// Departures are honored even in safe mode (a task that left the
    /// plant must leave the model), shrinking the wrapper's own per-task
    /// state alongside the primary law's plant model.
    fn membership_retain(&mut self, keep: &[bool]) -> Result<ModelUpdate, ControlError> {
        if keep.len() != self.rates.len() {
            return Err(ControlError::DimensionMismatch(format!(
                "{} keep flags for {} tasks",
                keep.len(),
                self.rates.len()
            )));
        }
        let update = self.inner.membership_retain(keep)?;
        let subset =
            |v: &Vector| Vector::from_iter((0..keep.len()).filter(|&t| keep[t]).map(|t| v[t]));
        self.rmin = subset(&self.rmin);
        self.rmax = subset(&self.rmax);
        self.safe_rates = subset(&self.safe_rates);
        self.rates = subset(&self.rates);
        Ok(update)
    }

    /// Admissions are frozen while the watchdog holds the loop in safe
    /// mode: a degraded system must not take on new load.
    fn membership_admit(
        &mut self,
        f_col: &[f64],
        rate_min: f64,
        rate_max: f64,
        initial_rate: f64,
    ) -> Result<ModelUpdate, ControlError> {
        if self.degraded {
            return Err(ControlError::Unsupported(
                "safe mode: admissions are frozen until the primary law re-engages".into(),
            ));
        }
        let update = self
            .inner
            .membership_admit(f_col, rate_min, rate_max, initial_rate)?;
        let r0 = initial_rate.clamp(rate_min, rate_max);
        self.rmin.push(rate_min);
        self.rmax.push(rate_max);
        // The most conservative safe rate for a task nobody has vetted
        // under faults is its floor.
        self.safe_rates.push(rate_min);
        self.rates.push(r0);
        Ok(update)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MpcConfig, MpcController};
    use eucon_tasks::{rms_set_points, workloads};

    fn supervised_mpc(cfg: SupervisorConfig) -> Supervised<MpcController> {
        let set = workloads::simple();
        let b = rms_set_points(&set);
        let mpc = MpcController::new(&set, b, MpcConfig::simple()).unwrap();
        Supervised::new(mpc, &set, cfg).unwrap()
    }

    fn in_box(r: &Vector) -> bool {
        let set = workloads::simple();
        set.tasks().iter().enumerate().all(|(t, task)| {
            r[t].is_finite() && r[t] >= task.rate_min() - 1e-12 && r[t] <= task.rate_max() + 1e-12
        })
    }

    #[test]
    fn healthy_samples_pass_through_to_the_primary_law() {
        let set = workloads::simple();
        let b = rms_set_points(&set);
        let mut raw = MpcController::new(&set, b, MpcConfig::simple()).unwrap();
        let mut sup = supervised_mpc(SupervisorConfig::default());
        let u = Vector::from_slice(&[0.4, 0.4]);
        for _ in 0..20 {
            raw.update(&u).unwrap();
            sup.update(&u).unwrap();
            assert!(
                sup.rates().approx_eq(raw.rates(), 1e-12),
                "transparent when healthy"
            );
        }
        assert_eq!(sup.report(), SupervisorReport::default());
        assert_eq!(sup.mode(), ControlMode::Nominal);
    }

    #[test]
    fn invalid_samples_are_substituted_not_forwarded() {
        let mut sup = supervised_mpc(SupervisorConfig::default());
        sup.update(&Vector::from_slice(&[0.5, 0.5])).unwrap();
        for bad in [f64::NAN, f64::INFINITY, -0.2, 7.0] {
            sup.update(&Vector::from_slice(&[bad, 0.5])).unwrap();
            assert!(
                in_box(sup.rates()),
                "bad sample {bad} leaked: {}",
                sup.rates()
            );
        }
        assert_eq!(sup.report().rejected_samples, 4);
        // Interleaved valid samples keep staleness below the threshold.
        assert!(!sup.is_degraded());
        assert_eq!(sup.report().control_errors, 0, "MPC never saw garbage");
    }

    #[test]
    fn dead_sensor_degrades_and_recovery_reengages() {
        let cfg = SupervisorConfig::default().max_stale(4).reengage_hold(3);
        let mut sup = supervised_mpc(cfg);
        for _ in 0..10 {
            sup.update(&Vector::from_slice(&[0.5, 0.5])).unwrap();
        }
        // Monitor on P1 dies: NaN forever.
        for k in 0..4 {
            sup.update(&Vector::from_slice(&[f64::NAN, 0.5])).unwrap();
            assert_eq!(sup.is_degraded(), k == 3, "degrades exactly at M = 4");
        }
        assert_eq!(sup.report().degradations, 1);
        // While dead, rates slew toward the safe rates (Rmin by default).
        let mut prev_gap = f64::INFINITY;
        for _ in 0..20 {
            sup.update(&Vector::from_slice(&[f64::NAN, 0.5])).unwrap();
            let r = sup.rates().clone();
            assert!(in_box(&r));
            let gap: f64 = (0..r.len()).map(|t| (r[t] - sup.safe_rates[t]).abs()).sum();
            assert!(gap <= prev_gap + 1e-12, "monotone approach to safe rates");
            prev_gap = gap;
        }
        assert!(prev_gap < 1e-3, "converged to the safe rates: {prev_gap}");
        // Monitor comes back: three healthy periods re-engage the MPC.
        for _ in 0..3 {
            assert!(sup.is_degraded());
            sup.update(&Vector::from_slice(&[0.3, 0.3])).unwrap();
        }
        assert!(!sup.is_degraded());
        assert_eq!(sup.report().reengagements, 1);
        // Re-engaged MPC raises rates from the floor again.
        let before = sup.rates().sum();
        sup.update(&Vector::from_slice(&[0.3, 0.3])).unwrap();
        assert!(sup.rates().sum() > before, "primary law back in charge");
    }

    /// A primary law that always fails, for watchdog tests.
    struct Dead {
        rates: Vector,
    }

    impl RateController for Dead {
        fn update(&mut self, _u: &Vector) -> Result<(), ControlError> {
            Err(ControlError::DimensionMismatch("dead".into()))
        }
        fn rates(&self) -> &Vector {
            &self.rates
        }
        fn name(&self) -> &'static str {
            "dead"
        }
    }

    #[test]
    fn repeated_controller_errors_trip_the_watchdog() {
        let set = workloads::simple();
        let dead = Dead {
            rates: set.initial_rates(),
        };
        let cfg = SupervisorConfig::default().max_control_errors(3);
        let mut sup = Supervised::new(dead, &set, cfg).unwrap();
        let u = Vector::from_slice(&[0.5, 0.5]);
        for k in 0..3 {
            sup.update(&u).unwrap();
            assert!(
                in_box(sup.rates()),
                "update stays total while errors accumulate"
            );
            assert_eq!(sup.is_degraded(), k == 2, "degrades at N = 3");
        }
        assert_eq!(sup.report().control_errors, 3);
        // The inner law keeps failing, so even with healthy sensors the
        // wrapper stays in (or re-enters) safe mode and drives to Rmin.
        for _ in 0..40 {
            sup.update(&u).unwrap();
            assert!(in_box(sup.rates()));
        }
        let (rmin, _) = set.rate_bounds();
        assert!(
            sup.rates().approx_eq(&rmin, 1e-2),
            "safe mode parks at Rmin: {} vs {}",
            sup.rates(),
            rmin
        );
    }

    /// A primary law that returns NaN rates (worse than failing).
    struct Lying {
        rates: Vector,
    }

    impl RateController for Lying {
        fn update(&mut self, _u: &Vector) -> Result<(), ControlError> {
            self.rates = self.rates.map(|_| f64::NAN);
            Ok(())
        }
        fn rates(&self) -> &Vector {
            &self.rates
        }
        fn name(&self) -> &'static str {
            "lying"
        }
    }

    #[test]
    fn non_finite_inner_rates_count_as_errors() {
        let set = workloads::simple();
        let lying = Lying {
            rates: set.initial_rates(),
        };
        let mut sup = Supervised::new(lying, &set, SupervisorConfig::default()).unwrap();
        for _ in 0..10 {
            sup.update(&Vector::from_slice(&[0.5, 0.5])).unwrap();
            assert!(sup.rates().is_finite(), "NaN must never escape the wrapper");
        }
        assert!(sup.is_degraded());
        assert!(sup.report().control_errors >= 3);
    }

    #[test]
    fn safe_rates_can_be_design_rates() {
        let set = workloads::simple();
        let b = rms_set_points(&set);
        let open = crate::OpenLoop::design(&set, &b).unwrap();
        let design = open.rates().clone();
        let mpc = MpcController::new(&set, b, MpcConfig::simple()).unwrap();
        let mut sup = Supervised::new(mpc, &set, SupervisorConfig::default().max_stale(2))
            .unwrap()
            .safe_rates(design.clone());
        for _ in 0..60 {
            sup.update(&Vector::from_slice(&[f64::NAN, f64::NAN]))
                .unwrap();
        }
        assert!(sup.is_degraded());
        assert!(
            sup.rates().approx_eq(&design, 1e-3),
            "fallback holds the design point"
        );
    }

    #[test]
    fn stale_lane_trips_the_watchdog_like_a_dead_monitor() {
        let cfg = SupervisorConfig::default().max_stale(4).reengage_hold(3);
        let mut sup = supervised_mpc(cfg);
        for _ in 0..5 {
            sup.update(&Vector::from_slice(&[0.5, 0.5])).unwrap();
        }
        // P1's feedback lane dies: the loop keeps substituting the last
        // delivered value (finite, in range) but flags every reuse.
        for k in 0..4 {
            sup.note_stale(0);
            sup.update(&Vector::from_slice(&[0.5, 0.5])).unwrap();
            assert_eq!(sup.is_degraded(), k == 3, "trips exactly at M = 4");
        }
        assert_eq!(sup.report().stale_reports, 4);
        assert_eq!(
            sup.report().rejected_samples,
            0,
            "stale reuses are not invalid samples"
        );
        // The lane heals: fresh samples re-engage the primary law.
        for _ in 0..3 {
            sup.update(&Vector::from_slice(&[0.4, 0.5])).unwrap();
        }
        assert!(!sup.is_degraded());
        assert_eq!(sup.report().reengagements, 1);
    }

    #[test]
    fn interleaved_fresh_reports_keep_a_flaky_lane_engaged() {
        let mut sup = supervised_mpc(SupervisorConfig::default().max_stale(3));
        sup.update(&Vector::from_slice(&[0.5, 0.5])).unwrap();
        // 50% lane loss: staleness never accumulates to the threshold.
        for k in 0..20 {
            if k % 2 == 0 {
                sup.note_stale(1);
            }
            sup.update(&Vector::from_slice(&[0.5, 0.5])).unwrap();
        }
        assert!(!sup.is_degraded());
        assert_eq!(sup.report().stale_reports, 10);
    }

    #[test]
    fn dimension_mismatch_still_reported() {
        let mut sup = supervised_mpc(SupervisorConfig::default());
        assert!(matches!(
            sup.update(&Vector::zeros(5)),
            Err(ControlError::DimensionMismatch(_))
        ));
    }

    #[test]
    #[should_panic(expected = "slew must be in (0, 1]")]
    fn config_validated() {
        let _ = supervised_mpc(SupervisorConfig::default().slew(0.0));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            // Under arbitrary fault sequences — NaN, ±∞, negative and
            // out-of-range samples injected at random — the supervised
            // controller never emits a non-finite or out-of-box rate.
            #[test]
            fn rates_stay_finite_and_bounded_under_any_faults(
                seed in 0u64..30,
                fault_mask in 0u32..4096,
            ) {
                let mut sup = supervised_mpc(SupervisorConfig::default());
                let garbage = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -3.0, 99.0];
                for k in 0..24usize {
                    let mut u = Vector::from_slice(&[
                        0.3 + 0.05 * ((k + seed as usize) % 7) as f64,
                        0.4 + 0.05 * ((k * 3 + seed as usize) % 5) as f64,
                    ]);
                    if fault_mask & (1 << (k % 12)) != 0 {
                        let which = (seed as usize + k) % garbage.len();
                        u[(k + seed as usize) % 2] = garbage[which];
                    }
                    sup.update(&u).unwrap();
                    prop_assert!(in_box(sup.rates()), "period {k}: {}", sup.rates());
                    prop_assert!(sup.rates().is_finite());
                }
            }
        }
    }
}
