//! Controllers for end-to-end utilization control — the EUCON paper's core
//! contribution.
//!
//! * [`MpcController`] — the MIMO model-predictive controller of §6.1:
//!   exponential reference trajectory, quadratic tracking + control-penalty
//!   cost, hard utilization and rate constraints, solved each period as a
//!   constrained least-squares problem (via `eucon-qp`), receding horizon.
//! * [`MpcConfig`] — the controller parameters of Table 2 (`P`, `M`,
//!   `Tref/Ts`, weights), with the paper's SIMPLE and MEDIUM presets.
//! * [`stability`] — the closed-loop analysis of §6.2: unconstrained
//!   control-law derivation, closed-loop matrix `A(G)`, spectral-radius
//!   stability test and critical-gain search (≈ 5.0 for SIMPLE under our
//!   re-derivation; the paper reports 5.95 — see `stability` module docs).
//! * [`OpenLoop`] — the paper's OPEN baseline; [`IndependentPid`] — a
//!   decoupled per-processor baseline for ablation.
//! * [`DecentralizedController`] — the paper's future-work direction: a
//!   team of per-processor local MPCs coordinating by last-move exchange
//!   (DEUCON-style).
//!
//! All controllers implement [`RateController`] so experiments can swap
//! them uniformly.
//!
//! # Example
//!
//! ```
//! use eucon_control::{stability, MpcConfig};
//! use eucon_tasks::workloads;
//!
//! # fn main() -> Result<(), eucon_control::ControlError> {
//! // Reproduce the paper's stability example (§6.2): the loop tolerates
//! // execution times several times the estimates.
//! let f = workloads::simple().allocation_matrix();
//! let g = stability::critical_uniform_gain(&f, &MpcConfig::simple(), 10.0, 1e-4)?;
//! assert!(g > 5.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baselines;
mod config;
mod decentralized;
mod error;
mod mpc;
mod prediction;
mod shard;
pub mod stability;
mod supervisor;

pub use baselines::{IndependentPid, OpenLoop};
pub use config::{ControlPenalty, MoveHold, MpcConfig};
pub use decentralized::DecentralizedController;
pub use error::ControlError;
pub use mpc::{ModelUpdate, MpcController, MpcStepInfo};
pub use shard::{BoundaryBus, ShardPlan, ShardPlanner, ShardedController};
pub use supervisor::{Supervised, SupervisorConfig, SupervisorReport};

use eucon_math::Vector;

/// Operating mode a controller reports to the loop (health accounting).
///
/// Plain controllers are always [`ControlMode::Nominal`]; supervisory
/// wrappers such as [`Supervised`] report [`ControlMode::Degraded`] while
/// their watchdog holds the loop in the safe-mode fallback law.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ControlMode {
    /// The primary control law is in charge.
    #[default]
    Nominal,
    /// A fallback law is in charge (sensors or the primary law failed).
    Degraded,
}

/// Per-period observability snapshot of a controller, polled by the
/// closed loop after every update — the consolidated observer interface
/// through which *all* controller internals reach telemetry (instead of
/// N bespoke counter fields on N controller types).
///
/// Cheap to produce (`Copy`, no allocation) so polling it every sampling
/// period preserves the loop's zero-allocation steady state.  Controllers
/// fill in what they know and leave the rest at the defaults: plain
/// controllers report only their mode, [`MpcController`] adds the QP
/// solver internals, [`Supervised`] adds watchdog counters on top of
/// whatever its primary law reports.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ControllerTelemetry {
    /// Active-set iterations spent by the QP solver this period.
    pub qp_iterations: usize,
    /// The solve started from a non-empty warm-started active set.
    pub warm_start: bool,
    /// The warm-started attempt failed and the solver re-ran cold.
    pub cold_retry: bool,
    /// The hard utilization constraints were dropped (infeasible period).
    pub relaxed_utilization: bool,
    /// Constraints active (at their bound) at the optimum — the period's
    /// constraint-saturation count.
    pub active_set_size: usize,
    /// Entries by which the optimal active set differs from the previous
    /// period's (symmetric difference); 0 in steady state.
    pub active_churn: usize,
    /// A fallback law is currently in charge (mirrors
    /// [`ControlMode::Degraded`]).
    pub degraded: bool,
    /// Cumulative sensor samples rejected by validation.
    pub rejected_samples: u64,
    /// Largest current consecutive-invalid-sample streak across
    /// processors (0 when all monitors are healthy).
    pub stale_max: usize,
    /// Cumulative safe-mode entries (watchdog trips).
    pub degradations: u64,
    /// Cumulative primary-law re-engagements.
    pub reengagements: u64,
}

/// Common interface of utilization controllers: once per sampling period,
/// consume the measured utilization vector and produce new task rates.
pub trait RateController {
    /// Consumes the utilization measurement `u(k)` and commits the rate
    /// vector for the next sampling period, readable (without an
    /// allocation) through [`RateController::rates`].
    ///
    /// Returning `()` instead of a fresh `Vector` keeps the per-period
    /// control exchange allocation-free; callers that need ownership of
    /// the commanded rates clone `rates()` explicitly.
    ///
    /// # Errors
    ///
    /// Implementations report dimension mismatches and optimization
    /// failures as [`ControlError`]; on error the previously commanded
    /// rates stay in force.
    fn update(&mut self, u: &Vector) -> Result<(), ControlError>;

    /// The rates currently commanded by the controller.
    ///
    /// Returned by reference — the per-period control loop reads this every
    /// sampling period and must not pay an allocation for it; callers that
    /// need ownership clone at the call site.
    fn rates(&self) -> &Vector;

    /// Short human-readable controller name (for experiment reports).
    fn name(&self) -> &'static str;

    /// The controller's current operating mode.  The closed loop polls
    /// this each period to count degraded time; stateless controllers
    /// keep the default ([`ControlMode::Nominal`]).
    fn mode(&self) -> ControlMode {
        ControlMode::Nominal
    }

    /// Observability snapshot of the most recent update.
    ///
    /// The default implementation reports only the operating mode;
    /// controllers with interesting internals (QP solvers, watchdogs)
    /// override it.  Must be allocation-free — the closed loop polls it
    /// every sampling period.
    fn telemetry(&self) -> ControllerTelemetry {
        ControllerTelemetry {
            degraded: self.mode() == ControlMode::Degraded,
            ..ControllerTelemetry::default()
        }
    }

    /// Discards accumulated internal state (integrators, warm starts,
    /// previous moves) and restarts from the given rate vector, clamped
    /// into the controller's rate box where one exists.
    ///
    /// Supervisory wrappers call this when re-engaging a primary law
    /// after an outage, so stale pre-fault momentum cannot destabilize
    /// the re-engagement.  Stateless controllers may ignore it (the
    /// default is a no-op).
    fn reset(&mut self, rates: &Vector) {
        let _ = rates;
    }

    /// Shrinks the controller's plant model to the tasks marked `true` in
    /// `keep` (one flag per current task column, in order), migrating
    /// warm-start state so the next solve continues from the surviving
    /// subproblem instead of cold-starting.
    ///
    /// Called by churn-aware loops when tasks depart at runtime.  The
    /// default refuses with [`ControlError::Unsupported`]: controllers
    /// without a per-task plant model (OPEN, PID) cannot shrink, and the
    /// loop then keeps routing their full-arity commands (the departed
    /// tasks simply ignore theirs).
    ///
    /// # Errors
    ///
    /// [`ControlError::Unsupported`] by default; implementations add
    /// their own validation failures.
    fn membership_retain(&mut self, keep: &[bool]) -> Result<ModelUpdate, ControlError> {
        let _ = keep;
        Err(ControlError::Unsupported(
            "this controller has no per-task plant model to shrink".into(),
        ))
    }

    /// Grows the controller's plant model by one task: `f_col` is the new
    /// task's estimated per-processor utilization per unit rate (the new
    /// column of the subtask allocation matrix `F`), and the rate box /
    /// starting rate describe its actuation range.
    ///
    /// Called by churn-aware loops when an arrival passes the admission
    /// test.  The default refuses with [`ControlError::Unsupported`], and
    /// the admission controller then rejects the arrival — a task nobody
    /// can control must not enter the plant.
    ///
    /// # Errors
    ///
    /// [`ControlError::Unsupported`] by default; implementations add
    /// their own validation failures.
    fn membership_admit(
        &mut self,
        f_col: &[f64],
        rate_min: f64,
        rate_max: f64,
        initial_rate: f64,
    ) -> Result<ModelUpdate, ControlError> {
        let _ = (f_col, rate_min, rate_max, initial_rate);
        Err(ControlError::Unsupported(
            "this controller has no per-task plant model to grow".into(),
        ))
    }

    /// Tells the controller that `processor`'s next utilization sample is
    /// a stale reuse, not a fresh measurement — its feedback lane lost or
    /// delayed this period's report, and the loop substituted the last
    /// delivered value.
    ///
    /// Called (once per affected processor) *before* the corresponding
    /// [`RateController::update`].  Plain controllers ignore it (the
    /// default is a no-op); [`Supervised`] advances its per-processor
    /// staleness counter so a dead lane trips the watchdog exactly like a
    /// dead monitor.
    fn note_stale(&mut self, processor: usize) {
        let _ = processor;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_objects_are_usable() {
        use eucon_tasks::{rms_set_points, workloads};
        let set = workloads::simple();
        let b = rms_set_points(&set);
        let mut controllers: Vec<Box<dyn RateController>> = vec![
            Box::new(MpcController::new(&set, b.clone(), MpcConfig::simple()).unwrap()),
            Box::new(OpenLoop::design(&set, &b).unwrap()),
            Box::new(IndependentPid::new(&set, b, 0.5, 0.1).unwrap()),
        ];
        let u = Vector::from_slice(&[0.5, 0.5]);
        for c in controllers.iter_mut() {
            c.update(&u).unwrap();
            assert_eq!(c.rates().len(), 3, "{} commands wrong arity", c.name());
        }
    }
}
