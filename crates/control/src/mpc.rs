//! The EUCON model-predictive controller.

use eucon_math::{Matrix, Vector};
use eucon_qp::{LsqSolution, PreparedLsq, QpError};
use eucon_tasks::TaskSet;

use crate::prediction::{constraint_matrix, constraint_rhs_into, Predictor};
use crate::{ControlError, ControllerTelemetry, MpcConfig, RateController};

/// Tiny Tikhonov weight keeping the least-squares problem strictly convex
/// even when the tracking matrix is rank deficient and the control penalty
/// is disabled.
const REGULARIZATION: f64 = 1e-9;

/// Diagnostics of the most recent controller invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MpcStepInfo {
    /// Active-set iterations spent by the QP solver.
    pub qp_iterations: usize,
    /// Whether the hard utilization constraints had to be dropped because
    /// the constrained problem was infeasible this period.
    pub relaxed_utilization: bool,
    /// Residual norm of the least-squares objective at the optimum.
    pub residual: f64,
    /// The committed solve started from a non-empty warm-started active
    /// set (false on the first period and right after a reset).
    pub warm_start: bool,
    /// The warm-started attempt failed and the problem was re-solved
    /// cold before the verdict was believed.
    pub cold_retry: bool,
    /// Constraints active at the optimum (constraint saturation).
    pub active_set_size: usize,
    /// Symmetric difference between this period's optimal active set and
    /// the previous period's; 0 once the loop has settled.
    pub active_churn: usize,
}

/// The EUCON MIMO model-predictive controller (paper §6.1).
///
/// Once per sampling period, [`MpcController::step`] receives the measured
/// utilization vector `u(k)` and produces new task rates by solving the
/// constrained least-squares problem
///
/// ```text
/// min  Σᵢ ‖u(k+i|k) − ref(k+i|k)‖²_Q + Σᵢ ‖Δr(k+i|k) − Δr(k+i−1|k)‖²_R
/// s.t. u(k+i|k) ≤ B          (utilization constraints, eq. 1)
///      Rmin ≤ r(k+i|k) ≤ Rmax (rate constraints, eq. 2)
/// ```
///
/// over the approximate model `u(k+1) = u(k) + F·Δr(k)` (the controller
/// assumes unit utilization gains, `G = I`; robustness to `G ≠ I` is what
/// the stability analysis quantifies).  Only the first move of the optimal
/// trajectory is applied (receding horizon).
///
/// If the hard utilization constraints make the problem infeasible (e.g. a
/// severe overload that rate adaptation cannot remove within one step),
/// the controller retries without them — the tracking objective still
/// drives utilization toward the set points, which mirrors `lsqlin`
/// practice and keeps the loop alive; the event is reported in
/// [`MpcController::last_step_info`].
///
/// # Example
///
/// ```
/// use eucon_control::{MpcConfig, MpcController, RateController};
/// use eucon_math::Vector;
/// use eucon_tasks::{rms_set_points, workloads};
///
/// # fn main() -> Result<(), eucon_control::ControlError> {
/// let simple = workloads::simple();
/// let b = rms_set_points(&simple);
/// let mut ctrl = MpcController::new(&simple, b, MpcConfig::simple())?;
/// // Underutilized system → the controller raises rates.
/// let before = ctrl.rates().sum();
/// let after = ctrl.step(&Vector::from_slice(&[0.4, 0.4]))?.sum();
/// assert!(after > before);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MpcController {
    f: Matrix,
    b: Vector,
    rmin: Vector,
    rmax: Vector,
    cfg: MpcConfig,
    pred: Predictor,
    rates: Vector,
    prev_move: Vector,
    last_info: MpcStepInfo,
    /// Amortized solver with the utilization rows (`None` when the config
    /// disables utilization constraints).
    solver_util: Option<PreparedLsq>,
    /// Amortized solver with rate rows only — the primary problem when
    /// utilization constraints are off, the infeasibility fallback
    /// otherwise.
    solver_rate: PreparedLsq,
    /// Per-period right-hand-side buffers, rewritten in place: the
    /// constraint matrices are fixed, only these change with `u` and `r`.
    h_util: Vector,
    h_rate: Vector,
    d_buf: Vector,
    /// Tracking-error scratch `u − B`, rewritten in place every period so
    /// the hot path never allocates.
    err_buf: Vector,
    /// Active sets of the previous period, used to warm-start the dual
    /// active-set solver.  In steady state the set is unchanged and the
    /// solve takes zero iterations.
    warm_util: Vec<usize>,
    warm_rate: Vec<usize>,
}

impl MpcController {
    /// Creates a controller for a task set, reading `F`, the rate bounds
    /// and the initial rates from the model.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::DimensionMismatch`] when `set_points` does
    /// not have one entry per processor.
    pub fn new(set: &TaskSet, set_points: Vector, cfg: MpcConfig) -> Result<Self, ControlError> {
        let (rmin, rmax) = set.rate_bounds();
        Self::from_model(
            set.allocation_matrix(),
            set_points,
            rmin,
            rmax,
            set.initial_rates(),
            cfg,
        )
    }

    /// Creates a controller from an explicit model (allocation matrix,
    /// set points, rate bounds and initial rates).
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::DimensionMismatch`] on inconsistent sizes.
    pub fn from_model(
        f: Matrix,
        set_points: Vector,
        rmin: Vector,
        rmax: Vector,
        initial_rates: Vector,
        cfg: MpcConfig,
    ) -> Result<Self, ControlError> {
        let n = f.rows();
        let m = f.cols();
        if set_points.len() != n {
            return Err(ControlError::DimensionMismatch(format!(
                "{} set points for {n} processors",
                set_points.len()
            )));
        }
        if rmin.len() != m || rmax.len() != m || initial_rates.len() != m {
            return Err(ControlError::DimensionMismatch(format!(
                "rate vectors must have {m} entries"
            )));
        }
        cfg.assert_valid();
        let pred = Predictor::new(&f, &cfg);

        // Everything that depends only on the model is computed here, once:
        // the constraint matrices, the Hessian CᵀC + εI, its Cholesky
        // factor and the per-constraint back-solves.  `step` only rewrites
        // right-hand sides.
        let g_rate = constraint_matrix(&f, &cfg, false);
        let h_rate = Vector::zeros(g_rate.rows());
        let solver_rate = PreparedLsq::new(pred.c.clone(), g_rate, REGULARIZATION)
            .map_err(ControlError::Optimization)?;
        let (solver_util, h_util) = if cfg.utilization_constraints {
            let g_util = constraint_matrix(&f, &cfg, true);
            let h_util = Vector::zeros(g_util.rows());
            let solver = PreparedLsq::new(pred.c.clone(), g_util, REGULARIZATION)
                .map_err(ControlError::Optimization)?;
            (Some(solver), h_util)
        } else {
            (None, Vector::zeros(0))
        };
        let d_buf = Vector::zeros(pred.c.rows());
        let err_buf = Vector::zeros(n);

        Ok(MpcController {
            f,
            b: set_points,
            rmin,
            rmax,
            cfg,
            pred,
            rates: initial_rates,
            prev_move: Vector::zeros(m),
            last_info: MpcStepInfo::default(),
            solver_util,
            solver_rate,
            h_util,
            h_rate,
            d_buf,
            err_buf,
            warm_util: Vec::new(),
            warm_rate: Vec::new(),
        })
    }

    /// The utilization set points `B`.
    pub fn set_points(&self) -> &Vector {
        &self.b
    }

    /// Replaces the utilization set points (they can be changed online,
    /// paper §3.3).
    ///
    /// # Panics
    ///
    /// Panics if the length changes.
    pub fn set_set_points(&mut self, b: Vector) {
        assert_eq!(b.len(), self.b.len(), "set-point dimension cannot change");
        self.b = b;
    }

    /// The controller configuration.
    pub fn config(&self) -> &MpcConfig {
        &self.cfg
    }

    /// Diagnostics of the most recent [`MpcController::step`].
    pub fn last_step_info(&self) -> MpcStepInfo {
        self.last_info
    }

    /// Lower bandwidth detected in the MPC Hessian `CᵀC + εI` by the
    /// amortized solver's Cholesky factorization.
    ///
    /// The horizon structure makes the Hessian block banded: move blocks
    /// `j₁, j₂` only couple through prediction steps that apply both, and
    /// within a block tasks only couple when the allocation matrix puts
    /// them on a shared processor.  Anything below `num_vars − 1` means
    /// the banded `O(n·b²)` factor/solve paths are active.
    pub fn hessian_bandwidth(&self) -> usize {
        self.solver_rate.hessian_bandwidth()
    }

    /// Computes the control input `Δr(k)` for the measured utilization
    /// `u(k)` and returns the new rate vector `r(k) = r(k−1) + Δr(k)`.
    ///
    /// # Errors
    ///
    /// * [`ControlError::DimensionMismatch`] — `u` does not have one entry
    ///   per processor.
    /// * [`ControlError::InvalidSample`] — `u` contains a non-finite
    ///   entry.  Such a sample would corrupt the QP right-hand sides and,
    ///   through the recorded active set, every future warm-started
    ///   solve; the controller's state is left untouched instead.
    /// * [`ControlError::Optimization`] — the QP failed even after
    ///   dropping the utilization constraints (does not happen for valid
    ///   rate boxes, which are always feasible at `Δr = 0`).
    pub fn step(&mut self, u: &Vector) -> Result<Vector, ControlError> {
        self.step_in_place(u)?;
        Ok(self.rates.clone())
    }

    /// The allocation-free core of [`MpcController::step`]: commits the new
    /// rates into `self.rates` instead of returning a fresh vector.  All
    /// per-period right-hand sides and the tracking error are rewritten in
    /// long-lived scratch buffers (the QP solver still allocates its
    /// solution internally).
    pub(crate) fn step_in_place(&mut self, u: &Vector) -> Result<(), ControlError> {
        if u.len() != self.pred.n {
            return Err(ControlError::DimensionMismatch(format!(
                "{} utilization samples for {} processors",
                u.len(),
                self.pred.n
            )));
        }
        if let Some(p) = u.iter().position(|ui| !ui.is_finite()) {
            return Err(ControlError::InvalidSample(format!(
                "u[{p}] = {} is not finite",
                u[p]
            )));
        }
        for i in 0..u.len() {
            self.err_buf[i] = u[i] - self.b[i];
        }
        self.pred
            .rhs_into(&self.err_buf, &self.prev_move, &mut self.d_buf);

        let mut relaxed = false;
        let primary = match &self.solver_util {
            Some(solver) => {
                constraint_rhs_into(
                    &self.f,
                    &self.cfg,
                    &self.rates,
                    &self.rmin,
                    &self.rmax,
                    u,
                    &self.b,
                    true,
                    &mut self.h_util,
                );
                Some(solve_amortized(
                    solver,
                    &self.d_buf,
                    &self.h_util,
                    &mut self.warm_util,
                ))
            }
            None => None,
        };
        let (solution, stats) = match primary {
            Some(Ok(sol)) => sol,
            Some(Err(QpError::Infeasible)) | None => {
                relaxed = self.solver_util.is_some();
                constraint_rhs_into(
                    &self.f,
                    &self.cfg,
                    &self.rates,
                    &self.rmin,
                    &self.rmax,
                    u,
                    &self.b,
                    false,
                    &mut self.h_rate,
                );
                solve_amortized(
                    &self.solver_rate,
                    &self.d_buf,
                    &self.h_rate,
                    &mut self.warm_rate,
                )
                .map_err(ControlError::Optimization)?
            }
            Some(Err(e)) => return Err(ControlError::Optimization(e)),
        };

        // Receding horizon: apply only the first move (the leading `m`
        // entries of the optimal move trajectory), in place.
        let m = self.pred.m;
        for t in 0..m {
            let nr = (self.rates[t] + solution.x[t]).clamp(self.rmin[t], self.rmax[t]);
            self.prev_move[t] = nr - self.rates[t];
            self.rates[t] = nr;
        }
        self.last_info = MpcStepInfo {
            qp_iterations: solution.iterations,
            relaxed_utilization: relaxed,
            residual: solution.residual,
            warm_start: stats.warm_start,
            cold_retry: stats.cold_retry,
            active_set_size: solution.active.len(),
            active_churn: stats.active_churn,
        };
        Ok(())
    }

    /// Whether `self` and `other` share the same prepared model memory —
    /// the `Arc`-backed prediction matrix, constraint rows and Cholesky
    /// factor inside [`PreparedLsq`].  True exactly for clones of one
    /// controller (the fleet prototype cache relies on this); two
    /// independently constructed controllers never alias, even over
    /// identical inputs.
    pub fn shares_model(&self, other: &MpcController) -> bool {
        let util_shared = match (&self.solver_util, &other.solver_util) {
            (Some(a), Some(b)) => a.shares_model(b),
            (None, None) => true,
            _ => false,
        };
        self.solver_rate.shares_model(&other.solver_rate) && util_shared
    }
}

/// How a membership update produced the new prepared solvers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelUpdate {
    /// The prepared solvers were shrunk from the existing model: the Gauss
    /// normal matrix and constraint rows of the retained block were
    /// extracted instead of recomputed ([`PreparedLsq::retain`]).
    Incremental,
    /// Full matrix assembly plus Gram product — growth always rebuilds,
    /// and a shrink falls back here if the incremental contract ever
    /// fails.  Pinned bit-identical to the incremental path by tests.
    Rebuild,
}

/// Membership updates: tasks arriving and departing at runtime.
///
/// Both operations build a **new** controller for the changed task set
/// while migrating every piece of accumulated state that still makes
/// sense — current rates, the previous move, and the warm-start active
/// sets (remapped through the constraint-row layout) — so the first solve
/// after a membership change starts from the surviving tasks' momentum
/// instead of cold.  The incremental shrink path and the full-rebuild
/// fallback produce bit-identical controllers: the next solve's rates
/// agree bit for bit (see `retain_tasks_rebuilt` and the tests pinning
/// it).
impl MpcController {
    /// Number of tasks currently in the model.
    pub fn num_tasks(&self) -> usize {
        self.pred.m
    }

    /// Number of processors in the model.
    pub fn num_processors(&self) -> usize {
        self.pred.n
    }

    /// The allocation matrix `F` currently in use.
    pub fn allocation(&self) -> &Matrix {
        &self.f
    }

    /// Removes the tasks whose `keep` entry is `false`, producing a
    /// controller over the retained columns of `F`.
    ///
    /// The prepared solvers are shrunk incrementally
    /// ([`PreparedLsq::retain`]): tracking rows survive, the departing
    /// tasks' rate-penalty rows, move variables and rate-bound constraint
    /// rows are dropped, and the Gauss normal matrix of the retained block
    /// is extracted rather than recomputed.  Warm-start active sets are
    /// remapped row-for-row; rates, previous move and rate bounds keep the
    /// surviving entries.  If the incremental contract is ever violated
    /// the update silently falls back to a full rebuild (reported in the
    /// returned [`ModelUpdate`]), which is bit-identical by construction.
    ///
    /// # Errors
    ///
    /// [`ControlError::DimensionMismatch`] when `keep` does not have one
    /// entry per task or would retain no tasks.
    pub fn retain_tasks(&self, keep: &[bool]) -> Result<(Self, ModelUpdate), ControlError> {
        self.retain_tasks_impl(keep, false)
    }

    /// The full-rebuild fallback of [`MpcController::retain_tasks`]: same
    /// semantics and state migration, but the prepared solvers are rebuilt
    /// from freshly assembled matrices.  Exists so tests can pin the
    /// incremental path bit-identical against it.
    ///
    /// # Errors
    ///
    /// Same as [`MpcController::retain_tasks`].
    pub fn retain_tasks_rebuilt(&self, keep: &[bool]) -> Result<Self, ControlError> {
        Ok(self.retain_tasks_impl(keep, true)?.0)
    }

    fn retain_tasks_impl(
        &self,
        keep: &[bool],
        force_rebuild: bool,
    ) -> Result<(Self, ModelUpdate), ControlError> {
        let m = self.pred.m;
        let n = self.pred.n;
        if keep.len() != m {
            return Err(ControlError::DimensionMismatch(format!(
                "membership mask has {} entries for {m} tasks",
                keep.len()
            )));
        }
        let kept: Vec<usize> = keep
            .iter()
            .enumerate()
            .filter_map(|(t, &k)| k.then_some(t))
            .collect();
        if kept.is_empty() {
            return Err(ControlError::DimensionMismatch(
                "cannot retain an empty task set".to_string(),
            ));
        }
        let m2 = kept.len();
        let f = Matrix::from_fn(n, m2, |r, j| self.f[(r, kept[j])]);
        let pred = Predictor::new(&f, &self.cfg);
        let p = self.cfg.prediction_horizon;
        let mh = self.cfg.control_horizon;

        // Masks over the old layout (see `Predictor::new` and
        // `constraint_matrix`): objective = n·P tracking rows then m·M
        // penalty rows; variables interleave j·m + t; constraints = per
        // step 2m rate rows (upper then lower) then n·P utilization rows.
        let mut keep_rows = vec![true; n * p + m * mh];
        let mut keep_vars = vec![false; m * mh];
        let mut keep_rate = vec![false; 2 * m * mh];
        for i in 0..mh {
            for t in 0..m {
                keep_rows[n * p + m * i + t] = keep[t];
                keep_vars[i * m + t] = keep[t];
                keep_rate[2 * m * i + t] = keep[t];
                keep_rate[2 * m * i + m + t] = keep[t];
            }
        }
        let keep_util: Vec<bool> = keep_rate
            .iter()
            .copied()
            .chain(std::iter::repeat_n(true, n * p))
            .collect();

        let mut update = ModelUpdate::Incremental;
        let solver_rate = match (!force_rebuild)
            .then(|| self.solver_rate.retain(&keep_rows, &keep_vars, &keep_rate))
            .and_then(Result::ok)
        {
            Some(s) => s,
            None => {
                update = ModelUpdate::Rebuild;
                let g = constraint_matrix(&f, &self.cfg, false);
                PreparedLsq::new(pred.c.clone(), g, REGULARIZATION)
                    .map_err(ControlError::Optimization)?
            }
        };
        let solver_util = match &self.solver_util {
            Some(old) => {
                let incremental = (!force_rebuild && update == ModelUpdate::Incremental)
                    .then(|| old.retain(&keep_rows, &keep_vars, &keep_util))
                    .and_then(Result::ok);
                Some(match incremental {
                    Some(s) => s,
                    None => {
                        update = ModelUpdate::Rebuild;
                        let g = constraint_matrix(&f, &self.cfg, true);
                        PreparedLsq::new(pred.c.clone(), g, REGULARIZATION)
                            .map_err(ControlError::Optimization)?
                    }
                })
            }
            None => None,
        };

        let sub =
            |v: &Vector| Vector::from_slice(&kept.iter().map(|&t| v[t]).collect::<Vec<f64>>());
        let h_util = match &solver_util {
            Some(s) => Vector::zeros(s.num_constraints()),
            None => Vector::zeros(0),
        };
        Ok((
            MpcController {
                b: self.b.clone(),
                rmin: sub(&self.rmin),
                rmax: sub(&self.rmax),
                cfg: self.cfg.clone(),
                rates: sub(&self.rates),
                prev_move: sub(&self.prev_move),
                last_info: self.last_info,
                h_util,
                h_rate: Vector::zeros(solver_rate.num_constraints()),
                d_buf: Vector::zeros(pred.c.rows()),
                err_buf: Vector::zeros(n),
                warm_util: migrate_warm(&self.warm_util, &keep_util),
                warm_rate: migrate_warm(&self.warm_rate, &keep_rate),
                f,
                pred,
                solver_util,
                solver_rate,
            },
            update,
        ))
    }

    /// Adds a task: appends its allocation column `f_col` (its estimated
    /// utilization contribution per processor), rate bounds and initial
    /// rate to the model.
    ///
    /// Growth changes every matrix dimension, so the prepared solvers are
    /// rebuilt ([`ModelUpdate::Rebuild`]); what migrates is the state —
    /// surviving rates, the previous move (the new task starts with zero
    /// momentum) and the warm-start active sets, remapped through the
    /// grown constraint layout so the next solve starts warm.
    ///
    /// # Errors
    ///
    /// * [`ControlError::DimensionMismatch`] — `f_col` does not have one
    ///   entry per processor.
    /// * [`ControlError::InvalidSample`] — non-finite allocation entries
    ///   or an invalid rate box (`rate_min > rate_max`, non-positive or
    ///   non-finite bounds).
    pub fn add_task(
        &self,
        f_col: &[f64],
        rate_min: f64,
        rate_max: f64,
        initial_rate: f64,
    ) -> Result<(Self, ModelUpdate), ControlError> {
        let n = self.pred.n;
        let m = self.pred.m;
        if f_col.len() != n {
            return Err(ControlError::DimensionMismatch(format!(
                "allocation column has {} entries for {n} processors",
                f_col.len()
            )));
        }
        if let Some(r) = f_col.iter().position(|x| !x.is_finite()) {
            return Err(ControlError::InvalidSample(format!(
                "allocation column entry {r} = {} is not finite",
                f_col[r]
            )));
        }
        if !(rate_min.is_finite() && rate_max.is_finite() && initial_rate.is_finite())
            || rate_min <= 0.0
            || rate_min > rate_max
        {
            return Err(ControlError::InvalidSample(format!(
                "invalid rate box [{rate_min}, {rate_max}] (initial {initial_rate})"
            )));
        }
        let m2 = m + 1;
        let f = Matrix::from_fn(n, m2, |r, j| if j < m { self.f[(r, j)] } else { f_col[r] });
        let pred = Predictor::new(&f, &self.cfg);
        let mh = self.cfg.control_horizon;

        let solver_rate = PreparedLsq::new(
            pred.c.clone(),
            constraint_matrix(&f, &self.cfg, false),
            REGULARIZATION,
        )
        .map_err(ControlError::Optimization)?;
        let solver_util = match &self.solver_util {
            Some(_) => Some(
                PreparedLsq::new(
                    pred.c.clone(),
                    constraint_matrix(&f, &self.cfg, true),
                    REGULARIZATION,
                )
                .map_err(ControlError::Optimization)?,
            ),
            None => None,
        };

        // Old constraint row → grown constraint row (every old row
        // survives; indices shift because each step block widens).
        let map_rate = |row: usize| -> usize {
            let i = row / (2 * m);
            let r = row % (2 * m);
            if r < m {
                2 * m2 * i + r
            } else {
                2 * m2 * i + m2 + (r - m)
            }
        };
        let map_util = |row: usize| -> usize {
            if row < 2 * m * mh {
                map_rate(row)
            } else {
                2 * m2 * mh + (row - 2 * m * mh)
            }
        };
        let warm_rate: Vec<usize> = self.warm_rate.iter().map(|&r| map_rate(r)).collect();
        let warm_util: Vec<usize> = self.warm_util.iter().map(|&r| map_util(r)).collect();

        let push = |v: &Vector, extra: f64| {
            let mut vals = v.as_slice().to_vec();
            vals.push(extra);
            Vector::from_slice(&vals)
        };
        let h_util = match &solver_util {
            Some(s) => Vector::zeros(s.num_constraints()),
            None => Vector::zeros(0),
        };
        Ok((
            MpcController {
                b: self.b.clone(),
                rmin: push(&self.rmin, rate_min),
                rmax: push(&self.rmax, rate_max),
                cfg: self.cfg.clone(),
                rates: push(&self.rates, initial_rate.clamp(rate_min, rate_max)),
                prev_move: push(&self.prev_move, 0.0),
                last_info: self.last_info,
                h_util,
                h_rate: Vector::zeros(solver_rate.num_constraints()),
                d_buf: Vector::zeros(pred.c.rows()),
                err_buf: Vector::zeros(n),
                warm_util,
                warm_rate,
                f,
                pred,
                solver_util,
                solver_rate,
            },
            ModelUpdate::Rebuild,
        ))
    }
}

/// Remaps warm-start active-set indices across a constraint-row shrink:
/// entries of dropped rows vanish, survivors get their rank among the
/// kept rows.
fn migrate_warm(warm: &[usize], keep: &[bool]) -> Vec<usize> {
    let mut rank = vec![0usize; keep.len()];
    let mut c = 0usize;
    for (i, r) in rank.iter_mut().enumerate() {
        *r = c;
        if keep[i] {
            c += 1;
        }
    }
    warm.iter()
        .filter(|&&i| keep[i])
        .map(|&i| rank[i])
        .collect()
}

/// Warm-start bookkeeping of one amortized solve (observability: every
/// period's warm/cold outcome reaches telemetry through
/// [`MpcStepInfo`]).
#[derive(Debug, Clone, Copy, Default)]
struct SolveStats {
    warm_start: bool,
    cold_retry: bool,
    active_churn: usize,
}

/// One amortized solve: warm-start from the previous active set, retry
/// cold if the (extremely rare) warm path hits the iteration limit, and
/// record the new active set for the next period.
fn solve_amortized(
    solver: &PreparedLsq,
    d: &Vector,
    h: &Vector,
    warm: &mut Vec<usize>,
) -> Result<(LsqSolution, SolveStats), QpError> {
    let mut stats = SolveStats {
        warm_start: !warm.is_empty(),
        ..SolveStats::default()
    };
    let attempt = solver.solve_with(d, h, warm);
    let result = match attempt {
        // The warm start is only a heuristic: a stale active set can make
        // the dual iteration wander (iteration limit) or misreport
        // infeasibility from an ill-conditioned subproblem.  Any failure is
        // re-checked cold before the verdict is believed — feasibility
        // decisions must not depend on the previous period's guess.
        Err(_) if !warm.is_empty() => {
            stats.cold_retry = true;
            solver.solve_with(d, h, &[])
        }
        other => other,
    };
    let sol = result?;
    stats.active_churn = symmetric_difference(warm, &sol.active);
    warm.clear();
    warm.extend_from_slice(&sol.active);
    Ok((sol, stats))
}

/// Size of the symmetric difference of two small index sets (the active
/// sets stay tiny, so the quadratic scan beats sorting or hashing — and
/// allocates nothing).
fn symmetric_difference(a: &[usize], b: &[usize]) -> usize {
    let only_a = a.iter().filter(|x| !b.contains(x)).count();
    let only_b = b.iter().filter(|x| !a.contains(x)).count();
    only_a + only_b
}

impl RateController for MpcController {
    fn update(&mut self, u: &Vector) -> Result<(), ControlError> {
        self.step_in_place(u)
    }

    fn rates(&self) -> &Vector {
        &self.rates
    }

    fn name(&self) -> &'static str {
        "EUCON"
    }

    fn telemetry(&self) -> ControllerTelemetry {
        ControllerTelemetry {
            qp_iterations: self.last_info.qp_iterations,
            warm_start: self.last_info.warm_start,
            cold_retry: self.last_info.cold_retry,
            relaxed_utilization: self.last_info.relaxed_utilization,
            active_set_size: self.last_info.active_set_size,
            active_churn: self.last_info.active_churn,
            ..ControllerTelemetry::default()
        }
    }

    /// Shrinks the plant model in place via the incremental
    /// [`MpcController::retain_tasks`] path (QP-layer constraint-set
    /// extraction + warm-state migration), falling back to a full rebuild
    /// when extraction is not applicable.
    fn membership_retain(&mut self, keep: &[bool]) -> Result<ModelUpdate, ControlError> {
        let (next, update) = MpcController::retain_tasks(self, keep)?;
        *self = next;
        Ok(update)
    }

    /// Grows the plant model in place via [`MpcController::add_task`]
    /// (full rebuild with warm-state migration).
    fn membership_admit(
        &mut self,
        f_col: &[f64],
        rate_min: f64,
        rate_max: f64,
        initial_rate: f64,
    ) -> Result<ModelUpdate, ControlError> {
        let (next, update) =
            MpcController::add_task(self, f_col, rate_min, rate_max, initial_rate)?;
        *self = next;
        Ok(update)
    }

    /// Discards all accumulated internal state — the previous move, the
    /// warm-start active sets and the step diagnostics — and restarts
    /// from `rates` (clamped into the rate box).  Used by supervisory
    /// wrappers to re-engage MPC after an outage without inheriting
    /// pre-fault momentum.
    fn reset(&mut self, rates: &Vector) {
        assert_eq!(rates.len(), self.pred.m, "one rate per task required");
        for t in 0..self.pred.m {
            self.rates[t] = rates[t].clamp(self.rmin[t], self.rmax[t]);
        }
        self.prev_move = Vector::zeros(self.pred.m);
        self.warm_util.clear();
        self.warm_rate.clear();
        self.last_info = MpcStepInfo::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eucon_tasks::{rms_set_points, workloads};

    fn simple_controller() -> MpcController {
        let set = workloads::simple();
        let b = rms_set_points(&set);
        MpcController::new(&set, b, MpcConfig::simple()).unwrap()
    }

    #[test]
    fn clones_share_the_prepared_model_and_track_identically() {
        let mut original = simple_controller();
        let mut clone = original.clone();
        assert!(original.shares_model(&clone));
        assert!(
            !original.shares_model(&simple_controller()),
            "independent builds must not alias"
        );
        // Shared memory, private trajectories: both evolve bit-identically
        // on the same inputs while sharing one prepared core.
        let u = Vector::from_slice(&[0.7, 0.4]);
        for _ in 0..5 {
            let a = original.step(&u).unwrap();
            let b = clone.step(&u).unwrap();
            for t in 0..a.len() {
                assert_eq!(a[t].to_bits(), b[t].to_bits());
            }
        }
        assert!(original.shares_model(&clone), "stepping must not unshare");
    }

    #[test]
    fn underutilization_raises_rates() {
        let mut c = simple_controller();
        let r0 = c.rates().clone();
        let r1 = c.step(&Vector::from_slice(&[0.3, 0.3])).unwrap();
        for t in 0..3 {
            assert!(r1[t] >= r0[t] - 1e-12, "task {t} rate should not drop");
        }
        assert!(r1.sum() > r0.sum());
    }

    #[test]
    fn overutilization_lowers_rates() {
        let mut c = simple_controller();
        let r0 = c.rates().clone();
        let r1 = c.step(&Vector::from_slice(&[1.0, 1.0])).unwrap();
        assert!(r1.sum() < r0.sum());
    }

    #[test]
    fn at_set_point_rates_barely_move() {
        let mut c = simple_controller();
        let b = c.set_points().clone();
        let r0 = c.rates().clone();
        let r1 = c.step(&b).unwrap();
        // With zero tracking error and zero previous move the optimum is
        // Δr = 0.
        assert!((&r1 - &r0).max_abs() < 1e-9);
    }

    #[test]
    fn rates_always_stay_in_bounds() {
        let mut c = simple_controller();
        for u in [[0.0, 0.0], [1.0, 1.0], [0.9, 0.1], [0.1, 0.9]] {
            let r = c.step(&Vector::from_slice(&u)).unwrap();
            let set = workloads::simple();
            for (t, task) in set.tasks().iter().enumerate() {
                assert!(r[t] >= task.rate_min() - 1e-12);
                assert!(r[t] <= task.rate_max() + 1e-12);
            }
        }
    }

    #[test]
    fn model_convergence_under_unit_gain() {
        // Iterate the controller against its own model (G = I): u must
        // converge to B.
        let set = workloads::simple();
        let b = rms_set_points(&set);
        let f = set.allocation_matrix();
        let mut c = MpcController::new(&set, b.clone(), MpcConfig::simple()).unwrap();
        let mut u = set.estimated_utilization(&set.initial_rates());
        let mut prev_rates = c.rates().clone();
        for _ in 0..60 {
            let rates = c.step(&u).unwrap();
            let dr = &rates - &prev_rates;
            u = &u + &f.mul_vec(&dr);
            prev_rates = rates;
        }
        assert!((&u - &b).max_abs() < 1e-3, "u = {u}, B = {b}");
    }

    #[test]
    fn model_convergence_with_gain_two() {
        // G = 2·I is inside the stability region: still converges.
        let set = workloads::simple();
        let b = rms_set_points(&set);
        let f = set.allocation_matrix();
        let mut c = MpcController::new(&set, b.clone(), MpcConfig::simple()).unwrap();
        // Actual utilization responds twice as strongly as estimated.
        let mut u = set.estimated_utilization(&set.initial_rates()).scale(2.0);
        let mut prev_rates = c.rates().clone();
        for _ in 0..120 {
            let rates = c.step(&u).unwrap();
            let dr = &rates - &prev_rates;
            u = &u + &f.mul_vec(&dr).scale(2.0);
            prev_rates = rates;
        }
        assert!((&u - &b).max_abs() < 1e-2, "u = {u}, B = {b}");
    }

    #[test]
    fn utilization_constraint_respected_in_prediction() {
        // Start exactly at the set point; the predicted utilization after
        // the move must not exceed B (model-wise).
        let set = workloads::simple();
        let b = rms_set_points(&set);
        let f = set.allocation_matrix();
        let mut c = MpcController::new(&set, b.clone(), MpcConfig::simple()).unwrap();
        let u = Vector::from_slice(&[0.5, 0.828]);
        let r0 = c.rates().clone();
        let r1 = c.step(&u).unwrap();
        let du = f.mul_vec(&(&r1 - &r0));
        assert!(
            u[1] + du[1] <= b[1] + 1e-6,
            "P2 must not be pushed past its set point"
        );
    }

    #[test]
    fn infeasible_overload_falls_back_gracefully() {
        // Overloaded processors with rates already at Rmin: utilization
        // constraints cannot be met in one step; the controller must relax
        // them instead of failing.
        let set = workloads::simple();
        let b = rms_set_points(&set);
        let mut c = MpcController::new(&set, b, MpcConfig::simple()).unwrap();
        // Drive rates to the floor first.
        for _ in 0..50 {
            let _ = c.step(&Vector::from_slice(&[1.0, 1.0])).unwrap();
        }
        let r = c.step(&Vector::from_slice(&[1.0, 1.0])).unwrap();
        assert!(c.last_step_info().relaxed_utilization);
        let set = workloads::simple();
        for (t, task) in set.tasks().iter().enumerate() {
            assert!(
                (r[t] - task.rate_min()).abs() < 1e-9,
                "rates pinned at Rmin"
            );
        }
    }

    #[test]
    fn steady_state_step_reports_zero_qp_iterations() {
        // Regression for the amortized hot path: once the loop settles —
        // same measurement, same rates, zero previous move — the previous
        // period's active set warm-starts the solver to the exact optimum
        // and the dual iteration has nothing left to do.
        let set = workloads::simple();
        let b = rms_set_points(&set);
        let mut c = MpcController::new(&set, b, MpcConfig::simple()).unwrap();
        // Persistent overload pins every rate at Rmin within a few
        // periods; from then on each period solves the identical QP with
        // a non-empty, unchanged active set.
        let u = Vector::from_slice(&[1.0, 1.0]);
        for _ in 0..50 {
            let _ = c.step(&u).unwrap();
        }
        let before = c.rates().clone();
        let _ = c.step(&u).unwrap();
        assert_eq!(
            c.last_step_info().qp_iterations,
            0,
            "steady-state solve must be fully warm-started"
        );
        assert!(
            c.rates().approx_eq(&before, 1e-12),
            "rates must be at a fixed point"
        );
    }

    #[test]
    fn dimension_mismatch_detected() {
        let set = workloads::simple();
        let err = MpcController::new(&set, Vector::zeros(3), MpcConfig::simple());
        assert!(matches!(
            err.unwrap_err(),
            ControlError::DimensionMismatch(_)
        ));

        let mut c = simple_controller();
        let err = c.step(&Vector::zeros(3));
        assert!(matches!(
            err.unwrap_err(),
            ControlError::DimensionMismatch(_)
        ));
    }

    #[test]
    fn non_finite_samples_rejected_without_state_damage() {
        let mut c = simple_controller();
        // Establish a warm active set and a previous move.
        let _ = c.step(&Vector::from_slice(&[0.4, 0.4])).unwrap();
        let rates_before = c.rates().clone();
        let prev_move_before = c.prev_move.clone();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = c.step(&Vector::from_slice(&[0.4, bad])).unwrap_err();
            assert!(matches!(err, ControlError::InvalidSample(_)), "got {err:?}");
            assert!(err.to_string().contains("u[1]"));
        }
        assert!(c.rates().approx_eq(&rates_before, 0.0), "state untouched");
        assert!(c.prev_move.approx_eq(&prev_move_before, 0.0));
        // The controller keeps working normally afterwards.
        let _ = c.step(&Vector::from_slice(&[0.4, 0.4])).unwrap();
    }

    #[test]
    fn reset_clears_momentum_and_restarts_from_given_rates() {
        let mut c = simple_controller();
        for _ in 0..10 {
            let _ = c.step(&Vector::from_slice(&[0.2, 0.2])).unwrap();
        }
        assert!(c.prev_move.max_abs() > 0.0 || !c.warm_rate.is_empty() || !c.warm_util.is_empty());
        let restart = Vector::from_slice(&[1e9, 1e9, 1e9]); // clamped to Rmax
        c.reset(&restart);
        assert_eq!(c.prev_move.max_abs(), 0.0);
        assert!(c.warm_util.is_empty() && c.warm_rate.is_empty());
        let set = workloads::simple();
        for (t, task) in set.tasks().iter().enumerate() {
            assert!((c.rates()[t] - task.rate_max()).abs() < 1e-12);
        }
        assert_eq!(c.last_step_info(), MpcStepInfo::default());
    }

    #[test]
    fn online_set_point_change() {
        let mut c = simple_controller();
        // Converge to the default set points against the model first.
        let set = workloads::simple();
        let f = set.allocation_matrix();
        let mut u = set.estimated_utilization(&set.initial_rates());
        let mut prev = c.rates().clone();
        for _ in 0..50 {
            let r = c.step(&u).unwrap();
            u = &u + &f.mul_vec(&(&r - &prev));
            prev = r;
        }
        // Lower the set point on P1 (overload-protection scenario §3.3).
        c.set_set_points(Vector::from_slice(&[0.5, 0.828]));
        for _ in 0..80 {
            let r = c.step(&u).unwrap();
            u = &u + &f.mul_vec(&(&r - &prev));
            prev = r;
        }
        assert!(
            (u[0] - 0.5).abs() < 1e-2,
            "P1 must track the new set point, got {}",
            u[0]
        );
    }

    fn medium_controller() -> MpcController {
        let set = workloads::medium();
        let b = rms_set_points(&set);
        MpcController::new(&set, b, MpcConfig::medium()).unwrap()
    }

    fn rate_bits(c: &MpcController) -> Vec<u64> {
        c.rates().iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn retain_tasks_matches_full_rebuild_bit_for_bit() {
        let mut c = medium_controller();
        let n = c.num_processors();
        // Accumulate genuine warm state and momentum first.
        for k in 0..12 {
            let u = Vector::filled(n, 0.3 + 0.05 * (k % 5) as f64);
            let _ = c.step(&u).unwrap();
        }
        let m = c.num_tasks();
        let mut keep = vec![true; m];
        keep[1] = false;
        keep[m - 1] = false;
        let (mut inc, update) = c.retain_tasks(&keep).unwrap();
        assert_eq!(update, ModelUpdate::Incremental);
        let mut reb = c.retain_tasks_rebuilt(&keep).unwrap();
        assert_eq!(inc.num_tasks(), m - 2);
        assert_eq!(rate_bits(&inc), rate_bits(&reb));
        // The next solves — warm-started from the migrated active sets —
        // must agree bit for bit, period after period.
        for k in 0..8 {
            let u = Vector::filled(n, 0.25 + 0.07 * (k % 4) as f64);
            let a = inc.step(&u).unwrap();
            let b = reb.step(&u).unwrap();
            let bits = |v: &Vector| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
            assert_eq!(bits(&a), bits(&b), "period {k} diverged");
            assert_eq!(inc.last_step_info(), reb.last_step_info());
        }
    }

    #[test]
    fn retained_controller_equals_fresh_model_after_reset() {
        // Dropping tasks and then resetting must behave exactly like a
        // controller built from the shrunk model directly.
        let mut c = medium_controller();
        let n = c.num_processors();
        for _ in 0..6 {
            let _ = c.step(&Vector::filled(n, 0.4)).unwrap();
        }
        let m = c.num_tasks();
        let mut keep = vec![true; m];
        keep[0] = false;
        let (mut shrunk, _) = c.retain_tasks(&keep).unwrap();

        let f = c.allocation();
        let f_sub = Matrix::from_fn(n, m - 1, |r, j| f[(r, j + 1)]);
        let sub = |v: &Vector| Vector::from_slice(&(1..m).map(|t| v[t]).collect::<Vec<f64>>());
        let mut fresh = MpcController::from_model(
            f_sub,
            c.set_points().clone(),
            sub(&c.rmin),
            sub(&c.rmax),
            sub(c.rates()),
            MpcConfig::medium(),
        )
        .unwrap();
        let restart = fresh.rates().clone();
        shrunk.reset(&restart);
        fresh.reset(&restart);
        for k in 0..6 {
            let u = Vector::filled(n, 0.3 + 0.1 * (k % 3) as f64);
            let a = shrunk.step(&u).unwrap();
            let b = fresh.step(&u).unwrap();
            assert_eq!(
                a.iter().map(|x| x.to_bits()).collect::<Vec<u64>>(),
                b.iter().map(|x| x.to_bits()).collect::<Vec<u64>>()
            );
        }
    }

    #[test]
    fn add_task_grows_to_the_full_model() {
        // Start from medium minus its last task, add it back, and compare
        // against the never-shrunk controller after a common reset.
        let set = workloads::medium();
        let b = rms_set_points(&set);
        let f = set.allocation_matrix();
        let n = f.rows();
        let m = f.cols();
        let f_sub = Matrix::from_fn(n, m - 1, |r, j| f[(r, j)]);
        let head = |v: &Vector| Vector::from_slice(&(0..m - 1).map(|t| v[t]).collect::<Vec<f64>>());
        let (rmin, rmax) = set.rate_bounds();
        let r0 = set.initial_rates();
        let small = MpcController::from_model(
            f_sub,
            b.clone(),
            head(&rmin),
            head(&rmax),
            head(&r0),
            MpcConfig::medium(),
        )
        .unwrap();
        let col: Vec<f64> = (0..n).map(|r| f[(r, m - 1)]).collect();
        let (mut grown, update) = small
            .add_task(&col, rmin[m - 1], rmax[m - 1], r0[m - 1])
            .unwrap();
        assert_eq!(update, ModelUpdate::Rebuild);
        assert_eq!(grown.num_tasks(), m);

        let mut full = MpcController::new(&set, b, MpcConfig::medium()).unwrap();
        let restart = full.rates().clone();
        grown.reset(&restart);
        full.reset(&restart);
        for k in 0..6 {
            let u = Vector::filled(n, 0.35 + 0.08 * (k % 4) as f64);
            let a = grown.step(&u).unwrap();
            let bb = full.step(&u).unwrap();
            assert_eq!(
                a.iter().map(|x| x.to_bits()).collect::<Vec<u64>>(),
                bb.iter().map(|x| x.to_bits()).collect::<Vec<u64>>()
            );
        }
    }

    #[test]
    fn add_task_migrates_warm_state_and_keeps_solving() {
        let mut c = simple_controller();
        for _ in 0..10 {
            let _ = c.step(&Vector::from_slice(&[0.9, 0.9])).unwrap();
        }
        let warm_before = c.warm_util.len() + c.warm_rate.len();
        let (mut grown, _) = c.add_task(&[10.0, 10.0], 0.002, 0.03, 0.01).unwrap();
        assert_eq!(
            warm_before,
            grown.warm_util.len() + grown.warm_rate.len(),
            "growth keeps every surviving warm index"
        );
        // The grown controller keeps converging against its own model.
        let f = grown.allocation().clone();
        let b = grown.set_points().clone();
        let mut u = Vector::from_slice(&[0.9, 0.9]);
        let mut prev = grown.rates().clone();
        for _ in 0..80 {
            let r = grown.step(&u).unwrap();
            u = &u + &f.mul_vec(&(&r - &prev));
            prev = r;
        }
        assert!((&u - &b).max_abs() < 1e-2, "u = {u}, B = {b}");
    }

    #[test]
    fn membership_input_validation() {
        let c = simple_controller();
        assert!(matches!(
            c.retain_tasks(&[true, false]),
            Err(ControlError::DimensionMismatch(_))
        ));
        assert!(matches!(
            c.retain_tasks(&[false, false, false]),
            Err(ControlError::DimensionMismatch(_))
        ));
        assert!(matches!(
            c.add_task(&[1.0], 0.001, 0.03, 0.01),
            Err(ControlError::DimensionMismatch(_))
        ));
        assert!(matches!(
            c.add_task(&[1.0, f64::NAN], 0.001, 0.03, 0.01),
            Err(ControlError::InvalidSample(_))
        ));
        assert!(matches!(
            c.add_task(&[1.0, 1.0], 0.03, 0.001, 0.01),
            Err(ControlError::InvalidSample(_))
        ));
    }

    #[test]
    fn retain_all_is_equivalent_to_the_original() {
        let mut c = simple_controller();
        let _ = c.step(&Vector::from_slice(&[0.4, 0.4])).unwrap();
        let (mut same, update) = c.retain_tasks(&[true, true, true]).unwrap();
        assert_eq!(update, ModelUpdate::Incremental);
        let u = Vector::from_slice(&[0.6, 0.2]);
        let a = c.step(&u).unwrap();
        let b = same.step(&u).unwrap();
        assert_eq!(
            a.iter().map(|x| x.to_bits()).collect::<Vec<u64>>(),
            b.iter().map(|x| x.to_bits()).collect::<Vec<u64>>()
        );
    }

    mod properties {
        use super::*;
        use eucon_tasks::workloads::RandomWorkload;
        use proptest::prelude::*;

        proptest! {
            // For any generated workload and any measured utilization,
            // the controller returns in-bounds rates and never errors.
            #[test]
            fn controller_is_total_and_in_bounds(
                seed in 0u64..40,
                u_scale in 0.0..1.0f64,
            ) {
                let set = RandomWorkload::new(3, 7).seed(seed).generate();
                let b = rms_set_points(&set);
                let mut c = MpcController::new(&set, b, MpcConfig::medium()).unwrap();
                for step in 0..5 {
                    let u = Vector::filled(3, (u_scale + 0.13 * step as f64) % 1.0);
                    let r = c.step(&u).unwrap();
                    for (t, task) in set.tasks().iter().enumerate() {
                        prop_assert!(r[t] >= task.rate_min() - 1e-10);
                        prop_assert!(r[t] <= task.rate_max() + 1e-10);
                    }
                }
            }

            // Monotone response: measuring *lower* utilization never
            // produces *lower* rates (from identical controller state).
            #[test]
            fn response_is_monotone_in_error(
                seed in 0u64..20,
                u_lo in 0.1..0.4f64,
                gap in 0.05..0.4f64,
            ) {
                let set = RandomWorkload::new(2, 5).seed(seed).generate();
                let b = rms_set_points(&set);
                let mk = || MpcController::new(&set, b.clone(), MpcConfig::simple()).unwrap();
                let mut c_lo = mk();
                let mut c_hi = mk();
                let r_lo = c_lo.step(&Vector::filled(2, u_lo)).unwrap();
                let r_hi = c_hi.step(&Vector::filled(2, u_lo + gap)).unwrap();
                prop_assert!(
                    r_lo.sum() >= r_hi.sum() - 1e-9,
                    "lower utilization must command at least as much rate"
                );
            }
        }
    }

    #[test]
    fn medium_controller_converges_on_model() {
        let set = workloads::medium();
        let b = rms_set_points(&set);
        let f = set.allocation_matrix();
        let mut c = MpcController::new(&set, b.clone(), MpcConfig::medium()).unwrap();
        let mut u = set.estimated_utilization(&set.initial_rates()).scale(0.5);
        let mut prev = c.rates().clone();
        for _ in 0..100 {
            let r = c.step(&u).unwrap();
            u = &u + &f.mul_vec(&(&r - &prev)).scale(0.5);
            prev = r;
        }
        assert!((&u - &b).max_abs() < 1e-2, "u = {u}");
    }
}
