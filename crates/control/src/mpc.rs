//! The EUCON model-predictive controller.

use eucon_math::{Matrix, Vector};
use eucon_qp::{LsqSolution, PreparedLsq, QpError};
use eucon_tasks::TaskSet;

use crate::prediction::{constraint_matrix, constraint_rhs_into, Predictor};
use crate::{ControlError, ControllerTelemetry, MpcConfig, RateController};

/// Tiny Tikhonov weight keeping the least-squares problem strictly convex
/// even when the tracking matrix is rank deficient and the control penalty
/// is disabled.
const REGULARIZATION: f64 = 1e-9;

/// Diagnostics of the most recent controller invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MpcStepInfo {
    /// Active-set iterations spent by the QP solver.
    pub qp_iterations: usize,
    /// Whether the hard utilization constraints had to be dropped because
    /// the constrained problem was infeasible this period.
    pub relaxed_utilization: bool,
    /// Residual norm of the least-squares objective at the optimum.
    pub residual: f64,
    /// The committed solve started from a non-empty warm-started active
    /// set (false on the first period and right after a reset).
    pub warm_start: bool,
    /// The warm-started attempt failed and the problem was re-solved
    /// cold before the verdict was believed.
    pub cold_retry: bool,
    /// Constraints active at the optimum (constraint saturation).
    pub active_set_size: usize,
    /// Symmetric difference between this period's optimal active set and
    /// the previous period's; 0 once the loop has settled.
    pub active_churn: usize,
}

/// The EUCON MIMO model-predictive controller (paper §6.1).
///
/// Once per sampling period, [`MpcController::step`] receives the measured
/// utilization vector `u(k)` and produces new task rates by solving the
/// constrained least-squares problem
///
/// ```text
/// min  Σᵢ ‖u(k+i|k) − ref(k+i|k)‖²_Q + Σᵢ ‖Δr(k+i|k) − Δr(k+i−1|k)‖²_R
/// s.t. u(k+i|k) ≤ B          (utilization constraints, eq. 1)
///      Rmin ≤ r(k+i|k) ≤ Rmax (rate constraints, eq. 2)
/// ```
///
/// over the approximate model `u(k+1) = u(k) + F·Δr(k)` (the controller
/// assumes unit utilization gains, `G = I`; robustness to `G ≠ I` is what
/// the stability analysis quantifies).  Only the first move of the optimal
/// trajectory is applied (receding horizon).
///
/// If the hard utilization constraints make the problem infeasible (e.g. a
/// severe overload that rate adaptation cannot remove within one step),
/// the controller retries without them — the tracking objective still
/// drives utilization toward the set points, which mirrors `lsqlin`
/// practice and keeps the loop alive; the event is reported in
/// [`MpcController::last_step_info`].
///
/// # Example
///
/// ```
/// use eucon_control::{MpcConfig, MpcController, RateController};
/// use eucon_math::Vector;
/// use eucon_tasks::{rms_set_points, workloads};
///
/// # fn main() -> Result<(), eucon_control::ControlError> {
/// let simple = workloads::simple();
/// let b = rms_set_points(&simple);
/// let mut ctrl = MpcController::new(&simple, b, MpcConfig::simple())?;
/// // Underutilized system → the controller raises rates.
/// let before = ctrl.rates().sum();
/// let after = ctrl.step(&Vector::from_slice(&[0.4, 0.4]))?.sum();
/// assert!(after > before);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MpcController {
    f: Matrix,
    b: Vector,
    rmin: Vector,
    rmax: Vector,
    cfg: MpcConfig,
    pred: Predictor,
    rates: Vector,
    prev_move: Vector,
    last_info: MpcStepInfo,
    /// Amortized solver with the utilization rows (`None` when the config
    /// disables utilization constraints).
    solver_util: Option<PreparedLsq>,
    /// Amortized solver with rate rows only — the primary problem when
    /// utilization constraints are off, the infeasibility fallback
    /// otherwise.
    solver_rate: PreparedLsq,
    /// Per-period right-hand-side buffers, rewritten in place: the
    /// constraint matrices are fixed, only these change with `u` and `r`.
    h_util: Vector,
    h_rate: Vector,
    d_buf: Vector,
    /// Tracking-error scratch `u − B`, rewritten in place every period so
    /// the hot path never allocates.
    err_buf: Vector,
    /// Active sets of the previous period, used to warm-start the dual
    /// active-set solver.  In steady state the set is unchanged and the
    /// solve takes zero iterations.
    warm_util: Vec<usize>,
    warm_rate: Vec<usize>,
}

impl MpcController {
    /// Creates a controller for a task set, reading `F`, the rate bounds
    /// and the initial rates from the model.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::DimensionMismatch`] when `set_points` does
    /// not have one entry per processor.
    pub fn new(set: &TaskSet, set_points: Vector, cfg: MpcConfig) -> Result<Self, ControlError> {
        let (rmin, rmax) = set.rate_bounds();
        Self::from_model(
            set.allocation_matrix(),
            set_points,
            rmin,
            rmax,
            set.initial_rates(),
            cfg,
        )
    }

    /// Creates a controller from an explicit model (allocation matrix,
    /// set points, rate bounds and initial rates).
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::DimensionMismatch`] on inconsistent sizes.
    pub fn from_model(
        f: Matrix,
        set_points: Vector,
        rmin: Vector,
        rmax: Vector,
        initial_rates: Vector,
        cfg: MpcConfig,
    ) -> Result<Self, ControlError> {
        let n = f.rows();
        let m = f.cols();
        if set_points.len() != n {
            return Err(ControlError::DimensionMismatch(format!(
                "{} set points for {n} processors",
                set_points.len()
            )));
        }
        if rmin.len() != m || rmax.len() != m || initial_rates.len() != m {
            return Err(ControlError::DimensionMismatch(format!(
                "rate vectors must have {m} entries"
            )));
        }
        cfg.assert_valid();
        let pred = Predictor::new(&f, &cfg);

        // Everything that depends only on the model is computed here, once:
        // the constraint matrices, the Hessian CᵀC + εI, its Cholesky
        // factor and the per-constraint back-solves.  `step` only rewrites
        // right-hand sides.
        let g_rate = constraint_matrix(&f, &cfg, false);
        let h_rate = Vector::zeros(g_rate.rows());
        let solver_rate = PreparedLsq::new(pred.c.clone(), g_rate, REGULARIZATION)
            .map_err(ControlError::Optimization)?;
        let (solver_util, h_util) = if cfg.utilization_constraints {
            let g_util = constraint_matrix(&f, &cfg, true);
            let h_util = Vector::zeros(g_util.rows());
            let solver = PreparedLsq::new(pred.c.clone(), g_util, REGULARIZATION)
                .map_err(ControlError::Optimization)?;
            (Some(solver), h_util)
        } else {
            (None, Vector::zeros(0))
        };
        let d_buf = Vector::zeros(pred.c.rows());
        let err_buf = Vector::zeros(n);

        Ok(MpcController {
            f,
            b: set_points,
            rmin,
            rmax,
            cfg,
            pred,
            rates: initial_rates,
            prev_move: Vector::zeros(m),
            last_info: MpcStepInfo::default(),
            solver_util,
            solver_rate,
            h_util,
            h_rate,
            d_buf,
            err_buf,
            warm_util: Vec::new(),
            warm_rate: Vec::new(),
        })
    }

    /// The utilization set points `B`.
    pub fn set_points(&self) -> &Vector {
        &self.b
    }

    /// Replaces the utilization set points (they can be changed online,
    /// paper §3.3).
    ///
    /// # Panics
    ///
    /// Panics if the length changes.
    pub fn set_set_points(&mut self, b: Vector) {
        assert_eq!(b.len(), self.b.len(), "set-point dimension cannot change");
        self.b = b;
    }

    /// The controller configuration.
    pub fn config(&self) -> &MpcConfig {
        &self.cfg
    }

    /// Diagnostics of the most recent [`MpcController::step`].
    pub fn last_step_info(&self) -> MpcStepInfo {
        self.last_info
    }

    /// Lower bandwidth detected in the MPC Hessian `CᵀC + εI` by the
    /// amortized solver's Cholesky factorization.
    ///
    /// The horizon structure makes the Hessian block banded: move blocks
    /// `j₁, j₂` only couple through prediction steps that apply both, and
    /// within a block tasks only couple when the allocation matrix puts
    /// them on a shared processor.  Anything below `num_vars − 1` means
    /// the banded `O(n·b²)` factor/solve paths are active.
    pub fn hessian_bandwidth(&self) -> usize {
        self.solver_rate.hessian_bandwidth()
    }

    /// Computes the control input `Δr(k)` for the measured utilization
    /// `u(k)` and returns the new rate vector `r(k) = r(k−1) + Δr(k)`.
    ///
    /// # Errors
    ///
    /// * [`ControlError::DimensionMismatch`] — `u` does not have one entry
    ///   per processor.
    /// * [`ControlError::InvalidSample`] — `u` contains a non-finite
    ///   entry.  Such a sample would corrupt the QP right-hand sides and,
    ///   through the recorded active set, every future warm-started
    ///   solve; the controller's state is left untouched instead.
    /// * [`ControlError::Optimization`] — the QP failed even after
    ///   dropping the utilization constraints (does not happen for valid
    ///   rate boxes, which are always feasible at `Δr = 0`).
    pub fn step(&mut self, u: &Vector) -> Result<Vector, ControlError> {
        self.step_in_place(u)?;
        Ok(self.rates.clone())
    }

    /// The allocation-free core of [`MpcController::step`]: commits the new
    /// rates into `self.rates` instead of returning a fresh vector.  All
    /// per-period right-hand sides and the tracking error are rewritten in
    /// long-lived scratch buffers (the QP solver still allocates its
    /// solution internally).
    pub(crate) fn step_in_place(&mut self, u: &Vector) -> Result<(), ControlError> {
        if u.len() != self.pred.n {
            return Err(ControlError::DimensionMismatch(format!(
                "{} utilization samples for {} processors",
                u.len(),
                self.pred.n
            )));
        }
        if let Some(p) = u.iter().position(|ui| !ui.is_finite()) {
            return Err(ControlError::InvalidSample(format!(
                "u[{p}] = {} is not finite",
                u[p]
            )));
        }
        for i in 0..u.len() {
            self.err_buf[i] = u[i] - self.b[i];
        }
        self.pred
            .rhs_into(&self.err_buf, &self.prev_move, &mut self.d_buf);

        let mut relaxed = false;
        let primary = match &self.solver_util {
            Some(solver) => {
                constraint_rhs_into(
                    &self.f,
                    &self.cfg,
                    &self.rates,
                    &self.rmin,
                    &self.rmax,
                    u,
                    &self.b,
                    true,
                    &mut self.h_util,
                );
                Some(solve_amortized(
                    solver,
                    &self.d_buf,
                    &self.h_util,
                    &mut self.warm_util,
                ))
            }
            None => None,
        };
        let (solution, stats) = match primary {
            Some(Ok(sol)) => sol,
            Some(Err(QpError::Infeasible)) | None => {
                relaxed = self.solver_util.is_some();
                constraint_rhs_into(
                    &self.f,
                    &self.cfg,
                    &self.rates,
                    &self.rmin,
                    &self.rmax,
                    u,
                    &self.b,
                    false,
                    &mut self.h_rate,
                );
                solve_amortized(
                    &self.solver_rate,
                    &self.d_buf,
                    &self.h_rate,
                    &mut self.warm_rate,
                )
                .map_err(ControlError::Optimization)?
            }
            Some(Err(e)) => return Err(ControlError::Optimization(e)),
        };

        // Receding horizon: apply only the first move (the leading `m`
        // entries of the optimal move trajectory), in place.
        let m = self.pred.m;
        for t in 0..m {
            let nr = (self.rates[t] + solution.x[t]).clamp(self.rmin[t], self.rmax[t]);
            self.prev_move[t] = nr - self.rates[t];
            self.rates[t] = nr;
        }
        self.last_info = MpcStepInfo {
            qp_iterations: solution.iterations,
            relaxed_utilization: relaxed,
            residual: solution.residual,
            warm_start: stats.warm_start,
            cold_retry: stats.cold_retry,
            active_set_size: solution.active.len(),
            active_churn: stats.active_churn,
        };
        Ok(())
    }
}

/// Warm-start bookkeeping of one amortized solve (observability: every
/// period's warm/cold outcome reaches telemetry through
/// [`MpcStepInfo`]).
#[derive(Debug, Clone, Copy, Default)]
struct SolveStats {
    warm_start: bool,
    cold_retry: bool,
    active_churn: usize,
}

/// One amortized solve: warm-start from the previous active set, retry
/// cold if the (extremely rare) warm path hits the iteration limit, and
/// record the new active set for the next period.
fn solve_amortized(
    solver: &PreparedLsq,
    d: &Vector,
    h: &Vector,
    warm: &mut Vec<usize>,
) -> Result<(LsqSolution, SolveStats), QpError> {
    let mut stats = SolveStats {
        warm_start: !warm.is_empty(),
        ..SolveStats::default()
    };
    let attempt = solver.solve_with(d, h, warm);
    let result = match attempt {
        // The warm start is only a heuristic: a stale active set can make
        // the dual iteration wander (iteration limit) or misreport
        // infeasibility from an ill-conditioned subproblem.  Any failure is
        // re-checked cold before the verdict is believed — feasibility
        // decisions must not depend on the previous period's guess.
        Err(_) if !warm.is_empty() => {
            stats.cold_retry = true;
            solver.solve_with(d, h, &[])
        }
        other => other,
    };
    let sol = result?;
    stats.active_churn = symmetric_difference(warm, &sol.active);
    warm.clear();
    warm.extend_from_slice(&sol.active);
    Ok((sol, stats))
}

/// Size of the symmetric difference of two small index sets (the active
/// sets stay tiny, so the quadratic scan beats sorting or hashing — and
/// allocates nothing).
fn symmetric_difference(a: &[usize], b: &[usize]) -> usize {
    let only_a = a.iter().filter(|x| !b.contains(x)).count();
    let only_b = b.iter().filter(|x| !a.contains(x)).count();
    only_a + only_b
}

impl RateController for MpcController {
    fn update(&mut self, u: &Vector) -> Result<(), ControlError> {
        self.step_in_place(u)
    }

    fn rates(&self) -> &Vector {
        &self.rates
    }

    fn name(&self) -> &'static str {
        "EUCON"
    }

    fn telemetry(&self) -> ControllerTelemetry {
        ControllerTelemetry {
            qp_iterations: self.last_info.qp_iterations,
            warm_start: self.last_info.warm_start,
            cold_retry: self.last_info.cold_retry,
            relaxed_utilization: self.last_info.relaxed_utilization,
            active_set_size: self.last_info.active_set_size,
            active_churn: self.last_info.active_churn,
            ..ControllerTelemetry::default()
        }
    }

    /// Discards all accumulated internal state — the previous move, the
    /// warm-start active sets and the step diagnostics — and restarts
    /// from `rates` (clamped into the rate box).  Used by supervisory
    /// wrappers to re-engage MPC after an outage without inheriting
    /// pre-fault momentum.
    fn reset(&mut self, rates: &Vector) {
        assert_eq!(rates.len(), self.pred.m, "one rate per task required");
        for t in 0..self.pred.m {
            self.rates[t] = rates[t].clamp(self.rmin[t], self.rmax[t]);
        }
        self.prev_move = Vector::zeros(self.pred.m);
        self.warm_util.clear();
        self.warm_rate.clear();
        self.last_info = MpcStepInfo::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eucon_tasks::{rms_set_points, workloads};

    fn simple_controller() -> MpcController {
        let set = workloads::simple();
        let b = rms_set_points(&set);
        MpcController::new(&set, b, MpcConfig::simple()).unwrap()
    }

    #[test]
    fn underutilization_raises_rates() {
        let mut c = simple_controller();
        let r0 = c.rates().clone();
        let r1 = c.step(&Vector::from_slice(&[0.3, 0.3])).unwrap();
        for t in 0..3 {
            assert!(r1[t] >= r0[t] - 1e-12, "task {t} rate should not drop");
        }
        assert!(r1.sum() > r0.sum());
    }

    #[test]
    fn overutilization_lowers_rates() {
        let mut c = simple_controller();
        let r0 = c.rates().clone();
        let r1 = c.step(&Vector::from_slice(&[1.0, 1.0])).unwrap();
        assert!(r1.sum() < r0.sum());
    }

    #[test]
    fn at_set_point_rates_barely_move() {
        let mut c = simple_controller();
        let b = c.set_points().clone();
        let r0 = c.rates().clone();
        let r1 = c.step(&b).unwrap();
        // With zero tracking error and zero previous move the optimum is
        // Δr = 0.
        assert!((&r1 - &r0).max_abs() < 1e-9);
    }

    #[test]
    fn rates_always_stay_in_bounds() {
        let mut c = simple_controller();
        for u in [[0.0, 0.0], [1.0, 1.0], [0.9, 0.1], [0.1, 0.9]] {
            let r = c.step(&Vector::from_slice(&u)).unwrap();
            let set = workloads::simple();
            for (t, task) in set.tasks().iter().enumerate() {
                assert!(r[t] >= task.rate_min() - 1e-12);
                assert!(r[t] <= task.rate_max() + 1e-12);
            }
        }
    }

    #[test]
    fn model_convergence_under_unit_gain() {
        // Iterate the controller against its own model (G = I): u must
        // converge to B.
        let set = workloads::simple();
        let b = rms_set_points(&set);
        let f = set.allocation_matrix();
        let mut c = MpcController::new(&set, b.clone(), MpcConfig::simple()).unwrap();
        let mut u = set.estimated_utilization(&set.initial_rates());
        let mut prev_rates = c.rates().clone();
        for _ in 0..60 {
            let rates = c.step(&u).unwrap();
            let dr = &rates - &prev_rates;
            u = &u + &f.mul_vec(&dr);
            prev_rates = rates;
        }
        assert!((&u - &b).max_abs() < 1e-3, "u = {u}, B = {b}");
    }

    #[test]
    fn model_convergence_with_gain_two() {
        // G = 2·I is inside the stability region: still converges.
        let set = workloads::simple();
        let b = rms_set_points(&set);
        let f = set.allocation_matrix();
        let mut c = MpcController::new(&set, b.clone(), MpcConfig::simple()).unwrap();
        // Actual utilization responds twice as strongly as estimated.
        let mut u = set.estimated_utilization(&set.initial_rates()).scale(2.0);
        let mut prev_rates = c.rates().clone();
        for _ in 0..120 {
            let rates = c.step(&u).unwrap();
            let dr = &rates - &prev_rates;
            u = &u + &f.mul_vec(&dr).scale(2.0);
            prev_rates = rates;
        }
        assert!((&u - &b).max_abs() < 1e-2, "u = {u}, B = {b}");
    }

    #[test]
    fn utilization_constraint_respected_in_prediction() {
        // Start exactly at the set point; the predicted utilization after
        // the move must not exceed B (model-wise).
        let set = workloads::simple();
        let b = rms_set_points(&set);
        let f = set.allocation_matrix();
        let mut c = MpcController::new(&set, b.clone(), MpcConfig::simple()).unwrap();
        let u = Vector::from_slice(&[0.5, 0.828]);
        let r0 = c.rates().clone();
        let r1 = c.step(&u).unwrap();
        let du = f.mul_vec(&(&r1 - &r0));
        assert!(
            u[1] + du[1] <= b[1] + 1e-6,
            "P2 must not be pushed past its set point"
        );
    }

    #[test]
    fn infeasible_overload_falls_back_gracefully() {
        // Overloaded processors with rates already at Rmin: utilization
        // constraints cannot be met in one step; the controller must relax
        // them instead of failing.
        let set = workloads::simple();
        let b = rms_set_points(&set);
        let mut c = MpcController::new(&set, b, MpcConfig::simple()).unwrap();
        // Drive rates to the floor first.
        for _ in 0..50 {
            let _ = c.step(&Vector::from_slice(&[1.0, 1.0])).unwrap();
        }
        let r = c.step(&Vector::from_slice(&[1.0, 1.0])).unwrap();
        assert!(c.last_step_info().relaxed_utilization);
        let set = workloads::simple();
        for (t, task) in set.tasks().iter().enumerate() {
            assert!(
                (r[t] - task.rate_min()).abs() < 1e-9,
                "rates pinned at Rmin"
            );
        }
    }

    #[test]
    fn steady_state_step_reports_zero_qp_iterations() {
        // Regression for the amortized hot path: once the loop settles —
        // same measurement, same rates, zero previous move — the previous
        // period's active set warm-starts the solver to the exact optimum
        // and the dual iteration has nothing left to do.
        let set = workloads::simple();
        let b = rms_set_points(&set);
        let mut c = MpcController::new(&set, b, MpcConfig::simple()).unwrap();
        // Persistent overload pins every rate at Rmin within a few
        // periods; from then on each period solves the identical QP with
        // a non-empty, unchanged active set.
        let u = Vector::from_slice(&[1.0, 1.0]);
        for _ in 0..50 {
            let _ = c.step(&u).unwrap();
        }
        let before = c.rates().clone();
        let _ = c.step(&u).unwrap();
        assert_eq!(
            c.last_step_info().qp_iterations,
            0,
            "steady-state solve must be fully warm-started"
        );
        assert!(
            c.rates().approx_eq(&before, 1e-12),
            "rates must be at a fixed point"
        );
    }

    #[test]
    fn dimension_mismatch_detected() {
        let set = workloads::simple();
        let err = MpcController::new(&set, Vector::zeros(3), MpcConfig::simple());
        assert!(matches!(
            err.unwrap_err(),
            ControlError::DimensionMismatch(_)
        ));

        let mut c = simple_controller();
        let err = c.step(&Vector::zeros(3));
        assert!(matches!(
            err.unwrap_err(),
            ControlError::DimensionMismatch(_)
        ));
    }

    #[test]
    fn non_finite_samples_rejected_without_state_damage() {
        let mut c = simple_controller();
        // Establish a warm active set and a previous move.
        let _ = c.step(&Vector::from_slice(&[0.4, 0.4])).unwrap();
        let rates_before = c.rates().clone();
        let prev_move_before = c.prev_move.clone();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = c.step(&Vector::from_slice(&[0.4, bad])).unwrap_err();
            assert!(matches!(err, ControlError::InvalidSample(_)), "got {err:?}");
            assert!(err.to_string().contains("u[1]"));
        }
        assert!(c.rates().approx_eq(&rates_before, 0.0), "state untouched");
        assert!(c.prev_move.approx_eq(&prev_move_before, 0.0));
        // The controller keeps working normally afterwards.
        let _ = c.step(&Vector::from_slice(&[0.4, 0.4])).unwrap();
    }

    #[test]
    fn reset_clears_momentum_and_restarts_from_given_rates() {
        let mut c = simple_controller();
        for _ in 0..10 {
            let _ = c.step(&Vector::from_slice(&[0.2, 0.2])).unwrap();
        }
        assert!(c.prev_move.max_abs() > 0.0 || !c.warm_rate.is_empty() || !c.warm_util.is_empty());
        let restart = Vector::from_slice(&[1e9, 1e9, 1e9]); // clamped to Rmax
        c.reset(&restart);
        assert_eq!(c.prev_move.max_abs(), 0.0);
        assert!(c.warm_util.is_empty() && c.warm_rate.is_empty());
        let set = workloads::simple();
        for (t, task) in set.tasks().iter().enumerate() {
            assert!((c.rates()[t] - task.rate_max()).abs() < 1e-12);
        }
        assert_eq!(c.last_step_info(), MpcStepInfo::default());
    }

    #[test]
    fn online_set_point_change() {
        let mut c = simple_controller();
        // Converge to the default set points against the model first.
        let set = workloads::simple();
        let f = set.allocation_matrix();
        let mut u = set.estimated_utilization(&set.initial_rates());
        let mut prev = c.rates().clone();
        for _ in 0..50 {
            let r = c.step(&u).unwrap();
            u = &u + &f.mul_vec(&(&r - &prev));
            prev = r;
        }
        // Lower the set point on P1 (overload-protection scenario §3.3).
        c.set_set_points(Vector::from_slice(&[0.5, 0.828]));
        for _ in 0..80 {
            let r = c.step(&u).unwrap();
            u = &u + &f.mul_vec(&(&r - &prev));
            prev = r;
        }
        assert!(
            (u[0] - 0.5).abs() < 1e-2,
            "P1 must track the new set point, got {}",
            u[0]
        );
    }

    mod properties {
        use super::*;
        use eucon_tasks::workloads::RandomWorkload;
        use proptest::prelude::*;

        proptest! {
            // For any generated workload and any measured utilization,
            // the controller returns in-bounds rates and never errors.
            #[test]
            fn controller_is_total_and_in_bounds(
                seed in 0u64..40,
                u_scale in 0.0..1.0f64,
            ) {
                let set = RandomWorkload::new(3, 7).seed(seed).generate();
                let b = rms_set_points(&set);
                let mut c = MpcController::new(&set, b, MpcConfig::medium()).unwrap();
                for step in 0..5 {
                    let u = Vector::filled(3, (u_scale + 0.13 * step as f64) % 1.0);
                    let r = c.step(&u).unwrap();
                    for (t, task) in set.tasks().iter().enumerate() {
                        prop_assert!(r[t] >= task.rate_min() - 1e-10);
                        prop_assert!(r[t] <= task.rate_max() + 1e-10);
                    }
                }
            }

            // Monotone response: measuring *lower* utilization never
            // produces *lower* rates (from identical controller state).
            #[test]
            fn response_is_monotone_in_error(
                seed in 0u64..20,
                u_lo in 0.1..0.4f64,
                gap in 0.05..0.4f64,
            ) {
                let set = RandomWorkload::new(2, 5).seed(seed).generate();
                let b = rms_set_points(&set);
                let mk = || MpcController::new(&set, b.clone(), MpcConfig::simple()).unwrap();
                let mut c_lo = mk();
                let mut c_hi = mk();
                let r_lo = c_lo.step(&Vector::filled(2, u_lo)).unwrap();
                let r_hi = c_hi.step(&Vector::filled(2, u_lo + gap)).unwrap();
                prop_assert!(
                    r_lo.sum() >= r_hi.sum() - 1e-9,
                    "lower utilization must command at least as much rate"
                );
            }
        }
    }

    #[test]
    fn medium_controller_converges_on_model() {
        let set = workloads::medium();
        let b = rms_set_points(&set);
        let f = set.allocation_matrix();
        let mut c = MpcController::new(&set, b.clone(), MpcConfig::medium()).unwrap();
        let mut u = set.estimated_utilization(&set.initial_rates()).scale(0.5);
        let mut prev = c.rates().clone();
        for _ in 0..100 {
            let r = c.step(&u).unwrap();
            u = &u + &f.mul_vec(&(&r - &prev)).scale(0.5);
            prev = r;
        }
        assert!((&u - &b).max_abs() < 1e-2, "u = {u}");
    }
}
