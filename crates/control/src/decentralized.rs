//! Decentralized utilization control — the paper's stated future work
//! ("we will develop decentralized control architecture to handle
//! large-scale distributed systems"), realized along the lines of the
//! authors' follow-on DEUCON work.
//!
//! Instead of one centralized MIMO controller, every processor runs a
//! *local* model-predictive controller:
//!
//! * each task is **owned** by the processor hosting its head subtask, so
//!   every rate is actuated by exactly one controller;
//! * a local controller models only the processors its owned tasks touch
//!   (its *neighborhood*) via the corresponding sub-block of the
//!   allocation matrix `F`;
//! * coupling to the rest of the system is handled by exchanging each
//!   controller's most recent move over the feedback lanes: before
//!   solving, a local controller folds its neighbors' last rate changes
//!   into its utilization measurements as a predicted disturbance.
//!
//! Per period, each local problem has `m_i ≪ m` variables, so the work
//! per node shrinks and no node needs global state — the scalability
//! property the paper's conclusion asks for.  The price is optimality:
//! neighbors are predicted by their previous move rather than coordinated
//! exactly, so convergence is slightly slower than the centralized
//! controller (quantified in the `ablation` binary).

use eucon_math::{Matrix, Vector};
use eucon_tasks::TaskSet;

use crate::{ControlError, ControllerTelemetry, MpcConfig, MpcController, RateController};

/// One per-processor controller and its bookkeeping.
#[derive(Debug, Clone)]
struct LocalController {
    /// Indices of the tasks this controller owns (head subtask here).
    owned: Vec<usize>,
    /// Processors affected by the owned tasks (the neighborhood), as
    /// global indices; the first entries drive the local model rows.
    neighborhood: Vec<usize>,
    /// Local MPC over the `neighborhood × owned` sub-block of `F`.
    mpc: MpcController,
    /// Coupling from non-owned tasks into the neighborhood:
    /// `neighborhood × all-tasks` sub-block of `F` with owned columns
    /// zeroed.
    foreign: Matrix,
}

/// Decentralized EUCON: a team of local MPC controllers, one per
/// processor, coordinating through last-move exchange.
///
/// Implements [`RateController`] and is a drop-in replacement for the
/// centralized [`MpcController`] in the closed loop.
///
/// # Example
///
/// ```
/// use eucon_control::{DecentralizedController, MpcConfig, RateController};
/// use eucon_math::Vector;
/// use eucon_tasks::{rms_set_points, workloads};
///
/// # fn main() -> Result<(), eucon_control::ControlError> {
/// let set = workloads::medium();
/// let b = rms_set_points(&set);
/// let mut ctrl = DecentralizedController::new(&set, b, MpcConfig::medium())?;
/// ctrl.update(&Vector::from_slice(&[0.4, 0.4, 0.4, 0.4]))?;
/// assert_eq!(ctrl.rates().len(), 12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DecentralizedController {
    locals: Vec<LocalController>,
    rates: Vector,
    last_moves: Vector,
    num_processors: usize,
    /// For each processor, how many local controllers can actuate it
    /// (own a task with a subtask there).  Tracking errors are split by
    /// this count so the team's collective correction sums to the needed
    /// one instead of multiplying with team size.
    actuator_count: Vec<usize>,
}

impl DecentralizedController {
    /// Builds the controller team for a task set.
    ///
    /// Task ownership follows the head-subtask rule; processors that own
    /// no tasks run no controller (their utilization is still regulated
    /// by the owners of the tasks crossing them).
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::DimensionMismatch`] when `set_points` does
    /// not have one entry per processor, and propagates local-controller
    /// construction failures.
    pub fn new(set: &TaskSet, set_points: Vector, cfg: MpcConfig) -> Result<Self, ControlError> {
        let n = set.num_processors();
        let m = set.num_tasks();
        if set_points.len() != n {
            return Err(ControlError::DimensionMismatch(format!(
                "{} set points for {n} processors",
                set_points.len()
            )));
        }
        let f = set.allocation_matrix();
        let (rmin, rmax) = set.rate_bounds();
        let r0 = set.initial_rates();

        // Local controllers run with *soft* utilization constraints: a
        // hard local `u ≤ B` deadlocks cross-controller rebalancing (a
        // task crossing a saturated processor can never be raised, and
        // the saturated processor's owner sees zero error so never makes
        // room).  The tracking objective still drives every processor to
        // its set point; constraint satisfaction emerges at the team
        // level.  Measured on 16×48 systems: worst steady-state error
        // 0.29 with hard local constraints vs 0.0004 with soft ones.
        let local_cfg = cfg.clone().utilization_constraints(false);

        let mut locals = Vec::new();
        for p in 0..n {
            let owned: Vec<usize> = (0..m)
                .filter(|&j| set.tasks()[j].subtasks()[0].processor.0 == p)
                .collect();
            if owned.is_empty() {
                continue;
            }
            // Neighborhood: every processor touched by an owned task.
            let mut neighborhood: Vec<usize> = Vec::new();
            for &j in &owned {
                for s in set.tasks()[j].subtasks() {
                    if !neighborhood.contains(&s.processor.0) {
                        neighborhood.push(s.processor.0);
                    }
                }
            }
            neighborhood.sort_unstable();

            // Local model: rows = neighborhood, cols = owned tasks.
            let f_local = Matrix::from_fn(neighborhood.len(), owned.len(), |r, c| {
                f[(neighborhood[r], owned[c])]
            });
            let b_local = Vector::from_iter(neighborhood.iter().map(|&q| set_points[q]));
            let mpc = MpcController::from_model(
                f_local,
                b_local,
                Vector::from_iter(owned.iter().map(|&j| rmin[j])),
                Vector::from_iter(owned.iter().map(|&j| rmax[j])),
                Vector::from_iter(owned.iter().map(|&j| r0[j])),
                local_cfg.clone(),
            )?;

            // Foreign coupling: F restricted to the neighborhood rows,
            // owned columns zeroed.
            let foreign = Matrix::from_fn(neighborhood.len(), m, |r, c| {
                if owned.contains(&c) {
                    0.0
                } else {
                    f[(neighborhood[r], c)]
                }
            });

            locals.push(LocalController {
                owned,
                neighborhood,
                mpc,
                foreign,
            });
        }

        let mut actuator_count = vec![0usize; n];
        for local in &locals {
            for &q in &local.neighborhood {
                actuator_count[q] += 1;
            }
        }
        for c in &mut actuator_count {
            *c = (*c).max(1);
        }

        Ok(DecentralizedController {
            locals,
            rates: r0,
            last_moves: Vector::zeros(m),
            num_processors: n,
            actuator_count,
        })
    }

    /// Number of local controllers in the team.
    pub fn num_controllers(&self) -> usize {
        self.locals.len()
    }

    /// Largest local problem size (owned tasks), a proxy for per-node
    /// cost.
    pub fn max_local_tasks(&self) -> usize {
        self.locals.iter().map(|l| l.owned.len()).max().unwrap_or(0)
    }

    /// Owned-task count of local controller `i`, in sweep order.
    pub fn local_tasks(&self, i: usize) -> usize {
        self.locals[i].owned.len()
    }

    /// Detected Hessian bandwidth of each local MPC, in sweep order —
    /// the probe the banded-Cholesky regression tests read.  Anything
    /// below `2·local_tasks(i) − 1` means that node's factor and solves
    /// run the banded `O(n·b²)` loops.
    pub fn hessian_bandwidths(&self) -> Vec<usize> {
        self.locals
            .iter()
            .map(|l| l.mpc.hessian_bandwidth())
            .collect()
    }
}

impl RateController for DecentralizedController {
    fn update(&mut self, u: &Vector) -> Result<(), ControlError> {
        if u.len() != self.num_processors {
            return Err(ControlError::DimensionMismatch(format!(
                "{} utilization samples for {} processors",
                u.len(),
                self.num_processors
            )));
        }
        // Stage the team's result and commit only after every local solve
        // succeeded — a mid-loop failure must not leave `rates` half
        // updated.
        let mut new_rates = self.rates.clone();
        // Gauss–Seidel coordination: controllers act in a fixed order;
        // each sees the moves already committed this period by earlier
        // controllers, and predicts the not-yet-acting ones by their
        // previous move.  (A Jacobi-style simultaneous exchange double
        // counts corrections and oscillates.)
        let mut predicted_moves = self.last_moves.clone();
        let mut new_moves = Vector::zeros(self.rates.len());
        let actuator_count = self.actuator_count.clone();
        for local in &mut self.locals {
            let disturbance = local.foreign.mul_vec(&predicted_moves);
            // Present each processor with its share of the tracking error
            // (splitting by actuator count prevents the team from
            // collectively over-correcting shared processors).
            let u_local =
                Vector::from_iter(local.neighborhood.iter().enumerate().map(|(r, &q)| {
                    let b = local.mpc.set_points()[r];
                    let err = u[q] + disturbance[r] - b;
                    (b + err / actuator_count[q] as f64).clamp(0.0, 1.0)
                }));
            local.mpc.step_in_place(&u_local)?;
            let r_local = local.mpc.rates();
            for (c, &j) in local.owned.iter().enumerate() {
                new_moves[j] = r_local[c] - self.rates[j];
                predicted_moves[j] = new_moves[j];
                new_rates[j] = r_local[c];
            }
        }
        self.last_moves = new_moves;
        self.rates = new_rates;
        Ok(())
    }

    fn rates(&self) -> &Vector {
        &self.rates
    }

    fn name(&self) -> &'static str {
        "DEUCON"
    }

    fn telemetry(&self) -> ControllerTelemetry {
        // Aggregate across the per-processor local MPCs: iteration and
        // active-set counts add up, warm-start / retry / relaxation flags
        // report "any local did this" — the period is only as clean as its
        // worst local solve.
        let mut t = ControllerTelemetry::default();
        for local in &self.locals {
            let lt = local.mpc.telemetry();
            t.qp_iterations += lt.qp_iterations;
            t.active_set_size += lt.active_set_size;
            t.active_churn += lt.active_churn;
            t.warm_start |= lt.warm_start;
            t.cold_retry |= lt.cold_retry;
            t.relaxed_utilization |= lt.relaxed_utilization;
        }
        t
    }

    fn reset(&mut self, rates: &Vector) {
        assert_eq!(rates.len(), self.rates.len(), "one rate per task required");
        for local in &mut self.locals {
            let sub = Vector::from_iter(local.owned.iter().map(|&j| rates[j]));
            local.mpc.reset(&sub);
            // The local rate boxes may have clamped; read back the
            // authoritative values.
            for (c, &j) in local.owned.iter().enumerate() {
                self.rates[j] = local.mpc.rates()[c];
            }
        }
        self.last_moves = Vector::zeros(self.last_moves.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eucon_tasks::{rms_set_points, workloads};

    fn medium_controller() -> DecentralizedController {
        let set = workloads::medium();
        let b = rms_set_points(&set);
        DecentralizedController::new(&set, b, MpcConfig::medium()).unwrap()
    }

    #[test]
    fn ownership_partitions_tasks() {
        let set = workloads::medium();
        let ctrl = medium_controller();
        let mut seen = vec![false; set.num_tasks()];
        for local in &ctrl.locals {
            for &j in &local.owned {
                assert!(!seen[j], "task T{} owned twice", j + 1);
                seen[j] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every task must be owned");
    }

    #[test]
    fn neighborhoods_cover_owned_chains() {
        let set = workloads::medium();
        let ctrl = medium_controller();
        for local in &ctrl.locals {
            for &j in &local.owned {
                for s in set.tasks()[j].subtasks() {
                    assert!(
                        local.neighborhood.contains(&s.processor.0),
                        "chain of T{} leaves its controller's neighborhood",
                        j + 1
                    );
                }
            }
        }
    }

    #[test]
    fn local_problems_are_smaller_than_global() {
        let set = workloads::medium();
        let ctrl = medium_controller();
        assert!(ctrl.num_controllers() >= 2);
        assert!(
            ctrl.max_local_tasks() < set.num_tasks(),
            "decentralization must shrink the per-node problem"
        );
    }

    #[test]
    fn converges_on_the_model_like_the_centralized_controller() {
        // Iterate against the true linear model with gain 1.
        let set = workloads::medium();
        let b = rms_set_points(&set);
        let f = set.allocation_matrix();
        let mut ctrl = medium_controller();
        let mut u = set.estimated_utilization(&set.initial_rates()).scale(0.5);
        let mut prev = ctrl.rates().clone();
        for _ in 0..200 {
            ctrl.update(&u).unwrap();
            let r = ctrl.rates().clone();
            u = &u + &f.mul_vec(&(&r - &prev)).scale(0.5);
            prev = r;
        }
        assert!(
            (&u - &b).max_abs() < 0.02,
            "decentralized loop must converge on the model: u = {u}, B = {b}"
        );
    }

    #[test]
    fn rates_respect_bounds() {
        let set = workloads::medium();
        let mut ctrl = medium_controller();
        for _ in 0..30 {
            ctrl.update(&Vector::filled(4, 1.0)).unwrap();
            for (j, task) in set.tasks().iter().enumerate() {
                assert!(ctrl.rates()[j] >= task.rate_min() - 1e-12);
                assert!(ctrl.rates()[j] <= task.rate_max() + 1e-12);
            }
        }
    }

    #[test]
    fn dimension_mismatch_detected() {
        let set = workloads::medium();
        let b = rms_set_points(&set);
        assert!(matches!(
            DecentralizedController::new(&set, Vector::zeros(2), MpcConfig::medium()),
            Err(ControlError::DimensionMismatch(_))
        ));
        let mut ctrl = DecentralizedController::new(&set, b, MpcConfig::medium()).unwrap();
        assert!(matches!(
            ctrl.update(&Vector::zeros(9)),
            Err(ControlError::DimensionMismatch(_))
        ));
    }

    #[test]
    fn simple_workload_single_and_multi_owner() {
        // SIMPLE: T1 and T2 head on P1, T3 heads on P2 → two controllers.
        let set = workloads::simple();
        let b = rms_set_points(&set);
        let ctrl = DecentralizedController::new(&set, b, MpcConfig::simple()).unwrap();
        assert_eq!(ctrl.num_controllers(), 2);
        assert_eq!(ctrl.max_local_tasks(), 2);
    }

    #[test]
    fn name_distinguishes_from_centralized() {
        assert_eq!(medium_controller().name(), "DEUCON");
    }
}
