//! Error type for controllers.

use std::error::Error;
use std::fmt;

use eucon_math::MathError;
use eucon_qp::QpError;

/// Errors produced by the controllers in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ControlError {
    /// Inputs had inconsistent dimensions.
    DimensionMismatch(String),
    /// A utilization sample was rejected before reaching the optimizer
    /// (non-finite — a corrupted or dead monitor).  Feeding such a sample
    /// into the QP would poison the warm-started active set for every
    /// future period, so controllers refuse it up front.
    InvalidSample(String),
    /// The constrained optimization failed (including genuine
    /// infeasibility after all fallbacks).
    Optimization(QpError),
    /// A linear-algebra operation failed (stability analysis).
    Math(MathError),
    /// The controller cannot perform the requested operation — e.g. a
    /// runtime membership change on a controller without a plant model,
    /// or while a supervisory wrapper holds the loop in safe mode.
    Unsupported(String),
}

impl fmt::Display for ControlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControlError::DimensionMismatch(msg) => write!(f, "dimension mismatch: {msg}"),
            ControlError::InvalidSample(msg) => write!(f, "invalid utilization sample: {msg}"),
            ControlError::Optimization(e) => write!(f, "optimization failed: {e}"),
            ControlError::Math(e) => write!(f, "linear algebra failure: {e}"),
            ControlError::Unsupported(msg) => write!(f, "unsupported operation: {msg}"),
        }
    }
}

impl Error for ControlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ControlError::Optimization(e) => Some(e),
            ControlError::Math(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<QpError> for ControlError {
    fn from(e: QpError) -> Self {
        ControlError::Optimization(e)
    }
}

#[doc(hidden)]
impl From<MathError> for ControlError {
    fn from(e: MathError) -> Self {
        ControlError::Math(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ControlError::Optimization(QpError::Infeasible);
        assert!(e.to_string().contains("infeasible"));
        assert!(Error::source(&e).is_some());
        let e = ControlError::DimensionMismatch("x".into());
        assert!(Error::source(&e).is_none());
        let e = ControlError::InvalidSample("u[0] = NaN".into());
        assert!(e.to_string().contains("invalid utilization sample"));
        assert!(Error::source(&e).is_none());
        let e = ControlError::Unsupported("membership changes".into());
        assert!(e.to_string().contains("unsupported operation"));
        assert!(Error::source(&e).is_none());
    }
}
