//! Closed-loop stability analysis (paper §6.2).
//!
//! The controller is designed against the *approximate* model `u(k+1) =
//! u(k) + F·Δr(k)`, but the plant responds with unknown utilization gains:
//! `u(k+1) = u(k) + G·F·Δr(k)`, `G = diag(g₁ … g_n)`.  Following the
//! paper's three-step recipe:
//!
//! 1. derive the *unconstrained* MPC control law, which is linear:
//!    `Δr(k) = K_u·(u(k) − B) + K_d·Δr(k−1)`;
//! 2. substitute it into the true plant, giving the closed-loop
//!    utilization dynamics `u(k) = A(G)·u(k−1) + C` (paper eq. 10) with
//!    `A = I + G·F·K_u`;
//! 3. the system is stable iff every eigenvalue of `A(G)` lies strictly
//!    inside the unit circle.
//!
//! **Reproduction note.** For the SIMPLE configuration with the paper's
//! controller parameters (P = 2, M = 1, Tref/Ts = 4, unit weights) this
//! derivation yields a critical uniform gain of **6.51** under the
//! default hold-rate prediction convention (9.92 under the literal
//! eq.-12 hold-delta reading); the paper *reports* 5.95 but *measures*
//! divergence starting at 6.5 (its Figure 4) — our 6.51 matches the
//! measured boundary almost exactly.  No cost/prediction convention we
//! tried reproduces 5.95 analytically; EXPERIMENTS.md documents the
//! search.  All the paper's qualitative claims reproduce: large tolerance
//! to execution-time underestimation, stability preserved by longer
//! horizons (under hold-rate), and simulated divergence just above the
//! analytic bound.

use eucon_math::{spectral_radius, Matrix, Vector};

use crate::prediction::Predictor;
use crate::{ControlError, MpcConfig};

/// The linear unconstrained MPC control law
/// `Δr(k) = K_u·(u(k) − B) + K_d·Δr(k−1)`.
#[derive(Debug, Clone)]
pub struct ControlLaw {
    /// Gain from the tracking error (m × n).
    pub k_u: Matrix,
    /// Gain from the previous move (m × m); zero for the `Move` penalty.
    pub k_d: Matrix,
}

/// Derives the unconstrained control law for allocation matrix `f` under
/// `cfg` (step 1 of the paper's analysis).
///
/// # Errors
///
/// Returns [`ControlError::Math`] when the normal matrix is singular
/// (cannot happen with a positive control-penalty weight).
pub fn control_law(f: &Matrix, cfg: &MpcConfig) -> Result<ControlLaw, ControlError> {
    let pred = Predictor::new(f, cfg);
    let m = pred.m;
    // X* = (CᵀC)⁻¹ Cᵀ d with d = A_u (u − B) + A_d Δr(k−1); the first m
    // rows of the solution map are the receding-horizon gains.
    let ct = pred.c.transpose();
    let normal = &ct * &pred.c;
    let pinv = &normal.inverse().map_err(ControlError::Math)? * &ct;
    let k_full_u = &pinv * &pred.a_u;
    let k_full_d = &pinv * &pred.a_d;
    Ok(ControlLaw {
        k_u: k_full_u.submatrix(0, m, 0, k_full_u.cols()),
        k_d: k_full_d.submatrix(0, m, 0, k_full_d.cols()),
    })
}

/// Builds the closed-loop system matrix `A(G)` in the paper's form
/// (eq. 10): the utilization dynamics `u(k) = A·u(k−1) + C` obtained by
/// substituting the control law into the true plant and evaluating at the
/// equilibrium move `Δr = 0`, giving `A = I + G·F·K_u` (step 2).
///
/// # Errors
///
/// Propagates [`control_law`] failures.
///
/// # Panics
///
/// Panics if `gains.len()` differs from the number of processors.
pub fn closed_loop_matrix(
    f: &Matrix,
    cfg: &MpcConfig,
    gains: &[f64],
) -> Result<Matrix, ControlError> {
    let n = f.rows();
    assert_eq!(gains.len(), n, "one gain per processor required");
    let law = control_law(f, cfg)?;
    let g = Matrix::from_diag(gains);
    let gfku = &(&g * f) * &law.k_u;
    Ok(&Matrix::identity(n) + &gfku)
}

/// Builds the *augmented* closed-loop matrix over the full state
/// `x = [u − B; Δr(k−1)]`, which also tracks the previous-move channel
/// introduced by the `MoveDelta` control penalty.
///
/// With more tasks than processors and the `MoveDelta` penalty this matrix
/// carries a structural eigenvalue at exactly 1: rate combinations in the
/// null space of `F` can drift without affecting any utilization (until a
/// rate bound binds).  The utilization dynamics themselves are governed by
/// [`closed_loop_matrix`]; this augmented form exists for ablation studies
/// of that drift mode.
///
/// # Errors
///
/// Propagates [`control_law`] failures.
///
/// # Panics
///
/// Panics if `gains.len()` differs from the number of processors.
pub fn closed_loop_matrix_full(
    f: &Matrix,
    cfg: &MpcConfig,
    gains: &[f64],
) -> Result<Matrix, ControlError> {
    let n = f.rows();
    let m = f.cols();
    assert_eq!(gains.len(), n, "one gain per processor required");
    let law = control_law(f, cfg)?;
    let g = Matrix::from_diag(gains);
    let gf = &g * f;
    let gfku = &gf * &law.k_u;
    let gfkd = &gf * &law.k_d;

    let mut a = Matrix::zeros(n + m, n + m);
    a.set_block(0, 0, &(&Matrix::identity(n) + &gfku));
    a.set_block(0, n, &gfkd);
    a.set_block(n, 0, &law.k_u);
    a.set_block(n, n, &law.k_d);
    Ok(a)
}

/// Spectral radius of the closed-loop matrix at the given gains (step 3's
/// test quantity).
///
/// # Errors
///
/// Propagates model or eigenvalue failures.
pub fn closed_loop_spectral_radius(
    f: &Matrix,
    cfg: &MpcConfig,
    gains: &[f64],
) -> Result<f64, ControlError> {
    let a = closed_loop_matrix(f, cfg, gains)?;
    spectral_radius(&a).map_err(ControlError::Math)
}

/// Returns `true` when the closed loop is stable (spectral radius < 1) at
/// the given gains.
///
/// # Errors
///
/// Propagates model or eigenvalue failures.
pub fn is_stable(f: &Matrix, cfg: &MpcConfig, gains: &[f64]) -> Result<bool, ControlError> {
    Ok(closed_loop_spectral_radius(f, cfg, gains)? < 1.0)
}

/// Finds the critical *uniform* gain: the largest `g` such that the closed
/// loop with `G = g·I` is stable for all gains in `(0, g)`.
///
/// Uses bisection on `[lo_hint, hi_hint]` to `tol`; for the paper's SIMPLE
/// example this yields ≈ 6.51 (the paper reports 5.95 but measures 6.5 —
/// see the module docs).
///
/// # Errors
///
/// Propagates analysis failures.
///
/// # Panics
///
/// Panics if the bracket is invalid or does not actually bracket the
/// stability boundary.
pub fn critical_uniform_gain(
    f: &Matrix,
    cfg: &MpcConfig,
    hi_hint: f64,
    tol: f64,
) -> Result<f64, ControlError> {
    assert!(hi_hint > 0.0 && tol > 0.0, "invalid bracket or tolerance");
    let n = f.rows();
    let gains_at = |g: f64| vec![g; n];
    let mut lo = 1e-6;
    assert!(
        is_stable(f, cfg, &gains_at(lo))?,
        "system must be stable at vanishing gain"
    );
    let mut hi = hi_hint;
    assert!(
        !is_stable(f, cfg, &gains_at(hi))?,
        "hi_hint = {hi_hint} must be unstable to bracket the boundary"
    );
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        if is_stable(f, cfg, &gains_at(mid))? {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

/// Sweeps the uniform gain and reports `(gain, spectral_radius)` pairs —
/// the raw material for stability-region plots.
///
/// # Errors
///
/// Propagates analysis failures.
pub fn gain_sweep(
    f: &Matrix,
    cfg: &MpcConfig,
    gains: &Vector,
) -> Result<Vec<(f64, f64)>, ControlError> {
    let n = f.rows();
    gains
        .iter()
        .map(|&g| Ok((g, closed_loop_spectral_radius(f, cfg, &vec![g; n])?)))
        .collect()
}

/// Sweeps the reference-trajectory time constant `Tref/Ts` and reports
/// `(tref_over_ts, spectral_radius)` at the given uniform gain — the
/// analytic side of the paper's §6.3 tuning discussion: a larger `Tref`
/// slows the reference, shrinking the per-step correction (radius closer
/// to 1 ⇒ slower convergence, less overshoot).
///
/// # Errors
///
/// Propagates analysis failures.
///
/// # Panics
///
/// Panics if any swept value is non-positive.
pub fn tref_sweep(
    f: &Matrix,
    base: &MpcConfig,
    trefs: &[f64],
    gain: f64,
) -> Result<Vec<(f64, f64)>, ControlError> {
    let n = f.rows();
    trefs
        .iter()
        .map(|&tref| {
            assert!(tref > 0.0, "Tref/Ts must be positive");
            let mut cfg = base.clone();
            cfg.tref_over_ts = tref;
            let rho = closed_loop_spectral_radius(f, &cfg, &vec![gain; n])?;
            Ok((tref, rho))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MoveHold;
    use eucon_tasks::workloads;

    fn simple_f() -> Matrix {
        workloads::simple().allocation_matrix()
    }

    #[test]
    fn control_law_dimensions() {
        let f = simple_f();
        let law = control_law(&f, &MpcConfig::simple()).unwrap();
        assert_eq!((law.k_u.rows(), law.k_u.cols()), (3, 2));
        assert_eq!((law.k_d.rows(), law.k_d.cols()), (3, 3));
    }

    #[test]
    fn law_matches_quadratic_minimum() {
        // The derived gains must agree with numerically minimizing the
        // quadratic cost for a specific error/previous-move pair.
        let f = simple_f();
        let cfg = MpcConfig::simple();
        let pred = crate::prediction::Predictor::new(&f, &cfg);
        let law = control_law(&f, &cfg).unwrap();
        let err = Vector::from_slice(&[0.2, -0.1]);
        let prev = Vector::from_slice(&[1e-3, -2e-3, 5e-4]);
        let d = pred.rhs(&err, &prev);
        let x = pred.c.least_squares(&d).unwrap();
        let from_law = &law.k_u.mul_vec(&err) + &law.k_d.mul_vec(&prev);
        assert!(x.subvector(0, 3).approx_eq(&from_law, 1e-9));
    }

    #[test]
    fn stable_at_unit_gain() {
        let f = simple_f();
        assert!(is_stable(&f, &MpcConfig::simple(), &[1.0, 1.0]).unwrap());
    }

    #[test]
    fn unstable_at_high_gain() {
        let f = simple_f();
        assert!(!is_stable(&f, &MpcConfig::simple(), &[8.0, 8.0]).unwrap());
    }

    #[test]
    fn simple_critical_gain_matches_derivation() {
        // §6.2 reports 5.95 for "0 < g1 = g2 < 5.95"; our re-derivation
        // under the default hold-rate convention gives 6.51 — which
        // matches the paper's *measured* divergence threshold of 6.5
        // (Figure 4) almost exactly (see module docs).  The eq.-12
        // (hold-delta) reading gives 9.92.  Both are pinned so
        // regressions are caught, together with the paper's qualitative
        // claims (stable well above gain 1, unstable at 7 — Figure 3(b)).
        let f = simple_f();
        let g = critical_uniform_gain(&f, &MpcConfig::simple(), 20.0, 1e-4).unwrap();
        assert!((g - 6.51).abs() < 0.05, "critical gain drifted: {g:.4}");
        let cfg_delta = MpcConfig::simple().move_hold(MoveHold::Delta);
        let g_delta = critical_uniform_gain(&f, &cfg_delta, 20.0, 1e-4).unwrap();
        assert!(
            (g_delta - 9.92).abs() < 0.05,
            "delta-convention gain drifted: {g_delta:.4}"
        );
        assert!(is_stable(&f, &MpcConfig::simple(), &[3.0, 3.0]).unwrap());
        assert!(!is_stable(&f, &MpcConfig::simple(), &[7.0, 7.0]).unwrap());
    }

    #[test]
    fn closed_form_critical_gain_cross_check() {
        // For P = 2, M = 1 under hold-rate, the u-only loop has the
        // closed form u' = (1 − g·[(1−λ) + (1−λ²)]/2)·u on the row space
        // of F (the control penalty is negligible at SIMPLE's scale), so
        // the critical gain is 4/[(1−λ) + (1−λ²)].  The numeric pipeline
        // must agree.
        let cfg = MpcConfig::simple();
        let lambda = cfg.reference_decay();
        let analytic = 4.0 / ((1.0 - lambda) + (1.0 - lambda * lambda));
        let f = simple_f();
        let g = critical_uniform_gain(&f, &cfg, 20.0, 1e-6).unwrap();
        assert!(
            (g - analytic).abs() < 1e-2,
            "numeric {g} vs closed-form {analytic}"
        );
    }

    #[test]
    fn full_state_matrix_shape_and_drift_mode() {
        // The augmented matrix is (n+m)² and, with MoveDelta and a wide F,
        // carries the structural unit eigenvalue described in its docs.
        let f = simple_f();
        let a = closed_loop_matrix_full(&f, &MpcConfig::simple(), &[1.0, 1.0]).unwrap();
        assert_eq!((a.rows(), a.cols()), (5, 5));
        let rho = eucon_math::spectral_radius(&a).unwrap();
        assert!(
            (rho - 1.0).abs() < 1e-6,
            "null-space drift mode has |λ| = 1, got {rho}"
        );
    }

    #[test]
    fn spectral_radius_grows_with_gain() {
        let f = simple_f();
        let cfg = MpcConfig::simple();
        let sweep = gain_sweep(&f, &cfg, &Vector::from_slice(&[0.5, 2.0, 4.0, 6.0, 8.0])).unwrap();
        // Radius crosses 1 between 6 and 8 (critical 6.51).
        assert!(sweep[2].1 < 1.0);
        assert!(sweep[3].1 < 1.0);
        assert!(sweep[4].1 > 1.0);
        assert!(sweep[4].1 > sweep[3].1);
    }

    #[test]
    fn asymmetric_gains_supported() {
        let f = simple_f();
        let cfg = MpcConfig::simple();
        // One fast, one slow processor: still stable when both are small.
        assert!(is_stable(&f, &cfg, &[0.5, 2.0]).unwrap());
    }

    #[test]
    fn horizon_choices_stay_stable_at_moderate_gain() {
        // All the horizon choices used in the paper (and longer ones) keep
        // the loop stable at twice the nominal gain.
        let f = simple_f();
        for (p, m) in [(2, 1), (3, 1), (4, 2), (6, 3)] {
            let cfg = MpcConfig::simple().horizons(p, m);
            assert!(
                is_stable(&f, &cfg, &[2.0, 2.0]).unwrap(),
                "P = {p}, M = {m} should be stable at gain 2"
            );
        }
    }

    #[test]
    fn horizon_effect_on_critical_gain() {
        // The paper asserts stability is preserved by lengthening the
        // horizons ("the system is also stable with any longer prediction
        // horizon and control horizon if it is stable with shorter
        // horizons").  That is NOT literally true under either prediction
        // convention: with hold-rate, a longer prediction horizon tracks
        // later (larger) reference-error coefficients and becomes *more*
        // aggressive — the closed form is g* = 2P/Σᵢ(1−λ^i), strictly
        // decreasing in P for M = 1.  Pinned here as documentation; the
        // practically relevant guarantee (every horizon choice tolerates
        // at least twice the nominal gain) is asserted alongside.
        let f = simple_f();
        let lambda = MpcConfig::simple().reference_decay();
        let mut last = f64::INFINITY;
        for p in [2usize, 3, 4] {
            let g =
                critical_uniform_gain(&f, &MpcConfig::simple().horizons(p, 1), 80.0, 1e-3).unwrap();
            let coef: f64 = (1..=p).map(|i| 1.0 - lambda.powi(i as i32)).sum();
            let closed_form = 2.0 * p as f64 / coef;
            assert!(
                (g - closed_form).abs() < 0.05,
                "P={p}: {g:.3} vs {closed_form:.3}"
            );
            assert!(g < last, "critical gain must decrease with P (M = 1)");
            assert!(g > 2.0, "still comfortably above the nominal gain");
            last = g;
        }
    }

    #[test]
    fn medium_critical_gain_exceeds_one() {
        // The MEDIUM controller must at minimum tolerate the nominal gain.
        let f = workloads::medium().allocation_matrix();
        let cfg = MpcConfig::medium();
        assert!(is_stable(&f, &cfg, &[1.0; 4]).unwrap());
        let g = critical_uniform_gain(&f, &cfg, 50.0, 1e-3).unwrap();
        assert!(g > 1.5, "MEDIUM critical gain suspiciously low: {g}");
    }

    #[test]
    fn tref_tradeoff_matches_section_6_3() {
        // At nominal gain, a slower reference (larger Tref) moves the
        // closed-loop poles toward 1: slower convergence.  §6.3's
        // tradeoff, analytically.
        let f = simple_f();
        let sweep = tref_sweep(&f, &MpcConfig::simple(), &[1.0, 2.0, 4.0, 8.0, 16.0], 1.0).unwrap();
        for pair in sweep.windows(2) {
            assert!(
                pair[1].1 >= pair[0].1 - 1e-9,
                "radius must not shrink as Tref grows: {pair:?}"
            );
        }
        // All stable at nominal gain.
        assert!(sweep.iter().all(|&(_, rho)| rho < 1.0));
    }

    #[test]
    fn faster_reference_buys_less_gain_margin() {
        // The flip side of §6.3: a snappier reference (small Tref)
        // destabilizes at a lower gain.
        let f = simple_f();
        let fast = {
            let mut cfg = MpcConfig::simple();
            cfg.tref_over_ts = 1.0;
            critical_uniform_gain(&f, &cfg, 20.0, 1e-3).unwrap()
        };
        let slow = {
            let mut cfg = MpcConfig::simple();
            cfg.tref_over_ts = 8.0;
            critical_uniform_gain(&f, &cfg, 40.0, 1e-3).unwrap()
        };
        assert!(
            slow > fast,
            "slower reference must tolerate more gain: fast {fast:.2}, slow {slow:.2}"
        );
    }

    #[test]
    #[should_panic(expected = "one gain per processor")]
    fn gain_count_validated() {
        let f = simple_f();
        let _ = closed_loop_matrix(&f, &MpcConfig::simple(), &[1.0]);
    }
}
