//! Baseline controllers: the paper's OPEN and a decoupled PID for
//! ablation.

use eucon_math::Vector;
use eucon_qp::ConstrainedLsq;
use eucon_tasks::TaskSet;

use crate::{ControlError, RateController};

/// The OPEN baseline (paper §7.1): open-loop rate assignment from
/// estimated execution times.
///
/// A designer solves `B = F·r'` once at design time (here: least squares
/// under the rate bounds, exact whenever a consistent assignment exists)
/// and never adapts afterwards.  OPEN achieves the set points exactly when
/// the estimates are exact (`etf = 1`), underutilizes when execution times
/// are overestimated and overloads when they are underestimated — the
/// behaviour Figures 5 and 6 demonstrate.
///
/// # Example
///
/// ```
/// use eucon_control::{OpenLoop, RateController};
/// use eucon_tasks::{rms_set_points, workloads};
///
/// # fn main() -> Result<(), eucon_control::ControlError> {
/// let medium = workloads::medium();
/// let b = rms_set_points(&medium);
/// let open = OpenLoop::design(&medium, &b)?;
/// // The designed rates reproduce the set points on the model.
/// let u = medium.estimated_utilization(&open.rates());
/// assert!((u[0] - b[0]).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct OpenLoop {
    rates: Vector,
}

impl OpenLoop {
    /// Designs the fixed rates `r'` with `min ‖F·r' − B‖` subject to the
    /// task rate bounds.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::Optimization`] if the underlying solver
    /// fails (the rate box itself is always feasible).
    pub fn design(set: &TaskSet, set_points: &Vector) -> Result<Self, ControlError> {
        let f = set.allocation_matrix();
        let (rmin, rmax) = set.rate_bounds();
        let sol = ConstrainedLsq::new(f, set_points.clone())
            .bounds(rmin.as_slice(), rmax.as_slice())
            .regularization(1e-9)
            .solve()
            .map_err(ControlError::Optimization)?;
        Ok(OpenLoop { rates: sol.x })
    }

    /// Creates an OPEN baseline with explicitly chosen rates.
    pub fn with_rates(rates: Vector) -> Self {
        OpenLoop { rates }
    }

    /// The expected utilization under OPEN for a given execution-time
    /// factor: `etf · F·r'` (the straight line plotted in Figure 5).
    pub fn expected_utilization(&self, set: &TaskSet, etf: f64) -> Vector {
        set.estimated_utilization(&self.rates).scale(etf)
    }
}

impl RateController for OpenLoop {
    fn update(&mut self, _u: &Vector) -> Result<(), ControlError> {
        // Open loop: feedback is ignored, the design rates stay in force.
        Ok(())
    }

    fn rates(&self) -> &Vector {
        &self.rates
    }

    fn name(&self) -> &'static str {
        "OPEN"
    }
}

/// A decoupled per-processor PI controller, used as an ablation baseline.
///
/// Earlier feedback-control scheduling work (FCS, DFCS) regulated each
/// processor independently with linear PID-type control.  This baseline
/// mimics that structure: each processor computes a utilization error and
/// a multiplicative rate correction for the tasks it hosts, *ignoring the
/// coupling* through multi-processor tasks.  A task spanning several
/// processors receives the most conservative (smallest) correction among
/// them.  The EUCON-vs-PID benchmark quantifies what the MIMO formulation
/// buys.
#[derive(Debug, Clone)]
pub struct IndependentPid {
    set_points: Vector,
    rates: Vector,
    rmin: Vector,
    rmax: Vector,
    hosts: Vec<Vec<usize>>,
    kp: f64,
    ki: f64,
    integral: Vector,
    /// Per-processor correction factors, rewritten in place every period
    /// (scratch — kept across calls so `update` never allocates).
    factor: Vector,
}

impl IndependentPid {
    /// Creates the baseline with gains `kp` (proportional) and `ki`
    /// (integral) on the relative utilization error.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::DimensionMismatch`] when `set_points` does
    /// not have one entry per processor.
    pub fn new(set: &TaskSet, set_points: Vector, kp: f64, ki: f64) -> Result<Self, ControlError> {
        if set_points.len() != set.num_processors() {
            return Err(ControlError::DimensionMismatch(format!(
                "{} set points for {} processors",
                set_points.len(),
                set.num_processors()
            )));
        }
        let (rmin, rmax) = set.rate_bounds();
        let hosts = set
            .tasks()
            .iter()
            .map(|t| {
                let mut ps: Vec<usize> = t.subtasks().iter().map(|s| s.processor.0).collect();
                ps.sort_unstable();
                ps.dedup();
                ps
            })
            .collect();
        Ok(IndependentPid {
            integral: Vector::zeros(set_points.len()),
            factor: Vector::zeros(set_points.len()),
            set_points,
            rates: set.initial_rates(),
            rmin,
            rmax,
            hosts,
            kp,
            ki,
        })
    }
}

impl RateController for IndependentPid {
    fn update(&mut self, u: &Vector) -> Result<(), ControlError> {
        if u.len() != self.set_points.len() {
            return Err(ControlError::DimensionMismatch(format!(
                "{} utilization samples for {} processors",
                u.len(),
                self.set_points.len()
            )));
        }
        // Per-processor multiplicative correction from the relative error.
        for i in 0..u.len() {
            let err = self.set_points[i] - u[i];
            self.integral[i] += err;
            self.factor[i] = 1.0 + self.kp * err + self.ki * self.integral[i];
            self.factor[i] = self.factor[i].clamp(0.5, 2.0); // rate-limit each step
        }
        for (t, hosts) in self.hosts.iter().enumerate() {
            // Conservative: a shared task follows its most loaded host.
            let f = hosts
                .iter()
                .map(|&p| self.factor[p])
                .fold(f64::INFINITY, f64::min);
            self.rates[t] = (self.rates[t] * f).clamp(self.rmin[t], self.rmax[t]);
        }
        Ok(())
    }

    fn rates(&self) -> &Vector {
        &self.rates
    }

    fn name(&self) -> &'static str {
        "PID"
    }

    fn reset(&mut self, rates: &Vector) {
        assert_eq!(rates.len(), self.rates.len(), "one rate per task required");
        for t in 0..self.rates.len() {
            self.rates[t] = rates[t].clamp(self.rmin[t], self.rmax[t]);
        }
        self.integral = Vector::zeros(self.integral.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eucon_tasks::{rms_set_points, workloads};

    #[test]
    fn open_design_is_exact_on_medium() {
        // MEDIUM is constructed so B = F·r_nom has an exact solution.
        let set = workloads::medium();
        let b = rms_set_points(&set);
        let open = OpenLoop::design(&set, &b).unwrap();
        let u = set.estimated_utilization(open.rates());
        assert!(u.approx_eq(&b, 1e-6));
    }

    #[test]
    fn open_ignores_feedback() {
        let set = workloads::simple();
        let b = rms_set_points(&set);
        let mut open = OpenLoop::design(&set, &b).unwrap();
        open.update(&Vector::from_slice(&[0.1, 0.1])).unwrap();
        let r1 = open.rates().clone();
        open.update(&Vector::from_slice(&[1.0, 1.0])).unwrap();
        assert!(r1.approx_eq(open.rates(), 0.0));
    }

    #[test]
    fn open_expected_utilization_scales_linearly() {
        let set = workloads::medium();
        let b = rms_set_points(&set);
        let open = OpenLoop::design(&set, &b).unwrap();
        let u_01 = open.expected_utilization(&set, 0.1);
        // Paper: at etf = 0.1 OPEN yields ≈ 0.073 on P1.
        assert!((u_01[0] - 0.0729).abs() < 1e-3, "got {}", u_01[0]);
        let u_2 = open.expected_utilization(&set, 2.0);
        assert!(u_2[0] > 1.0, "overload when execution times double");
    }

    #[test]
    fn open_with_rates_passthrough() {
        let open = OpenLoop::with_rates(Vector::from_slice(&[0.01, 0.02]));
        assert_eq!(open.rates().as_slice(), &[0.01, 0.02]);
        assert_eq!(open.name(), "OPEN");
    }

    #[test]
    fn pid_raises_rates_when_underutilized() {
        let set = workloads::simple();
        let b = rms_set_points(&set);
        let mut pid = IndependentPid::new(&set, b, 0.5, 0.1).unwrap();
        let r0 = pid.rates().clone();
        pid.update(&Vector::from_slice(&[0.2, 0.2])).unwrap();
        assert!(pid.rates().sum() > r0.sum());
    }

    #[test]
    fn pid_lowers_rates_when_overloaded() {
        let set = workloads::simple();
        let b = rms_set_points(&set);
        let mut pid = IndependentPid::new(&set, b, 0.5, 0.1).unwrap();
        let r0 = pid.rates().clone();
        pid.update(&Vector::from_slice(&[1.0, 1.0])).unwrap();
        assert!(pid.rates().sum() < r0.sum());
    }

    #[test]
    fn pid_respects_rate_bounds() {
        let set = workloads::simple();
        let b = rms_set_points(&set);
        let mut pid = IndependentPid::new(&set, b, 2.0, 0.5).unwrap();
        for _ in 0..100 {
            pid.update(&Vector::from_slice(&[0.0, 0.0])).unwrap();
            for (t, task) in set.tasks().iter().enumerate() {
                assert!(pid.rates()[t] <= task.rate_max() + 1e-12);
            }
        }
        let r = pid.rates().clone();
        for (t, task) in set.tasks().iter().enumerate() {
            assert!((r[t] - task.rate_max()).abs() < 1e-9, "saturates at Rmax");
        }
    }

    #[test]
    fn pid_dimension_checked() {
        let set = workloads::simple();
        assert!(matches!(
            IndependentPid::new(&set, Vector::zeros(5), 0.5, 0.1),
            Err(ControlError::DimensionMismatch(_))
        ));
        let b = rms_set_points(&set);
        let mut pid = IndependentPid::new(&set, b, 0.5, 0.1).unwrap();
        assert!(matches!(
            pid.update(&Vector::zeros(7)),
            Err(ControlError::DimensionMismatch(_))
        ));
    }

    #[test]
    fn shared_task_follows_most_conservative_processor() {
        let set = workloads::simple();
        let b = rms_set_points(&set);
        let mut pid = IndependentPid::new(&set, b, 0.5, 0.0).unwrap();
        let r0 = pid.rates().clone();
        // P1 overloaded, P2 idle: shared task T2 must not be raised.
        pid.update(&Vector::from_slice(&[1.0, 0.0])).unwrap();
        assert!(pid.rates()[1] <= r0[1] + 1e-12, "T2 follows overloaded P1");
        assert!(pid.rates()[2] > r0[2], "T3 (P2-only) is raised");
    }
}
