//! Controller configuration.

use eucon_math::Vector;

/// What the prediction model assumes about control moves beyond the
/// control horizon `M`.
///
/// The paper's prose describes standard MPC (inputs held constant after
/// the control horizon), while its eq. 12 literally shows the *move*
/// `Δr(k)` being re-applied at every prediction step
/// (`u(k+2|k) = u(k) + 2FΔr(k)` for M = 1).  Both conventions are
/// implemented; [`MoveHold::Rate`] (hold the rate, moves vanish after M)
/// is the default because it reproduces the paper's measured behaviour —
/// Figure 4's divergence threshold of ≈ 6.5 matches its analytic critical
/// gain of 6.51, where the eq.-12 reading gives 9.92.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum MoveHold {
    /// Hold the *rate* constant beyond the control horizon
    /// (`Δr(k+i|k) = 0` for `i ≥ M`) — standard MPC.
    Rate,
    /// Hold the *move* constant beyond the control horizon
    /// (`Δr(k+i|k) = Δr(k+M−1|k)` for `i ≥ M`) — the literal reading of
    /// the paper's eq. 12.
    Delta,
}

/// How the control-penalty term of the MPC cost is formed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ControlPenalty {
    /// Penalize changes of the control input between consecutive horizon
    /// steps, `‖Δr(k+i|k) − Δr(k+i−1|k)‖²` — the paper's eq. 7/11.
    MoveDelta,
    /// Penalize the control input itself, `‖Δr(k+i|k)‖²` — a common MPC
    /// variant used here for ablation studies.
    Move,
}

/// Configuration of the EUCON model-predictive controller (paper §6.1,
/// Table 2).
///
/// # Example
///
/// ```
/// let cfg = eucon_control::MpcConfig::simple();
/// assert_eq!(cfg.prediction_horizon, 2);
/// assert_eq!(cfg.control_horizon, 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MpcConfig {
    /// Prediction horizon `P`.
    pub prediction_horizon: usize,
    /// Control horizon `M` (`1 ≤ M ≤ P`).
    pub control_horizon: usize,
    /// Reference-trajectory time constant relative to the sampling period,
    /// `Tref / Ts` (paper uses 4).
    pub tref_over_ts: f64,
    /// Tracking-error weights, one per processor (`Q`); `None` means all 1.
    pub tracking_weights: Option<Vector>,
    /// Control-penalty weight (`R`); the paper uses 1.
    pub control_penalty_weight: f64,
    /// Shape of the control-penalty term.
    pub control_penalty: ControlPenalty,
    /// Prediction convention beyond the control horizon.
    pub move_hold: MoveHold,
    /// Whether to enforce the hard utilization constraints
    /// `u_i(k+j|k) ≤ B_i` in the optimization (paper eq. 1).
    pub utilization_constraints: bool,
}

impl MpcConfig {
    /// The paper's controller for the SIMPLE configuration (Table 2):
    /// `P = 2`, `M = 1`, `Tref/Ts = 4`.
    pub fn simple() -> Self {
        MpcConfig {
            prediction_horizon: 2,
            control_horizon: 1,
            tref_over_ts: 4.0,
            tracking_weights: None,
            control_penalty_weight: 1.0,
            control_penalty: ControlPenalty::MoveDelta,
            move_hold: MoveHold::Rate,
            utilization_constraints: true,
        }
    }

    /// The paper's controller for the MEDIUM configuration (Table 2):
    /// `P = 4`, `M = 2`, `Tref/Ts = 4`.
    pub fn medium() -> Self {
        MpcConfig {
            prediction_horizon: 4,
            control_horizon: 2,
            ..MpcConfig::simple()
        }
    }

    /// Sets the horizons.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ control ≤ prediction`.
    pub fn horizons(mut self, prediction: usize, control: usize) -> Self {
        assert!(control >= 1 && control <= prediction, "need 1 <= M <= P");
        self.prediction_horizon = prediction;
        self.control_horizon = control;
        self
    }

    /// Sets per-processor tracking weights.
    pub fn tracking_weights(mut self, weights: Vector) -> Self {
        self.tracking_weights = Some(weights);
        self
    }

    /// Sets the control-penalty weight.
    ///
    /// # Panics
    ///
    /// Panics if the weight is negative.
    pub fn control_penalty_weight(mut self, weight: f64) -> Self {
        assert!(weight >= 0.0, "penalty weight must be non-negative");
        self.control_penalty_weight = weight;
        self
    }

    /// Sets the control-penalty shape.
    pub fn control_penalty(mut self, penalty: ControlPenalty) -> Self {
        self.control_penalty = penalty;
        self
    }

    /// Sets the beyond-horizon prediction convention.
    pub fn move_hold(mut self, hold: MoveHold) -> Self {
        self.move_hold = hold;
        self
    }

    /// Enables or disables the hard utilization constraints.
    pub fn utilization_constraints(mut self, enabled: bool) -> Self {
        self.utilization_constraints = enabled;
        self
    }

    /// The per-step decay of the exponential reference trajectory,
    /// `λ = e^{−Ts/Tref}` (paper eq. 8).
    pub fn reference_decay(&self) -> f64 {
        (-1.0 / self.tref_over_ts).exp()
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if horizons or the time constant are invalid.
    pub fn assert_valid(&self) {
        assert!(self.prediction_horizon >= 1, "P must be at least 1");
        assert!(
            self.control_horizon >= 1 && self.control_horizon <= self.prediction_horizon,
            "need 1 <= M <= P"
        );
        assert!(
            self.tref_over_ts > 0.0 && self.tref_over_ts.is_finite(),
            "Tref/Ts must be positive"
        );
        assert!(
            self.control_penalty_weight >= 0.0,
            "penalty weight must be non-negative"
        );
    }
}

impl Default for MpcConfig {
    fn default() -> Self {
        MpcConfig::simple()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_2_values() {
        let s = MpcConfig::simple();
        assert_eq!((s.prediction_horizon, s.control_horizon), (2, 1));
        assert_eq!(s.tref_over_ts, 4.0);
        let m = MpcConfig::medium();
        assert_eq!((m.prediction_horizon, m.control_horizon), (4, 2));
    }

    #[test]
    fn reference_decay_matches_formula() {
        let cfg = MpcConfig::simple();
        assert!((cfg.reference_decay() - (-0.25f64).exp()).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "1 <= M <= P")]
    fn horizons_validated() {
        let _ = MpcConfig::simple().horizons(2, 3);
    }

    #[test]
    fn builder_methods() {
        let cfg = MpcConfig::simple()
            .horizons(6, 3)
            .control_penalty_weight(0.5)
            .control_penalty(ControlPenalty::Move)
            .utilization_constraints(false)
            .tracking_weights(Vector::from_slice(&[2.0, 1.0]));
        cfg.assert_valid();
        assert_eq!(cfg.prediction_horizon, 6);
        assert_eq!(cfg.control_penalty, ControlPenalty::Move);
        assert!(!cfg.utilization_constraints);
        assert_eq!(cfg.tracking_weights.unwrap().as_slice(), &[2.0, 1.0]);
    }
}
