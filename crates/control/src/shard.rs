//! Cluster-scale sharded utilization control.
//!
//! [`DecentralizedController`] runs one local MPC per *processor* — the
//! finest possible partition.  At cluster scale (hundreds of processors)
//! that granularity is wasteful in the other direction: tightly coupled
//! processor groups (tasks chaining back and forth between them) pay the
//! coordination lag of last-move prediction for couplings that a single
//! slightly larger local controller would handle exactly.
//!
//! This module generalizes the scheme to *shards* — groups of processors
//! solved by one warm-started local MPC each:
//!
//! * [`ShardPlanner`] partitions the processor set by the sparsity
//!   pattern of the allocation matrix `F`: processors sharing many tasks
//!   are merged greedily (largest coupling first, Kruskal-style with a
//!   size cap), so task chains mostly stay *inside* a shard and the cut
//!   (tasks crossing shard boundaries) is small.
//! * [`ShardedController`] runs the per-shard MPCs in a fixed
//!   Gauss–Seidel sweep, exchanging **boundary state** — the measured
//!   utilization of each shard's home processors and the move vector of
//!   its owned tasks — and folding peer moves into each shard's
//!   prediction as a disturbance, exactly like the per-processor scheme.
//! * [`BoundaryBus`] abstracts *how* that boundary state travels: the
//!   default in-process exchange shares memory; `eucon-core` provides a
//!   lane-backed implementation (one `eucon-net` lane per shard) whose
//!   ideal-lane traces are bit-identical to the in-process path and
//!   which degrades to stale-state reuse (eventual consistency) on loss.
//!
//! With shard size 1 the plan is the singleton partition and the sweep
//! degenerates to the per-processor scheme: [`ShardedController`] is
//! then **bit-identical** to [`DecentralizedController`] (pinned by
//! test).  Larger shards trade a bigger local solve for exact intra-shard
//! coordination; the `ablation` binary quantifies the trade.
//!
//! Because a shard's local model covers only its neighborhood and tasks
//! are grouped by home processor, the local Hessians are block banded —
//! the structure the banded Cholesky path in `eucon-math` exploits.

use eucon_math::{Matrix, Vector};
use eucon_tasks::TaskSet;

use crate::{
    ControlError, ControllerTelemetry, DecentralizedController, MpcConfig, MpcController,
    RateController,
};

/// A partition of the processor set into shards.
///
/// Shards are non-empty, disjoint, cover every processor, are internally
/// sorted, and are ordered by their smallest member — so the singleton
/// plan enumerates processors in index order and the sharded sweep
/// reduces exactly to the decentralized one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    shards: Vec<Vec<usize>>,
    /// `shard_of[p]` = index of the shard containing processor `p`.
    shard_of: Vec<usize>,
}

impl ShardPlan {
    /// Builds a plan from explicit processor groups.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::DimensionMismatch`] unless the groups form
    /// an exact partition of `0..num_processors`.
    pub fn from_groups(
        groups: Vec<Vec<usize>>,
        num_processors: usize,
    ) -> Result<Self, ControlError> {
        let mut shard_of = vec![usize::MAX; num_processors];
        let mut covered = 0usize;
        let mut shards: Vec<Vec<usize>> = groups
            .into_iter()
            .filter(|g| !g.is_empty())
            .map(|mut g| {
                g.sort_unstable();
                g
            })
            .collect();
        shards.sort_by_key(|g| g[0]);
        for (s, group) in shards.iter().enumerate() {
            for &p in group {
                if p >= num_processors || shard_of[p] != usize::MAX {
                    return Err(ControlError::DimensionMismatch(format!(
                        "processor {p} out of range or assigned twice in shard plan"
                    )));
                }
                shard_of[p] = s;
                covered += 1;
            }
        }
        if covered != num_processors {
            return Err(ControlError::DimensionMismatch(format!(
                "shard plan covers {covered} of {num_processors} processors"
            )));
        }
        Ok(ShardPlan { shards, shard_of })
    }

    /// The singleton plan: one shard per processor (the decentralized
    /// granularity).
    pub fn singletons(num_processors: usize) -> Self {
        ShardPlan {
            shards: (0..num_processors).map(|p| vec![p]).collect(),
            shard_of: (0..num_processors).collect(),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The processor groups, ordered by smallest member.
    pub fn shards(&self) -> &[Vec<usize>] {
        &self.shards
    }

    /// The shard containing processor `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn shard_of(&self, p: usize) -> usize {
        self.shard_of[p]
    }

    /// Largest shard size (processors).
    pub fn max_shard_size(&self) -> usize {
        self.shards.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Number of tasks whose chain crosses a shard boundary (the cut the
    /// planner minimizes).
    pub fn cut_tasks(&self, set: &TaskSet) -> usize {
        set.tasks()
            .iter()
            .filter(|t| {
                let s0 = self.shard_of[t.subtasks()[0].processor.0];
                t.subtasks()
                    .iter()
                    .any(|s| self.shard_of[s.processor.0] != s0)
            })
            .count()
    }
}

/// Plans a processor partition from the allocation-matrix sparsity.
///
/// Coupling weight between two processors = number of tasks whose
/// subtask chain touches both.  Merging proceeds greedily from the
/// heaviest coupling (Kruskal-style over a union-find), refusing merges
/// that would exceed the target shard size — a cut-minimizing greedy
/// agglomeration.  Ties break deterministically by processor index, so a
/// plan is a pure function of the task set and the target size.
///
/// # Example
///
/// ```
/// use eucon_control::ShardPlanner;
/// use eucon_tasks::workloads;
///
/// let set = workloads::medium();
/// let plan = ShardPlanner::new(&set).target_size(2).plan();
/// assert_eq!(plan.num_shards(), 2);
/// assert_eq!(plan.max_shard_size(), 2);
/// ```
#[derive(Debug)]
pub struct ShardPlanner<'a> {
    set: &'a TaskSet,
    target_size: usize,
}

impl<'a> ShardPlanner<'a> {
    /// Starts a planner for a task set (default target size 16).
    pub fn new(set: &'a TaskSet) -> Self {
        ShardPlanner {
            set,
            target_size: 16,
        }
    }

    /// Sets the maximum processors per shard.  `1` yields the singleton
    /// plan (per-processor decentralized granularity).
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    pub fn target_size(mut self, size: usize) -> Self {
        assert!(size > 0, "shards must hold at least one processor");
        self.target_size = size;
        self
    }

    /// Computes the plan.
    pub fn plan(&self) -> ShardPlan {
        let n = self.set.num_processors();
        if self.target_size == 1 || n <= 1 {
            return ShardPlan::singletons(n);
        }
        // Coupling weights from the F-matrix sparsity: one count per task
        // per touched processor pair.  Chains are short, so this is
        // O(tasks · chain²) with small constants.
        let mut weights: std::collections::HashMap<(usize, usize), usize> =
            std::collections::HashMap::new();
        for task in self.set.tasks() {
            let mut procs: Vec<usize> = task.subtasks().iter().map(|s| s.processor.0).collect();
            procs.sort_unstable();
            procs.dedup();
            for (i, &p) in procs.iter().enumerate() {
                for &q in &procs[i + 1..] {
                    *weights.entry((p, q)).or_insert(0) += 1;
                }
            }
        }
        let mut edges: Vec<(usize, usize, usize)> =
            weights.into_iter().map(|((p, q), w)| (w, p, q)).collect();
        // Heaviest coupling first; deterministic tie-break by indices.
        edges.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));

        // Union-find with a size cap.
        let mut parent: Vec<usize> = (0..n).collect();
        let mut size = vec![1usize; n];
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for (_w, p, q) in edges {
            let (a, b) = (find(&mut parent, p), find(&mut parent, q));
            if a != b && size[a] + size[b] <= self.target_size {
                // Deterministic root choice: smaller index wins.
                let (keep, fold) = if a < b { (a, b) } else { (b, a) };
                parent[fold] = keep;
                size[keep] += size[fold];
            }
        }
        let mut groups: std::collections::BTreeMap<usize, Vec<usize>> =
            std::collections::BTreeMap::new();
        for p in 0..n {
            let root = find(&mut parent, p);
            groups.entry(root).or_default().push(p);
        }
        ShardPlan::from_groups(groups.into_values().collect(), n)
            .expect("union-find components form a partition")
    }
}

/// How a sharded team exchanges boundary state between control domains.
///
/// Per period the sweep makes three kinds of calls, in order:
///
/// 1. [`publish_utilization`](BoundaryBus::publish_utilization) — every
///    shard (including ones owning no tasks) publishes the measured
///    utilization of its home processors.
/// 2. For each solving shard, in sweep order:
///    [`fetch`](BoundaryBus::fetch) — pull the freshest peer state for
///    the shard's boundary (moves of foreign tasks it is coupled to,
///    utilization of neighborhood processors outside its home set);
///    then, after its local solve,
///    [`publish_moves`](BoundaryBus::publish_moves) — push the moves it
///    just committed.
///
/// Implementations fill `fetch` outputs **only for state they actually
/// have fresh or retained data for**, leaving other entries untouched —
/// the caller keeps per-shard view buffers, so a lossy bus degrades to
/// stale-state reuse (eventual consistency), never to garbage.
pub trait BoundaryBus {
    /// Shard `shard` publishes its home processors' measured utilization
    /// (`procs[i]` sampled as `u[i]`).
    fn publish_utilization(&mut self, shard: usize, procs: &[usize], u: &[f64]);

    /// Fills shard `shard`'s boundary view: `moves[i]` for global task
    /// `move_tasks[i]`, `u[i]` for processor `procs[i]`.  Entries without
    /// fresher data are left untouched.
    fn fetch(
        &mut self,
        shard: usize,
        move_tasks: &[usize],
        moves: &mut [f64],
        procs: &[usize],
        u: &mut [f64],
    );

    /// Shard `shard` publishes the moves it committed this period
    /// (`moves[i]` for global task `tasks[i]`).
    fn publish_moves(&mut self, shard: usize, tasks: &[usize], moves: &[f64]);

    /// Advances per-period machinery (lane clocks).  Called once per
    /// period, before any publish.
    fn begin_period(&mut self) {}
}

/// One shard's local controller and bookkeeping.
#[derive(Debug, Clone)]
struct ShardController {
    /// Index into the plan's shard list.
    shard: usize,
    /// Tasks whose head subtask lives in this shard (owned: this
    /// controller actuates their rates).
    owned: Vec<usize>,
    /// Processors touched by the owned tasks (global indices, sorted).
    neighborhood: Vec<usize>,
    /// Local MPC over the `neighborhood × owned` sub-block of `F`.
    mpc: MpcController,
    /// Coupling from non-owned tasks into the neighborhood (owned
    /// columns zeroed).
    foreign: Matrix,
    /// Global indices of the non-owned tasks with a nonzero column in
    /// `foreign` — the moves this shard needs from its peers.
    boundary_tasks: Vec<usize>,
    /// Neighborhood processors outside the shard's home set — the
    /// utilizations this shard needs from its peers.
    boundary_procs: Vec<usize>,
    /// Per-shard view of peer moves (length = all tasks; only
    /// `boundary_tasks` entries are ever written).  Used by the bus
    /// path; the in-process path shares one vector for the whole team.
    view_moves: Vector,
    /// Per-shard view of boundary utilizations, indexed like
    /// `boundary_procs`.
    view_u: Vec<f64>,
}

/// Cluster-scale sharded EUCON: per-shard local MPCs coordinating by
/// boundary-state exchange.
///
/// Drop-in [`RateController`]; with the singleton plan it is
/// bit-identical to [`DecentralizedController`].
///
/// # Example
///
/// ```
/// use eucon_control::{MpcConfig, RateController, ShardPlanner, ShardedController};
/// use eucon_math::Vector;
/// use eucon_tasks::{rms_set_points, workloads};
///
/// # fn main() -> Result<(), eucon_control::ControlError> {
/// let set = workloads::medium();
/// let plan = ShardPlanner::new(&set).target_size(2).plan();
/// let b = rms_set_points(&set);
/// let mut ctrl = ShardedController::new(&set, b, MpcConfig::medium(), plan)?;
/// ctrl.update(&Vector::from_slice(&[0.4, 0.4, 0.4, 0.4]))?;
/// assert_eq!(ctrl.rates().len(), 12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ShardedController {
    plan: ShardPlan,
    controllers: Vec<ShardController>,
    rates: Vector,
    last_moves: Vector,
    num_processors: usize,
    /// Per processor: number of shard controllers with it in their
    /// neighborhood (min 1) — tracking errors are split by this count so
    /// the team's collective correction sums to the needed one.
    actuator_count: Vec<usize>,
}

impl ShardedController {
    /// Builds the sharded team for a task set under a shard plan.
    ///
    /// Task ownership follows the head-subtask rule at shard granularity:
    /// a shard owns every task whose head subtask runs on one of its home
    /// processors.  Shards owning no tasks run no controller (their
    /// utilization is regulated by the owners of tasks crossing them,
    /// and they still publish boundary utilization on a bus).
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::DimensionMismatch`] when `set_points` or
    /// the plan do not match the set, and propagates local-controller
    /// construction failures.
    pub fn new(
        set: &TaskSet,
        set_points: Vector,
        cfg: MpcConfig,
        plan: ShardPlan,
    ) -> Result<Self, ControlError> {
        let n = set.num_processors();
        let m = set.num_tasks();
        if set_points.len() != n {
            return Err(ControlError::DimensionMismatch(format!(
                "{} set points for {n} processors",
                set_points.len()
            )));
        }
        if plan.shard_of.len() != n {
            return Err(ControlError::DimensionMismatch(format!(
                "shard plan for {} processors applied to {n}",
                plan.shard_of.len()
            )));
        }
        let f = set.allocation_matrix();
        let (rmin, rmax) = set.rate_bounds();
        let r0 = set.initial_rates();

        // Soft local utilization constraints, for the same reason as the
        // decentralized team (see `decentralized.rs`): a hard local
        // `u ≤ B` deadlocks cross-shard rebalancing; tracking drives
        // every processor to its set point and constraint satisfaction
        // emerges at the team level.
        let local_cfg = cfg.clone().utilization_constraints(false);

        let mut controllers = Vec::new();
        for (s, home) in plan.shards().iter().enumerate() {
            let owned: Vec<usize> = (0..m)
                .filter(|&j| home.contains(&set.tasks()[j].subtasks()[0].processor.0))
                .collect();
            if owned.is_empty() {
                continue;
            }
            let mut neighborhood: Vec<usize> = Vec::new();
            for &j in &owned {
                for st in set.tasks()[j].subtasks() {
                    if !neighborhood.contains(&st.processor.0) {
                        neighborhood.push(st.processor.0);
                    }
                }
            }
            neighborhood.sort_unstable();

            let f_local = Matrix::from_fn(neighborhood.len(), owned.len(), |r, c| {
                f[(neighborhood[r], owned[c])]
            });
            let b_local = Vector::from_iter(neighborhood.iter().map(|&q| set_points[q]));
            let mpc = MpcController::from_model(
                f_local,
                b_local,
                Vector::from_iter(owned.iter().map(|&j| rmin[j])),
                Vector::from_iter(owned.iter().map(|&j| rmax[j])),
                Vector::from_iter(owned.iter().map(|&j| r0[j])),
                local_cfg.clone(),
            )?;

            let foreign = Matrix::from_fn(neighborhood.len(), m, |r, c| {
                if owned.contains(&c) {
                    0.0
                } else {
                    f[(neighborhood[r], c)]
                }
            });
            let boundary_tasks: Vec<usize> = (0..m)
                .filter(|&c| (0..neighborhood.len()).any(|r| foreign[(r, c)] != 0.0))
                .collect();
            let boundary_procs: Vec<usize> = neighborhood
                .iter()
                .copied()
                .filter(|&q| !home.contains(&q))
                .collect();
            // Boundary-utilization view defaults to the set point: an
            // undelivered boundary sample contributes zero error rather
            // than a phantom disturbance.
            let view_u: Vec<f64> = boundary_procs.iter().map(|&q| set_points[q]).collect();

            controllers.push(ShardController {
                shard: s,
                owned,
                neighborhood,
                mpc,
                foreign,
                boundary_tasks,
                boundary_procs,
                view_moves: Vector::zeros(m),
                view_u,
            });
        }

        let mut actuator_count = vec![0usize; n];
        for ctrl in &controllers {
            for &q in &ctrl.neighborhood {
                actuator_count[q] += 1;
            }
        }
        for c in &mut actuator_count {
            *c = (*c).max(1);
        }

        Ok(ShardedController {
            plan,
            controllers,
            rates: r0,
            last_moves: Vector::zeros(m),
            num_processors: n,
            actuator_count,
        })
    }

    /// Convenience constructor: plans the partition with
    /// [`ShardPlanner`] at the given target shard size, then builds the
    /// team.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ShardedController::new`].
    pub fn with_shard_size(
        set: &TaskSet,
        set_points: Vector,
        cfg: MpcConfig,
        shard_size: usize,
    ) -> Result<Self, ControlError> {
        let plan = ShardPlanner::new(set).target_size(shard_size).plan();
        Self::new(set, set_points, cfg, plan)
    }

    /// The processor partition this team runs under.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Number of shard controllers in the team (shards owning at least
    /// one task).
    pub fn num_controllers(&self) -> usize {
        self.controllers.len()
    }

    /// Largest local problem size (owned tasks), a proxy for per-shard
    /// cost.
    pub fn max_shard_tasks(&self) -> usize {
        self.controllers
            .iter()
            .map(|c| c.owned.len())
            .max()
            .unwrap_or(0)
    }

    /// Largest boundary size (foreign tasks a shard needs moves for) —
    /// the per-period exchange volume per shard.
    pub fn max_boundary_tasks(&self) -> usize {
        self.controllers
            .iter()
            .map(|c| c.boundary_tasks.len())
            .max()
            .unwrap_or(0)
    }

    /// Lower bandwidth of each shard's prepared rate-solver Hessian, in
    /// sweep order (see `MpcController::hessian_bandwidth`).
    pub fn hessian_bandwidths(&self) -> Vec<usize> {
        self.controllers
            .iter()
            .map(|c| c.mpc.hessian_bandwidth())
            .collect()
    }

    /// Per-shard local problem sizes `(owned tasks, neighborhood
    /// processors)`, in sweep order.
    pub fn shard_problem_sizes(&self) -> Vec<(usize, usize)> {
        self.controllers
            .iter()
            .map(|c| (c.owned.len(), c.neighborhood.len()))
            .collect()
    }

    /// One Gauss–Seidel sweep with boundary state routed through `bus`
    /// instead of shared memory.
    ///
    /// Over an ideal (lossless, same-period) bus this is bit-identical
    /// to [`RateController::update`]; over a lossy bus each shard reuses
    /// its last delivered boundary view (stale-state hold), so the team
    /// converges to the same fixed point once the bus delivers again —
    /// eventual consistency between control domains.
    ///
    /// # Errors
    ///
    /// Propagates local-solve failures; rates stay unchanged on error.
    pub fn update_with_bus(
        &mut self,
        u: &Vector,
        bus: &mut dyn BoundaryBus,
    ) -> Result<(), ControlError> {
        if u.len() != self.num_processors {
            return Err(ControlError::DimensionMismatch(format!(
                "{} utilization samples for {} processors",
                u.len(),
                self.num_processors
            )));
        }
        bus.begin_period();
        // Phase A: every shard publishes its home utilizations —
        // including shards that own no tasks, whose processors may still
        // sit on a peer's boundary.
        let mut u_home: Vec<f64> = Vec::new();
        for (s, home) in self.plan.shards().iter().enumerate() {
            u_home.clear();
            u_home.extend(home.iter().map(|&p| u[p]));
            bus.publish_utilization(s, home, &u_home);
        }

        // Phase B: the Gauss–Seidel sweep, with each shard's boundary
        // view refreshed from the bus immediately before its solve and
        // its committed moves published immediately after.
        let mut new_rates = self.rates.clone();
        let mut new_moves = Vector::zeros(self.rates.len());
        let actuator_count = self.actuator_count.clone();
        let mut moves_scratch: Vec<f64> = Vec::new();
        let mut published: Vec<f64> = Vec::new();
        for ctrl in &mut self.controllers {
            moves_scratch.clear();
            moves_scratch.extend(ctrl.boundary_tasks.iter().map(|&j| ctrl.view_moves[j]));
            bus.fetch(
                ctrl.shard,
                &ctrl.boundary_tasks,
                &mut moves_scratch,
                &ctrl.boundary_procs,
                &mut ctrl.view_u,
            );
            for (i, &j) in ctrl.boundary_tasks.iter().enumerate() {
                ctrl.view_moves[j] = moves_scratch[i];
            }
            let disturbance = ctrl.foreign.mul_vec(&ctrl.view_moves);
            let home = &self.plan.shards()[ctrl.shard];
            let view_u = &ctrl.view_u;
            let boundary_procs = &ctrl.boundary_procs;
            let u_local = Vector::from_iter(ctrl.neighborhood.iter().enumerate().map(|(r, &q)| {
                let b = ctrl.mpc.set_points()[r];
                let uq = if home.contains(&q) {
                    u[q]
                } else {
                    let i = boundary_procs
                        .iter()
                        .position(|&bp| bp == q)
                        .expect("non-home neighborhood processor is a boundary processor");
                    view_u[i]
                };
                let err = uq + disturbance[r] - b;
                (b + err / actuator_count[q] as f64).clamp(0.0, 1.0)
            }));
            ctrl.mpc.step_in_place(&u_local)?;
            let r_local = ctrl.mpc.rates();
            published.clear();
            for (c, &j) in ctrl.owned.iter().enumerate() {
                let mv = r_local[c] - self.rates[j];
                new_moves[j] = mv;
                new_rates[j] = r_local[c];
                published.push(mv);
            }
            bus.publish_moves(ctrl.shard, &ctrl.owned, &published);
        }
        self.last_moves = new_moves;
        self.rates = new_rates;
        Ok(())
    }
}

impl RateController for ShardedController {
    fn update(&mut self, u: &Vector) -> Result<(), ControlError> {
        if u.len() != self.num_processors {
            return Err(ControlError::DimensionMismatch(format!(
                "{} utilization samples for {} processors",
                u.len(),
                self.num_processors
            )));
        }
        // The in-process exchange: identical arithmetic to
        // `DecentralizedController::update`, over shard controllers
        // instead of per-processor ones.  Stage the team's result and
        // commit only after every local solve succeeded.
        let mut new_rates = self.rates.clone();
        // Gauss–Seidel coordination: shards act in a fixed order; each
        // sees the moves already committed this period by earlier shards
        // and predicts the not-yet-acting ones by their previous move.
        let mut predicted_moves = self.last_moves.clone();
        let mut new_moves = Vector::zeros(self.rates.len());
        let actuator_count = self.actuator_count.clone();
        for ctrl in &mut self.controllers {
            let disturbance = ctrl.foreign.mul_vec(&predicted_moves);
            let u_local = Vector::from_iter(ctrl.neighborhood.iter().enumerate().map(|(r, &q)| {
                let b = ctrl.mpc.set_points()[r];
                let err = u[q] + disturbance[r] - b;
                (b + err / actuator_count[q] as f64).clamp(0.0, 1.0)
            }));
            ctrl.mpc.step_in_place(&u_local)?;
            let r_local = ctrl.mpc.rates();
            for (c, &j) in ctrl.owned.iter().enumerate() {
                new_moves[j] = r_local[c] - self.rates[j];
                predicted_moves[j] = new_moves[j];
                new_rates[j] = r_local[c];
            }
        }
        self.last_moves = new_moves;
        self.rates = new_rates;
        Ok(())
    }

    fn rates(&self) -> &Vector {
        &self.rates
    }

    fn name(&self) -> &'static str {
        "SHARD-EUCON"
    }

    fn telemetry(&self) -> ControllerTelemetry {
        // Aggregate across the per-shard MPCs, like the decentralized
        // team: counts add up, flags report "any shard did this".
        let mut t = ControllerTelemetry::default();
        for ctrl in &self.controllers {
            let lt = ctrl.mpc.telemetry();
            t.qp_iterations += lt.qp_iterations;
            t.active_set_size += lt.active_set_size;
            t.active_churn += lt.active_churn;
            t.warm_start |= lt.warm_start;
            t.cold_retry |= lt.cold_retry;
            t.relaxed_utilization |= lt.relaxed_utilization;
        }
        t
    }

    fn reset(&mut self, rates: &Vector) {
        assert_eq!(rates.len(), self.rates.len(), "one rate per task required");
        for ctrl in &mut self.controllers {
            let sub = Vector::from_iter(ctrl.owned.iter().map(|&j| rates[j]));
            ctrl.mpc.reset(&sub);
            for (c, &j) in ctrl.owned.iter().enumerate() {
                self.rates[j] = ctrl.mpc.rates()[c];
            }
            ctrl.view_moves = Vector::zeros(ctrl.view_moves.len());
        }
        self.last_moves = Vector::zeros(self.last_moves.len());
    }
}

/// Pins the structural claim behind the K=1 guarantee: with the
/// singleton plan, construction and sweep order coincide with
/// [`DecentralizedController`], so trajectories are bit-identical.
/// (The behavioural pin lives in this module's tests and in
/// `eucon-core`'s equivalence suite.)
impl ShardedController {
    /// Builds the singleton-plan team — the sharded view of
    /// [`DecentralizedController`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`ShardedController::new`].
    pub fn singleton(
        set: &TaskSet,
        set_points: Vector,
        cfg: MpcConfig,
    ) -> Result<Self, ControlError> {
        Self::new(
            set,
            set_points,
            cfg,
            ShardPlan::singletons(set.num_processors()),
        )
    }

    /// Steps both this team and a [`DecentralizedController`] reference
    /// and reports whether their commanded rates are bit-identical
    /// (test helper for the K=1 pin).
    pub fn rates_bit_identical(&self, reference: &DecentralizedController) -> bool {
        self.rates.len() == reference.rates().len()
            && self
                .rates
                .iter()
                .zip(reference.rates().iter())
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eucon_tasks::{rms_set_points, workloads, workloads::RandomWorkload};

    fn medium_team(size: usize) -> ShardedController {
        let set = workloads::medium();
        let b = rms_set_points(&set);
        ShardedController::with_shard_size(&set, b, MpcConfig::medium(), size).unwrap()
    }

    #[test]
    fn singleton_plan_is_identity() {
        let plan = ShardPlan::singletons(5);
        assert_eq!(plan.num_shards(), 5);
        for p in 0..5 {
            assert_eq!(plan.shard_of(p), p);
            assert_eq!(plan.shards()[p], vec![p]);
        }
    }

    #[test]
    fn planner_respects_size_cap_and_partitions() {
        for size in [1, 2, 3, 4] {
            let set = workloads::medium();
            let plan = ShardPlanner::new(&set).target_size(size).plan();
            assert!(plan.max_shard_size() <= size);
            let mut seen = vec![false; set.num_processors()];
            for group in plan.shards() {
                for &p in group {
                    assert!(!seen[p], "processor {p} in two shards");
                    seen[p] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "plan must cover every processor");
        }
    }

    #[test]
    fn planner_is_deterministic() {
        let set = RandomWorkload::new(16, 48).seed(3).generate();
        let a = ShardPlanner::new(&set).target_size(4).plan();
        let b = ShardPlanner::new(&set).target_size(4).plan();
        assert_eq!(a, b);
    }

    #[test]
    fn planner_merges_reduce_the_cut() {
        let set = RandomWorkload::new(16, 48).seed(5).generate();
        let singles = ShardPlan::singletons(16);
        let merged = ShardPlanner::new(&set).target_size(4).plan();
        assert!(merged.num_shards() < 16);
        assert!(
            merged.cut_tasks(&set) <= singles.cut_tasks(&set),
            "merging coupled processors must not grow the cut"
        );
    }

    #[test]
    fn from_groups_rejects_bad_partitions() {
        assert!(ShardPlan::from_groups(vec![vec![0, 1], vec![1]], 2).is_err());
        assert!(ShardPlan::from_groups(vec![vec![0]], 2).is_err());
        assert!(ShardPlan::from_groups(vec![vec![0, 5]], 2).is_err());
        assert!(ShardPlan::from_groups(vec![vec![1, 0], vec![2]], 3).is_ok());
    }

    #[test]
    fn singleton_team_matches_decentralized_bit_for_bit() {
        // The K=1 pin: identical construction, identical sweeps, over
        // many periods of a nontrivial synthetic measurement sequence.
        for (set, cfg) in [
            (workloads::medium(), MpcConfig::medium()),
            (
                RandomWorkload::new(8, 24).seed(11).generate(),
                MpcConfig::medium(),
            ),
        ] {
            let b = rms_set_points(&set);
            let mut sharded = ShardedController::singleton(&set, b.clone(), cfg.clone()).unwrap();
            let mut reference = DecentralizedController::new(&set, b.clone(), cfg).unwrap();
            let f = set.allocation_matrix();
            let mut u = set.estimated_utilization(&set.initial_rates()).scale(0.6);
            let mut prev = reference.rates().clone();
            for period in 0..120 {
                sharded.update(&u).unwrap();
                reference.update(&u).unwrap();
                assert!(
                    sharded.rates_bit_identical(&reference),
                    "rates diverged at period {period}"
                );
                let r = reference.rates().clone();
                u = &u + &f.mul_vec(&(&r - &prev)).scale(0.7);
                prev = r;
            }
        }
    }

    #[test]
    fn ownership_partitions_tasks_at_any_shard_size() {
        for size in [1, 2, 4] {
            let set = workloads::medium();
            let team = medium_team(size);
            let mut seen = vec![false; set.num_tasks()];
            for ctrl in &team.controllers {
                for &j in &ctrl.owned {
                    assert!(!seen[j], "task {j} owned twice at size {size}");
                    seen[j] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "every task owned at size {size}");
        }
    }

    #[test]
    fn neighborhoods_cover_owned_chains() {
        let set = workloads::medium();
        let team = medium_team(2);
        for ctrl in &team.controllers {
            for &j in &ctrl.owned {
                for st in set.tasks()[j].subtasks() {
                    assert!(ctrl.neighborhood.contains(&st.processor.0));
                }
            }
        }
    }

    #[test]
    fn whole_system_shard_has_no_boundary() {
        // One shard covering everything = centralized (soft-constraint)
        // control: nothing to exchange.
        let team = medium_team(4);
        assert_eq!(team.num_controllers(), 1);
        assert_eq!(team.max_boundary_tasks(), 0);
    }

    #[test]
    fn converges_on_the_model_at_each_shard_size() {
        let set = RandomWorkload::new(8, 24).seed(2).generate();
        let b = rms_set_points(&set);
        let f = set.allocation_matrix();
        for size in [1, 2, 4, 8] {
            let mut team =
                ShardedController::with_shard_size(&set, b.clone(), MpcConfig::medium(), size)
                    .unwrap();
            let mut u = set.estimated_utilization(&set.initial_rates()).scale(0.5);
            let mut prev = team.rates().clone();
            for _ in 0..200 {
                team.update(&u).unwrap();
                let r = team.rates().clone();
                u = &u + &f.mul_vec(&(&r - &prev)).scale(0.5);
                prev = r;
            }
            assert!(
                (&u - &b).max_abs() < 0.03,
                "shard size {size} failed to converge: err {}",
                (&u - &b).max_abs()
            );
        }
    }

    #[test]
    fn rates_respect_bounds() {
        let set = workloads::medium();
        let mut team = medium_team(2);
        for _ in 0..30 {
            team.update(&Vector::filled(4, 1.0)).unwrap();
            for (j, task) in set.tasks().iter().enumerate() {
                assert!(team.rates()[j] >= task.rate_min() - 1e-12);
                assert!(team.rates()[j] <= task.rate_max() + 1e-12);
            }
        }
    }

    #[test]
    fn dimension_mismatches_detected() {
        let set = workloads::medium();
        let b = rms_set_points(&set);
        assert!(matches!(
            ShardedController::with_shard_size(&set, Vector::zeros(2), MpcConfig::medium(), 2),
            Err(ControlError::DimensionMismatch(_))
        ));
        let wrong_plan = ShardPlan::singletons(7);
        assert!(matches!(
            ShardedController::new(&set, b.clone(), MpcConfig::medium(), wrong_plan),
            Err(ControlError::DimensionMismatch(_))
        ));
        let mut team = medium_team(2);
        assert!(matches!(
            team.update(&Vector::zeros(9)),
            Err(ControlError::DimensionMismatch(_))
        ));
    }

    /// An in-memory bus with perfect same-period delivery: the reference
    /// for the bit-identity between the bus path and the direct path.
    #[derive(Default)]
    struct IdealBus {
        move_board: Vec<f64>,
        u_board: Vec<f64>,
        u_fresh: Vec<bool>,
    }

    impl IdealBus {
        fn new(num_tasks: usize, num_procs: usize) -> Self {
            IdealBus {
                move_board: vec![0.0; num_tasks],
                u_board: vec![0.0; num_procs],
                u_fresh: vec![false; num_procs],
            }
        }
    }

    impl BoundaryBus for IdealBus {
        fn publish_utilization(&mut self, _shard: usize, procs: &[usize], u: &[f64]) {
            for (&p, &v) in procs.iter().zip(u) {
                self.u_board[p] = v;
                self.u_fresh[p] = true;
            }
        }

        fn fetch(
            &mut self,
            _shard: usize,
            move_tasks: &[usize],
            moves: &mut [f64],
            procs: &[usize],
            u: &mut [f64],
        ) {
            for (i, &j) in move_tasks.iter().enumerate() {
                moves[i] = self.move_board[j];
            }
            for (i, &p) in procs.iter().enumerate() {
                if self.u_fresh[p] {
                    u[i] = self.u_board[p];
                }
            }
        }

        fn publish_moves(&mut self, _shard: usize, tasks: &[usize], moves: &[f64]) {
            for (&j, &mv) in tasks.iter().zip(moves) {
                self.move_board[j] = mv;
            }
        }
    }

    #[test]
    fn ideal_bus_matches_direct_exchange_bit_for_bit() {
        let set = RandomWorkload::new(8, 24).seed(4).generate();
        let b = rms_set_points(&set);
        let mut direct =
            ShardedController::with_shard_size(&set, b.clone(), MpcConfig::medium(), 3).unwrap();
        let mut bussed = direct.clone();
        let mut bus = IdealBus::new(set.num_tasks(), set.num_processors());
        let f = set.allocation_matrix();
        let mut u = set.estimated_utilization(&set.initial_rates()).scale(0.5);
        let mut prev = direct.rates().clone();
        for period in 0..100 {
            direct.update(&u).unwrap();
            bussed.update_with_bus(&u, &mut bus).unwrap();
            let same = direct
                .rates()
                .iter()
                .zip(bussed.rates().iter())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "bus and direct paths diverged at period {period}");
            let r = direct.rates().clone();
            u = &u + &f.mul_vec(&(&r - &prev)).scale(0.5);
            prev = r;
        }
    }

    /// A bus that delivers nothing: every shard must fall back to its
    /// retained view and the team must still converge (the couplings
    /// are simply handled as unpredicted disturbances).
    struct DeafBus;

    impl BoundaryBus for DeafBus {
        fn publish_utilization(&mut self, _: usize, _: &[usize], _: &[f64]) {}
        fn fetch(&mut self, _: usize, _: &[usize], _: &mut [f64], _: &[usize], _: &mut [f64]) {}
        fn publish_moves(&mut self, _: usize, _: &[usize], _: &[f64]) {}
    }

    #[test]
    fn deaf_bus_still_converges_near_the_set_points() {
        let set = RandomWorkload::new(8, 24).seed(4).generate();
        let b = rms_set_points(&set);
        let f = set.allocation_matrix();
        let mut team =
            ShardedController::with_shard_size(&set, b.clone(), MpcConfig::medium(), 3).unwrap();
        let mut u = set.estimated_utilization(&set.initial_rates()).scale(0.5);
        let mut prev = team.rates().clone();
        for _ in 0..300 {
            team.update_with_bus(&u, &mut DeafBus).unwrap();
            let r = team.rates().clone();
            u = &u + &f.mul_vec(&(&r - &prev)).scale(0.5);
            prev = r;
        }
        assert!(
            (&u - &b).max_abs() < 0.05,
            "deaf-bus team must still track: err {}",
            (&u - &b).max_abs()
        );
    }

    #[test]
    fn reset_clears_views_and_momentum() {
        let set = workloads::medium();
        let mut team = medium_team(2);
        team.update(&Vector::filled(4, 0.9)).unwrap();
        let r0 = set.initial_rates();
        team.reset(&r0);
        assert_eq!(team.last_moves.max_abs(), 0.0);
        for ctrl in &team.controllers {
            assert_eq!(ctrl.view_moves.max_abs(), 0.0);
        }
    }

    #[test]
    fn name_distinguishes_shard_team() {
        assert_eq!(medium_team(2).name(), "SHARD-EUCON");
    }
}
