//! Construction of the MPC prediction and cost matrices.
//!
//! The controller's constrained optimization (paper §6.1) is transformed
//! into the standard `lsqlin` form `min ‖C·X − d‖²` over the stacked move
//! vector `X = [Δr(k); …; Δr(k+M−1)]`.  The right-hand side depends
//! linearly on the current tracking error and the previous move:
//! `d = A_u·(u(k) − B) + A_d·Δr(k−1)`.  This module builds `C`, `A_u` and
//! `A_d` once per controller; they depend only on the model, not on
//! measurements — which is also what makes the closed-loop stability
//! analysis in [`crate::stability`] possible.

use eucon_math::{Matrix, Vector};

use crate::{ControlPenalty, MoveHold, MpcConfig};

/// Precomputed cost matrices of the MPC least-squares problem.
#[derive(Debug, Clone)]
pub(crate) struct Predictor {
    /// Stacked objective matrix: `n·P` tracking rows then `m·M` penalty
    /// rows.
    pub c: Matrix,
    /// Linear map from the tracking error `u(k) − B` to the rhs `d`.
    pub a_u: Matrix,
    /// Linear map from the previous move `Δr(k−1)` to the rhs `d`.
    pub a_d: Matrix,
    /// Number of processors.
    pub n: usize,
    /// Number of tasks.
    pub m: usize,
}

impl Predictor {
    /// Builds the matrices for allocation matrix `f` under `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid or the tracking-weight vector does not
    /// have one entry per processor.
    pub fn new(f: &Matrix, cfg: &MpcConfig) -> Self {
        cfg.assert_valid();
        let n = f.rows();
        let m = f.cols();
        let p = cfg.prediction_horizon;
        let mh = cfg.control_horizon;
        let lambda = cfg.reference_decay();

        let sqrt_q: Vec<f64> = match &cfg.tracking_weights {
            Some(w) => {
                assert_eq!(w.len(), n, "one tracking weight per processor required");
                w.iter().map(|&x| x.sqrt()).collect()
            }
            None => vec![1.0; n],
        };
        let sqrt_r = cfg.control_penalty_weight.sqrt();

        let n_rows = n * p + m * mh;
        let n_cols = m * mh;
        let mut c = Matrix::zeros(n_rows, n_cols);
        let mut a_u = Matrix::zeros(n_rows, n);
        let a_d = {
            let mut a_d = Matrix::zeros(n_rows, m);
            if cfg.control_penalty == ControlPenalty::MoveDelta {
                // Penalty row block i = 0 subtracts Δr(k−1): residual
                // √R(X₀ − Δr(k−1)), so d gets +√R·Δr(k−1).
                for t in 0..m {
                    a_d[(n * p + t, t)] = sqrt_r;
                }
            }
            a_d
        };

        // Tracking rows: block i (1-based step) applies move block j with
        // multiplicity `move_multiplicity(i, j, M, hold)` (see MoveHold
        // for the two beyond-horizon conventions).  The reference
        // trajectory (paper eq. 8) starts at u(k) and decays to B, so the
        // step-i residual carries the tracking error with coefficient
        // (1 − λ^i): rhs block −√Q·(1 − λ^i)·(u − B).
        for i in 1..=p {
            let row0 = n * (i - 1);
            for j in 0..mh {
                let mult = move_multiplicity(i, j, mh, cfg.move_hold);
                if mult == 0.0 {
                    continue;
                }
                for r in 0..n {
                    for t in 0..m {
                        c[(row0 + r, j * m + t)] = mult * sqrt_q[r] * f[(r, t)];
                    }
                }
            }
            let err_coef = 1.0 - lambda.powi(i as i32);
            for r in 0..n {
                a_u[(row0 + r, r)] = -sqrt_q[r] * err_coef;
            }
        }

        // Penalty rows.
        for i in 0..mh {
            let row0 = n * p + m * i;
            for t in 0..m {
                c[(row0 + t, i * m + t)] = sqrt_r;
            }
            if cfg.control_penalty == ControlPenalty::MoveDelta && i >= 1 {
                for t in 0..m {
                    c[(row0 + t, (i - 1) * m + t)] = -sqrt_r;
                }
            }
        }

        Predictor { c, a_u, a_d, n, m }
    }

    /// Evaluates the rhs `d` for the current tracking error and previous
    /// move.  Allocating convenience form of [`Predictor::rhs_into`], kept
    /// for tests and the stability analysis.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn rhs(&self, error: &Vector, prev_move: &Vector) -> Vector {
        let mut d = Vector::zeros(self.c.rows());
        self.rhs_into(error, prev_move, &mut d);
        d
    }

    /// Evaluates the rhs `d` into a caller-owned buffer, the allocation-free
    /// variant of [`Predictor::rhs`] used on the per-period hot path.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the number of objective rows.
    pub fn rhs_into(&self, error: &Vector, prev_move: &Vector, out: &mut Vector) {
        self.a_u.mul_vec_into(error, out);
        self.a_d.mul_vec_acc(prev_move, out);
    }
}

/// How many times move block `j` (0-based) has been applied to the
/// utilization by prediction step `i` (1-based), under the chosen
/// beyond-horizon convention.
pub(crate) fn move_multiplicity(i: usize, j: usize, mh: usize, hold: MoveHold) -> f64 {
    match hold {
        MoveHold::Rate => {
            // Each move is applied exactly once, from step j+1 onward.
            if i > j {
                1.0
            } else {
                0.0
            }
        }
        MoveHold::Delta => {
            if j + 1 < mh {
                if i > j {
                    1.0
                } else {
                    0.0
                }
            } else {
                // The final move keeps being applied at every step ≥ M.
                (i as isize - j as isize).max(0) as f64
            }
        }
    }
}

/// Builds the inequality constraints of the MPC problem.
///
/// Returns `(G, h)` such that `G·X ≤ h` encodes, for each control-horizon
/// step `i`:
///
/// * rate bounds `Rmin ≤ r(k−1) + Σ_{j≤i} Δr_j ≤ Rmax` (paper eq. 2), and,
///   when `utilization` is true, for each prediction step,
/// * utilization bounds `u(k) + F·S_i ≤ B` (paper eq. 1).
///
/// The matrix `G` depends only on the model and horizons while `h` changes
/// every period; the hot path therefore calls [`constraint_matrix`] once
/// and [`constraint_rhs_into`] per period instead of this combined helper.
#[allow(clippy::too_many_arguments)] // private helper mirroring the paper's symbol list
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn constraints(
    f: &Matrix,
    cfg: &MpcConfig,
    rates: &Vector,
    rmin: &Vector,
    rmax: &Vector,
    u: &Vector,
    b: &Vector,
    utilization: bool,
) -> (Matrix, Vector) {
    let g = constraint_matrix(f, cfg, utilization);
    let mut h = Vector::zeros(g.rows());
    constraint_rhs_into(f, cfg, rates, rmin, rmax, u, b, utilization, &mut h);
    (g, h)
}

/// Builds the constraint matrix `G` alone.
///
/// `G` is a pure function of the allocation matrix and the horizons — the
/// measured utilization and current rates only enter the right-hand side —
/// so a controller builds it once at construction and reuses it for every
/// period (see [`constraint_rhs_into`]).
pub(crate) fn constraint_matrix(f: &Matrix, cfg: &MpcConfig, utilization: bool) -> Matrix {
    let n = f.rows();
    let m = f.cols();
    let p = cfg.prediction_horizon;
    let mh = cfg.control_horizon;
    let n_cols = m * mh;

    let util_rows = if utilization { n * p } else { 0 };
    let mut g = Matrix::zeros(2 * m * mh + util_rows, n_cols);

    // Rate bounds: rows for upper, then lower, per step.
    for i in 0..mh {
        for t in 0..m {
            let up = 2 * m * i + t;
            let lo = 2 * m * i + m + t;
            for j in 0..=i {
                g[(up, j * m + t)] = 1.0;
                g[(lo, j * m + t)] = -1.0;
            }
        }
    }

    if utilization {
        let base = 2 * m * mh;
        for i in 1..=p {
            let row0 = base + n * (i - 1);
            for j in 0..mh {
                let mult = move_multiplicity(i, j, mh, cfg.move_hold);
                if mult == 0.0 {
                    continue;
                }
                for r in 0..n {
                    for t in 0..m {
                        g[(row0 + r, j * m + t)] = mult * f[(r, t)];
                    }
                }
            }
        }
    }
    g
}

/// Rewrites the constraint right-hand side `h` in place for the current
/// rates and measured utilization; row layout matches
/// [`constraint_matrix`].
///
/// # Panics
///
/// Panics if `h.len()` does not match the constraint-row count.
#[allow(clippy::too_many_arguments)] // private helper mirroring the paper's symbol list
pub(crate) fn constraint_rhs_into(
    f: &Matrix,
    cfg: &MpcConfig,
    rates: &Vector,
    rmin: &Vector,
    rmax: &Vector,
    u: &Vector,
    b: &Vector,
    utilization: bool,
    h: &mut Vector,
) {
    let n = f.rows();
    let m = f.cols();
    let p = cfg.prediction_horizon;
    let mh = cfg.control_horizon;
    let util_rows = if utilization { n * p } else { 0 };
    assert_eq!(
        h.len(),
        2 * m * mh + util_rows,
        "rhs buffer has the wrong row count"
    );

    for i in 0..mh {
        for t in 0..m {
            h[2 * m * i + t] = rmax[t] - rates[t];
            h[2 * m * i + m + t] = rates[t] - rmin[t];
        }
    }

    if utilization {
        let base = 2 * m * mh;
        for i in 0..p {
            for r in 0..n {
                h[base + n * i + r] = b[r] - u[r];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_f() -> Matrix {
        // The paper's §5 example: F = [[c11, c21, 0], [0, c22, c31]].
        Matrix::from_rows(&[&[35.0, 35.0, 0.0], &[0.0, 35.0, 45.0]])
    }

    #[test]
    fn dimensions_match_horizons() {
        let f = simple_f();
        let cfg = MpcConfig::simple(); // P=2, M=1
        let pred = Predictor::new(&f, &cfg);
        assert_eq!(pred.c.rows(), 2 * 2 + 3); // n·P tracking + m·M penalty rows
        assert_eq!(pred.c.cols(), 3);
        assert_eq!(pred.a_u.cols(), 2);
        assert_eq!(pred.a_d.cols(), 3);
    }

    #[test]
    fn tracking_blocks_hold_rate_and_decay() {
        let f = simple_f();
        let cfg = MpcConfig::simple(); // MoveHold::Rate by default
        let pred = Predictor::new(&f, &cfg);
        let lambda = cfg.reference_decay();
        // Hold-rate: the single move (M=1) is applied exactly once at
        // every prediction step.
        for i in 0..2 {
            for r in 0..2 {
                for t in 0..3 {
                    assert_eq!(pred.c[(2 * i + r, t)], f[(r, t)]);
                }
            }
        }
        // a_u carries −(1 − λ^i) on the diagonal of each block (the
        // reference starts at u(k), eq. 8).
        assert!((pred.a_u[(0, 0)] + (1.0 - lambda)).abs() < 1e-15);
        assert!((pred.a_u[(2, 0)] + (1.0 - lambda * lambda)).abs() < 1e-15);
        assert_eq!(pred.a_u[(0, 1)], 0.0);
    }

    #[test]
    fn tracking_blocks_hold_delta_accumulate() {
        let f = simple_f();
        let cfg = MpcConfig::simple().move_hold(MoveHold::Delta);
        let pred = Predictor::new(&f, &cfg);
        // Hold-delta (the literal eq. 12): the move is re-applied each
        // step, so step 2 carries 2F.
        for i in 0..2 {
            let mult = (i + 1) as f64;
            for r in 0..2 {
                for t in 0..3 {
                    assert_eq!(pred.c[(2 * i + r, t)], mult * f[(r, t)]);
                }
            }
        }
    }

    #[test]
    fn move_delta_penalty_couples_prev_move() {
        let f = simple_f();
        let cfg = MpcConfig::simple();
        let pred = Predictor::new(&f, &cfg);
        // Penalty block: identity on the move, identity map from Δr(k−1).
        for t in 0..3 {
            assert_eq!(pred.c[(4 + t, t)], 1.0);
            assert_eq!(pred.a_d[(4 + t, t)], 1.0);
        }
    }

    #[test]
    fn move_penalty_has_no_prev_coupling() {
        let f = simple_f();
        let cfg = MpcConfig::simple().control_penalty(ControlPenalty::Move);
        let pred = Predictor::new(&f, &cfg);
        assert_eq!(pred.a_d.max_abs(), 0.0);
    }

    #[test]
    fn multi_step_horizon_has_difference_chain() {
        let f = simple_f();
        let cfg = MpcConfig::simple()
            .horizons(4, 2)
            .move_hold(MoveHold::Delta);
        let pred = Predictor::new(&f, &cfg);
        let m = 3;
        let base = 2 * 4; // n*P tracking rows
                          // Second penalty block: +I at block 1, −I at block 0.
        for t in 0..m {
            assert_eq!(pred.c[(base + m + t, m + t)], 1.0);
            assert_eq!(pred.c[(base + m + t, t)], -1.0);
        }
        // Step i = 1 uses only the first move; by i = 4 the first move has
        // been applied once and the held second move three times (Delta).
        assert_eq!(pred.c[(0, m)], 0.0);
        assert_eq!(pred.c[(0, 0)], f[(0, 0)]);
        let i4 = 2 * 3; // row block of step i = 4 (n = 2)
        assert_eq!(pred.c[(i4, 0)], f[(0, 0)]);
        assert_eq!(pred.c[(i4, m)], 3.0 * f[(0, 0)]);
    }

    #[test]
    fn move_multiplicity_conventions() {
        use MoveHold::{Delta, Rate};
        // Rate: every move is applied exactly once from step j+1 onward.
        assert_eq!(move_multiplicity(1, 0, 1, Rate), 1.0);
        assert_eq!(move_multiplicity(3, 0, 1, Rate), 1.0);
        assert_eq!(move_multiplicity(1, 1, 2, Rate), 0.0);
        assert_eq!(move_multiplicity(4, 1, 2, Rate), 1.0);
        // Delta, M = 1: the only move accumulates i times.
        assert_eq!(move_multiplicity(1, 0, 1, Delta), 1.0);
        assert_eq!(move_multiplicity(3, 0, 1, Delta), 3.0);
        // Delta, M = 2: move 0 applies once; move 1 accumulates.
        assert_eq!(move_multiplicity(1, 0, 2, Delta), 1.0);
        assert_eq!(move_multiplicity(2, 0, 2, Delta), 1.0);
        assert_eq!(move_multiplicity(1, 1, 2, Delta), 0.0);
        assert_eq!(move_multiplicity(2, 1, 2, Delta), 1.0);
        assert_eq!(move_multiplicity(4, 1, 2, Delta), 3.0);
    }

    #[test]
    fn rhs_combines_error_and_prev_move() {
        let f = simple_f();
        let cfg = MpcConfig::simple();
        let pred = Predictor::new(&f, &cfg);
        let err = Vector::from_slice(&[0.1, -0.2]);
        let prev = Vector::from_slice(&[0.001, 0.0, -0.002]);
        let d = pred.rhs(&err, &prev);
        let lambda = cfg.reference_decay();
        assert!((d[0] + (1.0 - lambda) * 0.1).abs() < 1e-15);
        assert!((d[3] + (1.0 - lambda * lambda) * -0.2).abs() < 1e-15);
        assert!((d[4] - 0.001).abs() < 1e-15);
        assert!((d[6] + 0.002).abs() < 1e-15);
    }

    #[test]
    fn tracking_weights_scale_rows() {
        let f = simple_f();
        let cfg = MpcConfig::simple().tracking_weights(Vector::from_slice(&[4.0, 1.0]));
        let pred = Predictor::new(&f, &cfg);
        // √4 = 2 scales processor-0 rows.
        assert_eq!(pred.c[(0, 0)], 2.0 * f[(0, 0)]);
        assert_eq!(pred.c[(1, 1)], f[(1, 1)]);
    }

    #[test]
    fn constraint_shapes_and_values() {
        let f = simple_f();
        let cfg = MpcConfig::simple();
        let rates = Vector::from_slice(&[0.01, 0.01, 0.01]);
        let rmin = Vector::from_slice(&[0.001; 3]);
        let rmax = Vector::from_slice(&[0.03; 3]);
        let u = Vector::from_slice(&[0.9, 0.7]);
        let b = Vector::from_slice(&[0.828, 0.828]);
        let (g, h) = constraints(&f, &cfg, &rates, &rmin, &rmax, &u, &b, true);
        // 2·m·M rate rows + n·P utilization rows.
        assert_eq!(g.rows(), 6 + 4);
        // Upper rate bound rows: Δr ≤ Rmax − r.
        assert_eq!(g[(0, 0)], 1.0);
        assert!((h[0] - 0.02).abs() < 1e-15);
        // Lower: −Δr ≤ r − Rmin.
        assert_eq!(g[(3, 0)], -1.0);
        assert!((h[3] - 0.009).abs() < 1e-15);
        // Utilization rows carry F and B − u (negative on the overloaded
        // processor).
        assert_eq!(g[(6, 0)], 35.0);
        assert!((h[6] - (0.828 - 0.9)).abs() < 1e-12);
        // Disabled utilization constraints shrink the system.
        let (g2, _) = constraints(&f, &cfg, &rates, &rmin, &rmax, &u, &b, false);
        assert_eq!(g2.rows(), 6);
    }

    #[test]
    fn cumulative_rate_constraints_for_longer_horizon() {
        let f = simple_f();
        let cfg = MpcConfig::simple().horizons(4, 2);
        let rates = Vector::from_slice(&[0.01; 3]);
        let rmin = Vector::from_slice(&[0.001; 3]);
        let rmax = Vector::from_slice(&[0.03; 3]);
        let u = Vector::zeros(2);
        let b = Vector::zeros(2);
        let (g, _) = constraints(&f, &cfg, &rates, &rmin, &rmax, &u, &b, false);
        // Step-1 upper row for task 0 sums both move blocks.
        let row = 2 * 3; // first step-1 row
        assert_eq!(g[(row, 0)], 1.0);
        assert_eq!(g[(row, 3)], 1.0);
    }
}
