//! Constrained least-squares / quadratic-programming substrate.
//!
//! The EUCON controller (ICDCS 2004, §6.1) computes each control input by
//! solving a constrained least-squares problem with MATLAB's `lsqlin`, an
//! active-set solver.  This crate supplies that capability in pure Rust:
//!
//! * [`QuadProg`] — a dual active-set solver (Goldfarb–Idnani, 1983) for
//!   strictly convex quadratic programs `min ½xᵀHx + fᵀx` subject to
//!   `Gx ≤ h`.  The dual method starts from the unconstrained minimum, needs
//!   no feasible initial point, and detects infeasibility — exactly the
//!   properties a model-predictive controller wants.
//! * [`ConstrainedLsq`] — the `lsqlin`-shaped front end: minimize
//!   `‖Cx − d‖₂²` subject to linear inequalities and box bounds; it builds
//!   the QP (`H = CᵀC`, `f = −Cᵀd`) and delegates to [`QuadProg`].
//! * [`PreparedQp`] / [`PreparedLsq`] — the amortized forms for repeated
//!   solves with fixed `H`/`C` and constraint matrix but varying linear
//!   term and right-hand side: the Cholesky factorization and the
//!   per-constraint back-solves are computed once at construction, and
//!   each solve can warm-start from the previous active set.  This is the
//!   controller hot path: once the closed loop settles, the active set
//!   stops changing and a solve costs two triangular back-substitutions.
//!
//! Solutions report the active constraint set and Lagrange multipliers so
//! callers (and the test-suite) can verify the KKT conditions directly.
//!
//! # Example
//!
//! ```
//! use eucon_math::{Matrix, Vector};
//! use eucon_qp::ConstrainedLsq;
//!
//! # fn main() -> Result<(), eucon_qp::QpError> {
//! // Fit x to hit [1, 1] but keep x0 + x1 ≤ 1.
//! let c = Matrix::identity(2);
//! let d = Vector::from_slice(&[1.0, 1.0]);
//! let sol = ConstrainedLsq::new(c, d)
//!     .ineq_rows(&[&[1.0, 1.0]], &[1.0])
//!     .solve()?;
//! assert!((sol.x[0] - 0.5).abs() < 1e-9);
//! assert!((sol.x[1] - 0.5).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod lsq;
mod solver;

pub use error::QpError;
pub use lsq::{ConstrainedLsq, LsqSolution, PreparedLsq};
pub use solver::{PreparedQp, QpSolution, QuadProg};
